package slotsel_test

import (
	"fmt"

	"slotsel"
)

// exampleBatchList builds four nodes with full-interval availability so the
// two-stage scheduling example is deterministic and easy to follow.
func exampleBatchList() slotsel.SlotList {
	l := slotsel.SlotList{}
	specs := []struct {
		id    int
		perf  float64
		price float64
	}{
		{1, 10, 3}, {2, 5, 1.2}, {3, 5, 1.0}, {4, 2, 0.4},
	}
	for _, s := range specs {
		n := &slotsel.Node{ID: s.id, Perf: s.perf, Price: s.price}
		l = append(l, &slotsel.Slot{Node: n, Interval: slotsel.Interval{Start: 0, End: 400}})
	}
	l.SortByStart()
	return l
}

func ExampleScheduleBatch() {
	batch := &slotsel.Batch{}
	batch.Add(&slotsel.Job{ID: 1, Name: "high", Priority: 2,
		Request: slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 80}})
	batch.Add(&slotsel.Job{ID: 2, Name: "low", Priority: 1,
		Request: slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 60}})

	// MaxAlternatives bounds the per-job CSA search: unbounded, the
	// high-priority job's alternatives would consume the whole slot list
	// before the low-priority job gets its turn.
	plan, err := slotsel.ScheduleBatch(exampleBatchList(), batch,
		slotsel.CSAOptions{MinSlotLength: 5, MaxAlternatives: 3},
		slotsel.SelectConfig{Budget: 120, Criterion: slotsel.ByFinish})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("scheduled %d/2 jobs, total cost %.0f\n", plan.Scheduled, plan.TotalCost)
	for _, a := range plan.Assignments {
		if a.Chosen != nil {
			fmt.Printf("%s: start=%.0f finish=%.0f cost=%.0f\n",
				a.Job.Name, a.Chosen.Start, a.Chosen.Finish(), a.Chosen.Cost)
		}
	}
	// Output:
	// scheduled 2/2 jobs, total cost 98
	// high: start=0 finish=20 cost=54
	// low: start=40 finish=60 cost=44
}

func ExampleReplay() {
	list := exampleBatchList()
	req := slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 80}
	w, err := slotsel.MinFinish{}.Find(list, &req)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Build a minimal environment around the list for the replay.
	e := &slotsel.Environment{Slots: list, Horizon: 400}
	for _, s := range list {
		e.Nodes = append(e.Nodes, s.Node)
	}
	rep, err := slotsel.Replay(e, []*slotsel.Window{w})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("events=%d makespan=%.0f cpu=%.0f\n", len(rep.Events), rep.Makespan, rep.TotalProcTime)
	// Output:
	// events=4 makespan=20 cpu=30
}

func ExampleStrategy() {
	list := exampleBatchList()
	req := slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 120}

	fast, _ := slotsel.MinRunTime{}.Find(list, &req)
	cheap, _ := slotsel.MinCost{}.Find(list, &req)
	fmt.Printf("MinRunTime: runtime=%.0f cost=%.0f\n", fast.Runtime, fast.Cost)
	fmt.Printf("MinCost:    runtime=%.0f cost=%.0f\n", cheap.Runtime, cheap.Cost)

	// A runtime-leaning weighted strategy picks the fast window; a
	// cost-leaning one keeps the cheap window.
	components := []slotsel.Algorithm{slotsel.MinRunTime{}, slotsel.MinCost{}}
	runtimeLeaning := slotsel.Strategy{
		Algorithms: components,
		Score:      slotsel.StrategyWeights{Runtime: 1, Cost: 0.1}.Score,
	}
	w, err := runtimeLeaning.Find(list, &req)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Weighted:   runtime=%.0f cost=%.0f\n", w.Runtime, w.Cost)
	// Output:
	// MinRunTime: runtime=20 cost=54
	// MinCost:    runtime=50 cost=40
	// Weighted:   runtime=20 cost=54
}
