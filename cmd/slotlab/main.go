// Command slotlab is the scenario-driven conformance and soak harness for
// the slot-inventory service. Each scenario boots a live slotserve stack,
// drives it over HTTP with one production-shaped workload — flash crowd,
// hot-spot contention, node churn, deadline-constrained task farms,
// starved budgets, diurnal load — and holds the end state to the
// invariants that make the service trustworthy: zero double-booking,
// journal-replay determinism, clean admission control under overload and
// per-scenario latency/throughput SLOs.
//
// Usage:
//
//	slotlab [-scenarios NAMES|all] [-duration D] [-seed N]
//	        [-o FILE] [-soak] [-list] [-q]
//
// A short smoke pass over every scenario:
//
//	slotlab -scenarios all -duration 2s -seed 1
//
// A single-scenario soak (the nightly tier):
//
//	slotlab -scenarios churn -duration 10m -soak -o results/churn_soak.json
//
// The report is schema-versioned JSON (results/slotlab_<seed>.json by
// default) with per-scenario pass/fail, invariant and SLO verdicts,
// latency histograms and /v1/statusz counter deltas. Exit status is 0 only
// if every scenario passes every check.
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotlab(os.Args[1:], os.Stdout, os.Stderr))
}
