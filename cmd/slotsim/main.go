// Command slotsim regenerates the tables and figures of the paper's
// evaluation (§3) from the reproduction's simulation substrate.
//
// Usage:
//
//	slotsim [flags] <experiment>
//
// Experiments:
//
//	fig2     — average start time (a) and runtime (b) per algorithm
//	fig3     — average finish time (a) and CPU usage time (b) per algorithm
//	fig4     — average job execution cost per algorithm
//	table1   — working time vs CPU node count (also renders Fig. 5 curves)
//	table2   — working time vs scheduling interval length (also Fig. 6)
//	summary  — the full quality-study table across all metrics
//	ablate   — design-decision ablations (pricing degree, budget check,
//	           greedy vs exact per-step selection)
//	tasks    — extension sweep: window quality vs job parallelism n
//	frontier — extension sweep: cost-runtime frontier vs user budget
//	hetero   — extension sweep: window quality vs performance heterogeneity
//	deadline — extension sweep: feasibility and cost vs deadline tightness
//	batch    — extension study: two-stage batch scheduling pipelines
//	longrun  — extension study: rolling-horizon VO metascheduler over many
//	           consecutive cycles with Poisson arrivals and a retry queue
//	all      — everything above
//
// Flags tune the workload; the defaults reproduce §3.1 (100 nodes,
// interval [0,600), job of 5 slots x volume 150, budget 1500). -workers N
// runs the quality study and the batch study's stage-1 alternative search
// on an N-worker pool (0 = sequential); batch results are identical for
// any worker count — only wall-clock time changes.
//
// Observability: -stats aggregates the quality and batch studies' scan,
// selection and speculation counters into a distribution table after the
// experiment output, -trace writes a Chrome trace_event JSON file of the
// instrumented spans, and -pprof serves net/http/pprof on the given
// address while the experiment runs. See the README's Observability
// section.
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotsim(os.Args[1:], os.Stdout, os.Stderr))
}
