// Command slotbench is the reproducible benchmark harness of the selection
// kernels: it times the Find, CSA and batch-scheduling hot paths across
// node-count and window-size grids — each Find grid point once with the
// shipped incremental WindowIndex kernels on a reused Scanner and once
// with the retained copy+sort oracle kernels — and writes machine-readable
// JSON (BENCH_5.json) for the repo's bench trajectory. Alongside ns_per_op
// each grid point carries allocs_per_op and bytes_per_op, measured as
// runtime.MemStats deltas over a warmed-up batch; the incremental find
// rows are expected to report 0 allocations.
//
// Usage:
//
//	slotbench [-seed N] [-iters K] [-nodes 16,32,64,128] [-tasks 2,5,10] [-o BENCH_5.json]
//	slotbench -check        # kernel differential over the grid; non-zero exit on mismatch
//
// Same seed ⇒ same instances; timings are the minimum over -iters
// repetitions. The CI bench-smoke job runs one iteration plus -check and
// uploads the JSON as an artifact; see EXPERIMENTS.md for recorded numbers.
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotbench(os.Args[1:], os.Stdout, os.Stderr))
}
