// Command slotfind selects a slot window on an environment snapshot
// produced by cmd/slotgen, using any of the paper's algorithms, and prints
// the window (human-readable, JSON, or as a Gantt chart).
//
// Usage:
//
//	slotfind -env FILE [-alg NAME[,NAME...]] [-workers N] [-tasks N]
//	         [-volume V] [-budget S] [-deadline D] [-min-perf P]
//	         [-alternatives] [-json] [-gantt]
//	         [-stats] [-trace FILE] [-pprof ADDR]
//
// Algorithms: amp, minfinish, mincost, minruntime, minproctime, minenergy,
// firstfit. A comma-separated -alg list compares several algorithms in one
// table; -workers sizes the pool the searches run on concurrently (0 =
// GOMAXPROCS) — the table is identical for any worker count.
//
// Observability: -stats prints scan/selection counters after the result,
// -trace writes a Chrome trace_event JSON file (load it in chrome://tracing
// or ui.perfetto.dev), and -pprof serves net/http/pprof on the given
// address for the lifetime of the run. See the README's Observability
// section.
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotfind(os.Args[1:], os.Stdout, os.Stderr))
}
