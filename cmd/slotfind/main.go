// Command slotfind selects a slot window on an environment snapshot
// produced by cmd/slotgen, using any of the paper's algorithms, and prints
// the window (human-readable, JSON, or as a Gantt chart).
//
// Usage:
//
//	slotfind -env FILE [-alg NAME[,NAME...]] [-workers N] [-tasks N]
//	         [-volume V] [-budget S] [-deadline D] [-min-perf P]
//	         [-alternatives] [-json] [-gantt]
//
// Algorithms: amp, minfinish, mincost, minruntime, minproctime, minenergy,
// firstfit. A comma-separated -alg list compares several algorithms in one
// table; -workers sizes the pool the searches run on concurrently (0 =
// GOMAXPROCS) — the table is identical for any worker count.
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotfind(os.Args[1:], os.Stdout, os.Stderr))
}
