// Command slotserve runs the slot-inventory scheduling service: a stateful
// HTTP front-end over one slot pool, serving concurrent find / reserve /
// commit / release traffic with optimistic conflict detection, TTL'd holds
// and bounded admission control.
//
// Usage:
//
//	slotserve -slots FILE [-addr HOST:PORT] [-workers N] [-queue N]
//	          [-ttl D] [-timeout D] [-min-slot-length L]
//	          [-data-dir DIR] [-snapshot-interval D] [-snapshot-every N]
//	          [-follow DIR] [-poll D]
//	          [-log-format json|off]
//	          [-stats] [-trace FILE] [-pprof ADDR]
//
// -slots accepts either a cmd/slotgen environment snapshot or a bare slot
// list (cmd/slotgen -slots-only). A typical pipeline:
//
//	slotgen -nodes 50 -seed 7 -o env.json
//	slotserve -addr localhost:8080 -slots env.json
//
// # Durability and followers
//
// With -data-dir the inventory is durable: every acknowledged mutation is
// fsync'd to a write-ahead log in DIR before the HTTP response is sent,
// periodic snapshots compact the log, and a restart (or crash) recovers
// the exact committed state — -slots is then only needed the first time,
// to seed an empty directory. On SIGTERM the server drains, writes a
// final snapshot, and closes the log cleanly.
//
// With -follow the process is a read-only replica instead: it tails
// another slotserve's -data-dir (same host or shared filesystem), applies
// the leader's journal every -poll interval, and serves /v1/find,
// /v1/slots, /v1/statusz and /metricsz from the replicated state; the
// mutating endpoints answer 403.
//
//	slotserve -addr :8080 -slots env.json -data-dir /var/lib/slotserve
//	slotserve -addr :8081 -follow /var/lib/slotserve
//
// Then drive it with curl (see the README's "Running as a service"):
//
//	curl -s localhost:8080/v1/reserve -d '{"request":{"tasks":2,"volume":50}}'
//	curl -s localhost:8080/v1/commit -d '{"id":"r00000001"}'
//
// Telemetry (see the README's "Telemetry"): GET /metricsz serves
// Prometheus text exposition (always on), every response carries an
// X-Trace-Id header, -log-format=json writes one structured request-log
// line per request to stdout sharing that trace ID, and -pprof ADDR
// serves the runtime profiles.
//
// The process drains in-flight requests and exits on SIGINT/SIGTERM.
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotserve(os.Args[1:], os.Stdout, os.Stderr))
}
