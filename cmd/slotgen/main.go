// Command slotgen generates a distributed environment snapshot (nodes +
// published slots) and writes it as JSON, so that selections can be run and
// compared on a fixed environment with cmd/slotfind.
//
// Usage:
//
//	slotgen [-nodes N] [-horizon H] [-seed S] [-o FILE] [-linear-pricing]
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotgen(os.Args[1:], os.Stdout, os.Stderr))
}
