// Command slotgen generates a distributed environment snapshot (nodes +
// published slots) and writes it as JSON, so that selections can be run and
// compared on a fixed environment with cmd/slotfind.
//
// Usage:
//
//	slotgen [-nodes N] [-horizon H] [-seed S] [-o FILE] [-linear-pricing]
//	        [-slots-only]
//
// The default output is a full environment snapshot for cmd/slotfind;
// -slots-only emits a bare slot list instead. Both feed directly into the
// scheduling service:
//
//	slotgen -nodes 50 -seed 7 -o env.json
//	slotserve -addr localhost:8080 -slots env.json
package main

import (
	"os"

	"slotsel/internal/cli"
)

func main() {
	os.Exit(cli.Slotgen(os.Args[1:], os.Stdout, os.Stderr))
}
