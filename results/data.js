// Machine-generated benchmark trajectory; do not edit by hand.
// Append a run:  go run ./cmd/slotbench -accum results/data.js -label NAME bench.txt
// Render:        open results/dashboard.html
window.SLOTBENCH_TRAJECTORY = [
  {
    "label": "issue-4",
    "time": "2026-08-08T06:44:31Z",
    "results": [
      {
        "name": "BenchmarkBatch/nodes=128/jobs=8",
        "ns_per_op": 1046703,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkBatch/nodes=16/jobs=8",
        "ns_per_op": 246166,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkBatch/nodes=32/jobs=8",
        "ns_per_op": 352965,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkBatch/nodes=64/jobs=8",
        "ns_per_op": 628178,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=10",
        "ns_per_op": 510655,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=2",
        "ns_per_op": 215253,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=5",
        "ns_per_op": 367556,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=10",
        "ns_per_op": 9379,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=2",
        "ns_per_op": 63251,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=5",
        "ns_per_op": 66650,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=10",
        "ns_per_op": 366275,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=2",
        "ns_per_op": 64668,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=5",
        "ns_per_op": 101986,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=10",
        "ns_per_op": 864073,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=2",
        "ns_per_op": 120892,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=5",
        "ns_per_op": 190416,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 10129,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 9979,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 40329,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7455,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 1188,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 1275,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 1986,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 1836,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 1810,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 17632,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 4080,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 3924,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 9736,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 8291,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 24535,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 10953,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 1386,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 1366,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 2015,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 1947,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 1995,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 13134,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 4406,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 4333,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 301519,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 289829,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 302862,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7401,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 9985,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 8340,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 23045,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 26557,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 24778,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 106268,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 122039,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 106589,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 2806283,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 2919738,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 2749954,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 10714,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 34697,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 33912,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 130272,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 128007,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 123765,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 615338,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 630070,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 679930,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 2673226,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 1019598,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 1643920,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7513,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 19722,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 14899,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 40159,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 66683,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 77140,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 560851,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 280086,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 417021,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 5095898,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3478583,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 4038378,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 11457,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 49782,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 41950,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 152492,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 167236,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 186045,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 1128380,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 831033,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 982522,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 749254,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 515552,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 907487,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7542,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 18673,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 11659,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 27500,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 43980,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 47324,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 211440,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 257060,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 184683,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3458181,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3033110,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3073676,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 11358,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 43775,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 39418,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 146384,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 148982,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 157811,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 837487,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 700911,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 765923,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 895626,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 543472,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 632513,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 12499,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 25027,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 80361,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 76152,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 53665,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 60802,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 296597,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 188291,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 211873,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3749660,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3293387,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3385797,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 14958,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 54857,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 47530,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 189971,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 193839,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 171469,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 947651,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 893238,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 827598,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 220609,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 183660,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 188872,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 5771,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 10532,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 11638,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 28656,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 20061,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 51918,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 84809,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 61876,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 64354,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 221431,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 188078,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 189206,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 5531,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 8947,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 13489,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 32997,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 20409,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 34018,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 78150,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 154613,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 190117,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 1601075,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 1556605,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 1084392,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7242,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 15813,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 12197,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 30970,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 49759,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 57396,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 579667,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 455119,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 524183,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 4649485,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3188665,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3588367,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 12062,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 48027,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 40500,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 143949,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 155780,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 167248,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 923593,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 769933,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 840300,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 1008833,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 483249,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 566582,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7435,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 13253,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 9756,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 23687,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 34465,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 35223,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 418110,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 146280,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 153153,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3155955,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3071816,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3062245,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 11969,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 74982,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 43135,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 139185,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 151197,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 161006,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 734006,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 702528,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 743007,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 780610,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 1682845,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 929298,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 13472,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 31498,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 21636,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 58131,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 50766,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 59478,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 358832,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 178513,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 200672,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3828218,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3260940,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3516986,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 15427,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 77508,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 45157,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 151510,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 140560,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 154895,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 926250,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 800575,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 825302,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      }
    ]
  },
  {
    "label": "issue-5",
    "time": "2026-08-08T06:44:31Z",
    "results": [
      {
        "name": "BenchmarkBatch/nodes=128/jobs=8",
        "ns_per_op": 547873,
        "bytes_per_op": 269307.2,
        "allocs_per_op": 1706.4
      },
      {
        "name": "BenchmarkBatch/nodes=16/jobs=8",
        "ns_per_op": 192852,
        "bytes_per_op": 124603.2,
        "allocs_per_op": 904.4
      },
      {
        "name": "BenchmarkBatch/nodes=32/jobs=8",
        "ns_per_op": 249574,
        "bytes_per_op": 136091.2,
        "allocs_per_op": 984.4
      },
      {
        "name": "BenchmarkBatch/nodes=64/jobs=8",
        "ns_per_op": 339217,
        "bytes_per_op": 184811.2,
        "allocs_per_op": 1384.4
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=10",
        "ns_per_op": 159992,
        "bytes_per_op": 6490.72,
        "allocs_per_op": 125.04
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=2",
        "ns_per_op": 73561,
        "bytes_per_op": 2010.72,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=5",
        "ns_per_op": 96935,
        "bytes_per_op": 3690.72,
        "allocs_per_op": 75.04
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=10",
        "ns_per_op": 7111,
        "bytes_per_op": 2.72,
        "allocs_per_op": 0.04
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=2",
        "ns_per_op": 11944,
        "bytes_per_op": 2010.72,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=5",
        "ns_per_op": 27817,
        "bytes_per_op": 2186.72,
        "allocs_per_op": 46.04
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=10",
        "ns_per_op": 55029,
        "bytes_per_op": 3242.72,
        "allocs_per_op": 64.04
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=2",
        "ns_per_op": 13259,
        "bytes_per_op": 2010.72,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=5",
        "ns_per_op": 26361,
        "bytes_per_op": 3690.72,
        "allocs_per_op": 75.04
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=10",
        "ns_per_op": 105382,
        "bytes_per_op": 6490.72,
        "allocs_per_op": 125.04
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=2",
        "ns_per_op": 33304,
        "bytes_per_op": 2010.72,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=5",
        "ns_per_op": 52115,
        "bytes_per_op": 3690.72,
        "allocs_per_op": 75.04
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 6886,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 7921,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 6840,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7863,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 598,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 610,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 1025,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 1025,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 1014,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 2796,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 2756,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 2716,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 7779,
        "bytes_per_op": 2560.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 7793,
        "bytes_per_op": 2304.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 7819,
        "bytes_per_op": 2400.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 10980,
        "bytes_per_op": 4352.68,
        "allocs_per_op": 50.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 1374,
        "bytes_per_op": 640.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 1313,
        "bytes_per_op": 736.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 1783,
        "bytes_per_op": 1088.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 1890,
        "bytes_per_op": 832.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 1809,
        "bytes_per_op": 928.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 4145,
        "bytes_per_op": 1664.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 4091,
        "bytes_per_op": 1408.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 4122,
        "bytes_per_op": 1504.68,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 261231,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 266544,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 261059,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 6957,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 7715,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 7211,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 18973,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 20716,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 20362,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 78142,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 79813,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 80037,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 2781819,
        "bytes_per_op": 727947.2,
        "allocs_per_op": 1956.92
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 2733057,
        "bytes_per_op": 724876.6,
        "allocs_per_op": 1944.96
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 2816149,
        "bytes_per_op": 726282.08,
        "allocs_per_op": 1954.91
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 10866,
        "bytes_per_op": 4352.68,
        "allocs_per_op": 50.01
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 42191,
        "bytes_per_op": 19281.36,
        "allocs_per_op": 272.02
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 30719,
        "bytes_per_op": 18433.36,
        "allocs_per_op": 252.02
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 133003,
        "bytes_per_op": 51427.44,
        "allocs_per_op": 480.07
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 126998,
        "bytes_per_op": 51170.28,
        "allocs_per_op": 480.04
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 126763,
        "bytes_per_op": 51267.2,
        "allocs_per_op": 480.06
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 684962,
        "bytes_per_op": 204108.64,
        "allocs_per_op": 1018.27
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 662119,
        "bytes_per_op": 202957.08,
        "allocs_per_op": 1016.27
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 676177,
        "bytes_per_op": 203916.4,
        "allocs_per_op": 1022.26
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 1331427,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 597182,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 922037,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 6995,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 12951,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 10774,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 26537,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 43005,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 48395,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 297209,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 172423,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 236010,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 5015168,
        "bytes_per_op": 844147.08,
        "allocs_per_op": 2442.08
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3948622,
        "bytes_per_op": 747884.4,
        "allocs_per_op": 2425.94
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 4228304,
        "bytes_per_op": 787150.08,
        "allocs_per_op": 2429.98
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 11848,
        "bytes_per_op": 7264.68,
        "allocs_per_op": 63.01
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 45223,
        "bytes_per_op": 22529.36,
        "allocs_per_op": 340.02
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 40828,
        "bytes_per_op": 26625.44,
        "allocs_per_op": 317.02
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 179433,
        "bytes_per_op": 80021.44,
        "allocs_per_op": 600.11
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 184982,
        "bytes_per_op": 56915.52,
        "allocs_per_op": 600.07
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 199016,
        "bytes_per_op": 66532.2,
        "allocs_per_op": 600.08
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 1107407,
        "bytes_per_op": 265009.56,
        "allocs_per_op": 1273.36
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 869247,
        "bytes_per_op": 214829.64,
        "allocs_per_op": 1265.28
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 1052378,
        "bytes_per_op": 235758.32,
        "allocs_per_op": 1271.29
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 658674,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 453198,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 541038,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7171,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 10218,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 9063,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 22061,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 29808,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 31147,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 161673,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 125998,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 146503,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3496668,
        "bytes_per_op": 1018087,
        "allocs_per_op": 3347.36
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3027270,
        "bytes_per_op": 809432.52,
        "allocs_per_op": 3387.05
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3300895,
        "bytes_per_op": 893759.88,
        "allocs_per_op": 3381.21
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 12213,
        "bytes_per_op": 7240.68,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 40349,
        "bytes_per_op": 29033.36,
        "allocs_per_op": 441.02
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 37660,
        "bytes_per_op": 30858.04,
        "allocs_per_op": 354.03
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 165945,
        "bytes_per_op": 89597.72,
        "allocs_per_op": 649.11
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 168752,
        "bytes_per_op": 71612.12,
        "allocs_per_op": 829.08
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 155573,
        "bytes_per_op": 88684.8,
        "allocs_per_op": 797.09
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 856906,
        "bytes_per_op": 351390.28,
        "allocs_per_op": 1722.47
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 750041,
        "bytes_per_op": 246679.16,
        "allocs_per_op": 1762.32
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 801337,
        "bytes_per_op": 289722.84,
        "allocs_per_op": 1752.4
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 715699,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 448127,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 505019,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 10219,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 14514,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 13932,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 39436,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 40559,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 42458,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 235981,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 138492,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 173347,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3685572,
        "bytes_per_op": 1128972.28,
        "allocs_per_op": 3809.47
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3308030,
        "bytes_per_op": 832569.88,
        "allocs_per_op": 3869.07
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3390340,
        "bytes_per_op": 955074.64,
        "allocs_per_op": 3860.27
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 14877,
        "bytes_per_op": 7240.68,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 48477,
        "bytes_per_op": 31529.36,
        "allocs_per_op": 493.02
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 47472,
        "bytes_per_op": 33546.04,
        "allocs_per_op": 375.03
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 171836,
        "bytes_per_op": 95837.72,
        "allocs_per_op": 675.11
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 152576,
        "bytes_per_op": 77181.04,
        "allocs_per_op": 945.1
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 197355,
        "bytes_per_op": 101485.96,
        "allocs_per_op": 897.12
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 1018444,
        "bytes_per_op": 406593.04,
        "allocs_per_op": 1952.53
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 866053,
        "bytes_per_op": 258680.32,
        "allocs_per_op": 2012.35
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 878227,
        "bytes_per_op": 321084.44,
        "allocs_per_op": 1997.43
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 170391,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 156443,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 151230,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 4351,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 5273,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 6118,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 19372,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 14311,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 19912,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 56923,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 46742,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 47198,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 335946,
        "bytes_per_op": 337914.24,
        "allocs_per_op": 981.32
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 215501,
        "bytes_per_op": 254709.68,
        "allocs_per_op": 1153.24
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 266828,
        "bytes_per_op": 286263.04,
        "allocs_per_op": 1011.26
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 5135,
        "bytes_per_op": 4024.68,
        "allocs_per_op": 27.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 9403,
        "bytes_per_op": 8720.68,
        "allocs_per_op": 153.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 9709,
        "bytes_per_op": 12712.68,
        "allocs_per_op": 131.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 30607,
        "bytes_per_op": 42218.04,
        "allocs_per_op": 243.03
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 20013,
        "bytes_per_op": 21929.36,
        "allocs_per_op": 287.02
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 29303,
        "bytes_per_op": 30522.04,
        "allocs_per_op": 259.03
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 87379,
        "bytes_per_op": 119870.6,
        "allocs_per_op": 519.11
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 65602,
        "bytes_per_op": 75196.56,
        "allocs_per_op": 601.08
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 68030,
        "bytes_per_op": 91581.24,
        "allocs_per_op": 527.09
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 1382225,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 729925,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 992537,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7250,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 13030,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 10853,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 26797,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 44200,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 47524,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 293809,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 192602,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 257412,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 4256937,
        "bytes_per_op": 841811.96,
        "allocs_per_op": 2429.12
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3296073,
        "bytes_per_op": 747981.52,
        "allocs_per_op": 2426.98
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3741599,
        "bytes_per_op": 786895.6,
        "allocs_per_op": 2427.03
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 11438,
        "bytes_per_op": 7232.68,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 40935,
        "bytes_per_op": 22625.6,
        "allocs_per_op": 341.03
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 44173,
        "bytes_per_op": 26369.36,
        "allocs_per_op": 314.02
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 173904,
        "bytes_per_op": 81141.04,
        "allocs_per_op": 605.1
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 167816,
        "bytes_per_op": 56883.2,
        "allocs_per_op": 599.06
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 178997,
        "bytes_per_op": 67396.12,
        "allocs_per_op": 607.08
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 950757,
        "bytes_per_op": 264209,
        "allocs_per_op": 1268.36
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 820236,
        "bytes_per_op": 214925.32,
        "allocs_per_op": 1266.28
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 843066,
        "bytes_per_op": 235055.16,
        "allocs_per_op": 1264.32
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 674377,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 438988,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 530739,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 6736,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 10077,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 8862,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 23167,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 28339,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 31332,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 157972,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 133564,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 141176,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3235171,
        "bytes_per_op": 841434.12,
        "allocs_per_op": 2427.08
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3062539,
        "bytes_per_op": 747859.92,
        "allocs_per_op": 2424.95
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3155487,
        "bytes_per_op": 786680.04,
        "allocs_per_op": 2425.03
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 11805,
        "bytes_per_op": 7240.68,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 38590,
        "bytes_per_op": 22505.36,
        "allocs_per_op": 339.02
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 37689,
        "bytes_per_op": 26377.6,
        "allocs_per_op": 314.03
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 151552,
        "bytes_per_op": 80765.04,
        "allocs_per_op": 603.1
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 143275,
        "bytes_per_op": 56891.2,
        "allocs_per_op": 599.06
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 171084,
        "bytes_per_op": 66508.12,
        "allocs_per_op": 599.08
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 768748,
        "bytes_per_op": 263832.32,
        "allocs_per_op": 1266.35
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 818201,
        "bytes_per_op": 214805.56,
        "allocs_per_op": 1264.29
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 737883,
        "bytes_per_op": 235063.4,
        "allocs_per_op": 1264.33
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 694246,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 452313,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 506063,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 10726,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 18991,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 13262,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 39579,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 58155,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 42031,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 215785,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 136341,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 166073,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3710733,
        "bytes_per_op": 952321.24,
        "allocs_per_op": 2889.23
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3430183,
        "bytes_per_op": 770997.96,
        "allocs_per_op": 2906.98
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3314086,
        "bytes_per_op": 847997.8,
        "allocs_per_op": 2904.16
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 15850,
        "bytes_per_op": 7240.68,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 50775,
        "bytes_per_op": 25001.6,
        "allocs_per_op": 391.03
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 42461,
        "bytes_per_op": 29065.36,
        "allocs_per_op": 335.02
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 164777,
        "bytes_per_op": 87004.8,
        "allocs_per_op": 629.09
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 232830,
        "bytes_per_op": 62459.44,
        "allocs_per_op": 715.07
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 165756,
        "bytes_per_op": 79308.8,
        "allocs_per_op": 699.09
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 888951,
        "bytes_per_op": 319035.52,
        "allocs_per_op": 1496.41
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 797646,
        "bytes_per_op": 226806.24,
        "allocs_per_op": 1514.3
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 818887,
        "bytes_per_op": 266425,
        "allocs_per_op": 1509.36
      }
    ]
  },
  {
    "label": "pr7-baseline",
    "time": "2026-08-08T06:44:32Z",
    "results": [
      {
        "name": "BenchmarkBatch/nodes=128/jobs=8",
        "ns_per_op": 713970,
        "bytes_per_op": 269307,
        "allocs_per_op": 1706.4
      },
      {
        "name": "BenchmarkBatch/nodes=16/jobs=8",
        "ns_per_op": 241808,
        "bytes_per_op": 124603,
        "allocs_per_op": 904.4
      },
      {
        "name": "BenchmarkBatch/nodes=32/jobs=8",
        "ns_per_op": 372311,
        "bytes_per_op": 136091,
        "allocs_per_op": 984.4
      },
      {
        "name": "BenchmarkBatch/nodes=64/jobs=8",
        "ns_per_op": 472206,
        "bytes_per_op": 184811,
        "allocs_per_op": 1384.4
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=10",
        "ns_per_op": 219811,
        "bytes_per_op": 6491,
        "allocs_per_op": 125.04
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=2",
        "ns_per_op": 136129,
        "bytes_per_op": 2011,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=128/tasks=5",
        "ns_per_op": 913702,
        "bytes_per_op": 3691,
        "allocs_per_op": 75.04
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=10",
        "ns_per_op": 8923,
        "bytes_per_op": 3,
        "allocs_per_op": 0.04
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=2",
        "ns_per_op": 25118,
        "bytes_per_op": 2011,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=16/tasks=5",
        "ns_per_op": 52428,
        "bytes_per_op": 2187,
        "allocs_per_op": 46.04
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=10",
        "ns_per_op": 92550,
        "bytes_per_op": 3243,
        "allocs_per_op": 64.04
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=2",
        "ns_per_op": 17620,
        "bytes_per_op": 2011,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=32/tasks=5",
        "ns_per_op": 42338,
        "bytes_per_op": 3691,
        "allocs_per_op": 75.04
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=10",
        "ns_per_op": 145814,
        "bytes_per_op": 6491,
        "allocs_per_op": 125.04
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=2",
        "ns_per_op": 54988,
        "bytes_per_op": 2011,
        "allocs_per_op": 45.04
      },
      {
        "name": "BenchmarkCSA/nodes=64/tasks=5",
        "ns_per_op": 83200,
        "bytes_per_op": 3691,
        "allocs_per_op": 75.04
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 8857,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 9144,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 7674,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 8372,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 664,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 949,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 1095,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 1263,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 1012,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 3180,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 4021,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 3511,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 17792,
        "bytes_per_op": 2561,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 10481,
        "bytes_per_op": 2305,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 12160,
        "bytes_per_op": 2401,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 14417,
        "bytes_per_op": 4353,
        "allocs_per_op": 50.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 1618,
        "bytes_per_op": 641,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 2216,
        "bytes_per_op": 737,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 2406,
        "bytes_per_op": 1089,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 2150,
        "bytes_per_op": 833,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 2254,
        "bytes_per_op": 929,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 5515,
        "bytes_per_op": 1665,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 6087,
        "bytes_per_op": 1409,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=AMP/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 5722,
        "bytes_per_op": 1505,
        "allocs_per_op": 8.01
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 395090,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 274170,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 279518,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7214,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 9280,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 11347,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 26466,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 27776,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 25554,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 91636,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 124484,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 123544,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 6318008,
        "bytes_per_op": 727953,
        "allocs_per_op": 1957.05
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 4479013,
        "bytes_per_op": 724880,
        "allocs_per_op": 1945.04
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3889706,
        "bytes_per_op": 726289,
        "allocs_per_op": 1955.05
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 18294,
        "bytes_per_op": 4353,
        "allocs_per_op": 50.01
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 54805,
        "bytes_per_op": 19282,
        "allocs_per_op": 272.03
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 54327,
        "bytes_per_op": 18434,
        "allocs_per_op": 252.03
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 152571,
        "bytes_per_op": 51427,
        "allocs_per_op": 480.06
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 175527,
        "bytes_per_op": 51171,
        "allocs_per_op": 480.05
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 155471,
        "bytes_per_op": 51267,
        "allocs_per_op": 480.07
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 802710,
        "bytes_per_op": 204109,
        "allocs_per_op": 1018.28
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 802490,
        "bytes_per_op": 202958,
        "allocs_per_op": 1016.29
      },
      {
        "name": "BenchmarkFind/alg=MinCost/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 773625,
        "bytes_per_op": 203917,
        "allocs_per_op": 1022.28
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 1380537,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 630330,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 1133143,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 8369,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 14804,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 17771,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 39337,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 52210,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 62208,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 338069,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 219745,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 289122,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 7696830,
        "bytes_per_op": 844154,
        "allocs_per_op": 2442.23
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 4013582,
        "bytes_per_op": 747891,
        "allocs_per_op": 2426.08
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 5816899,
        "bytes_per_op": 787157,
        "allocs_per_op": 2430.12
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 17308,
        "bytes_per_op": 7265,
        "allocs_per_op": 63.01
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 55218,
        "bytes_per_op": 22530,
        "allocs_per_op": 340.03
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 72450,
        "bytes_per_op": 26625,
        "allocs_per_op": 317.02
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 217693,
        "bytes_per_op": 80021,
        "allocs_per_op": 600.1
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 201336,
        "bytes_per_op": 56916,
        "allocs_per_op": 600.09
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 234916,
        "bytes_per_op": 66532,
        "allocs_per_op": 600.08
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 1181574,
        "bytes_per_op": 265010,
        "allocs_per_op": 1273.38
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 1119140,
        "bytes_per_op": 214831,
        "allocs_per_op": 1265.31
      },
      {
        "name": "BenchmarkFind/alg=MinEnergy/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 1003619,
        "bytes_per_op": 235760,
        "allocs_per_op": 1271.33
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 715791,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 482766,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 583475,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 7609,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 11630,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 15966,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 31051,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 45252,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 39051,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 458882,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 152328,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 194173,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 5695942,
        "bytes_per_op": 1018092,
        "allocs_per_op": 3347.46
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3149844,
        "bytes_per_op": 809438,
        "allocs_per_op": 3387.15
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 4507093,
        "bytes_per_op": 893763,
        "allocs_per_op": 3381.28
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 19431,
        "bytes_per_op": 7241,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 58160,
        "bytes_per_op": 29034,
        "allocs_per_op": 441.03
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 67562,
        "bytes_per_op": 30858,
        "allocs_per_op": 354.03
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 204250,
        "bytes_per_op": 89598,
        "allocs_per_op": 649.11
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 225110,
        "bytes_per_op": 71613,
        "allocs_per_op": 829.09
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 255157,
        "bytes_per_op": 88686,
        "allocs_per_op": 797.12
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 1559315,
        "bytes_per_op": 351391,
        "allocs_per_op": 1722.49
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 890226,
        "bytes_per_op": 246680,
        "allocs_per_op": 1762.33
      },
      {
        "name": "BenchmarkFind/alg=MinFinish/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 826953,
        "bytes_per_op": 289724,
        "allocs_per_op": 1752.42
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 853130,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 589859,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 579655,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 14239,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 16498,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 27291,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 64414,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 59806,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 66197,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 264800,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 175635,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 262535,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 4281934,
        "bytes_per_op": 1128979,
        "allocs_per_op": 3809.63
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 6708198,
        "bytes_per_op": 832575,
        "allocs_per_op": 3869.18
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 7486540,
        "bytes_per_op": 955080,
        "allocs_per_op": 3860.38
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 17350,
        "bytes_per_op": 7241,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 76907,
        "bytes_per_op": 31531,
        "allocs_per_op": 493.05
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 86826,
        "bytes_per_op": 33547,
        "allocs_per_op": 375.05
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 219204,
        "bytes_per_op": 95838,
        "allocs_per_op": 675.13
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 222076,
        "bytes_per_op": 77181,
        "allocs_per_op": 945.11
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 212693,
        "bytes_per_op": 101487,
        "allocs_per_op": 897.13
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 1112999,
        "bytes_per_op": 406594,
        "allocs_per_op": 1952.55
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 833725,
        "bytes_per_op": 258681,
        "allocs_per_op": 2012.36
      },
      {
        "name": "BenchmarkFind/alg=MinFinishExact/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 1314817,
        "bytes_per_op": 321086,
        "allocs_per_op": 1997.47
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 212374,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 501661,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 191370,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 5683,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 6774,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 12240,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 29991,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 16820,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 19751,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 59363,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 52787,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 74448,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 364426,
        "bytes_per_op": 337915,
        "allocs_per_op": 981.36
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 540341,
        "bytes_per_op": 254710,
        "allocs_per_op": 1153.26
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 313681,
        "bytes_per_op": 286264,
        "allocs_per_op": 1011.27
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 8020,
        "bytes_per_op": 4025,
        "allocs_per_op": 27.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 13853,
        "bytes_per_op": 8721,
        "allocs_per_op": 153.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 19408,
        "bytes_per_op": 12713,
        "allocs_per_op": 131.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 43426,
        "bytes_per_op": 42219,
        "allocs_per_op": 243.04
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 31387,
        "bytes_per_op": 21929,
        "allocs_per_op": 287.02
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 33696,
        "bytes_per_op": 30522,
        "allocs_per_op": 259.03
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 136719,
        "bytes_per_op": 119871,
        "allocs_per_op": 519.11
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 117712,
        "bytes_per_op": 75197,
        "allocs_per_op": 601.08
      },
      {
        "name": "BenchmarkFind/alg=MinProcTime/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 101158,
        "bytes_per_op": 91581,
        "allocs_per_op": 527.09
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 1638987,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 1479231,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 1176888,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 9136,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 17239,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 16876,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 33811,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 62708,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 63873,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 347148,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 239688,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 271955,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 6771426,
        "bytes_per_op": 841814,
        "allocs_per_op": 2429.17
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3773412,
        "bytes_per_op": 747986,
        "allocs_per_op": 2427.08
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 4471543,
        "bytes_per_op": 786900,
        "allocs_per_op": 2427.12
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 14770,
        "bytes_per_op": 7233,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 50640,
        "bytes_per_op": 22626,
        "allocs_per_op": 341.03
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 67508,
        "bytes_per_op": 26369,
        "allocs_per_op": 314.02
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 193429,
        "bytes_per_op": 81141,
        "allocs_per_op": 605.11
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 196115,
        "bytes_per_op": 56884,
        "allocs_per_op": 599.07
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 223724,
        "bytes_per_op": 67396,
        "allocs_per_op": 607.08
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 992031,
        "bytes_per_op": 264210,
        "allocs_per_op": 1268.37
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 933155,
        "bytes_per_op": 214926,
        "allocs_per_op": 1266.31
      },
      {
        "name": "BenchmarkFind/alg=MinProcTimeGreedy/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 902538,
        "bytes_per_op": 235055,
        "allocs_per_op": 1264.32
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 729028,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 1223548,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 788433,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 10677,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 11679,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 13811,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 30888,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 45548,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 34634,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 192089,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 150198,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 187316,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 3403195,
        "bytes_per_op": 841441,
        "allocs_per_op": 2427.23
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 4389248,
        "bytes_per_op": 747866,
        "allocs_per_op": 2425.07
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 6158816,
        "bytes_per_op": 786684,
        "allocs_per_op": 2425.12
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 15120,
        "bytes_per_op": 7241,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 48475,
        "bytes_per_op": 22505,
        "allocs_per_op": 339.02
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 66736,
        "bytes_per_op": 26378,
        "allocs_per_op": 314.03
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 194975,
        "bytes_per_op": 80765,
        "allocs_per_op": 603.11
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 217083,
        "bytes_per_op": 56891,
        "allocs_per_op": 599.06
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 171878,
        "bytes_per_op": 66508,
        "allocs_per_op": 599.09
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 1455879,
        "bytes_per_op": 263834,
        "allocs_per_op": 1266.38
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 818384,
        "bytes_per_op": 214806,
        "allocs_per_op": 1264.31
      },
      {
        "name": "BenchmarkFind/alg=MinRunTime/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 890988,
        "bytes_per_op": 235064,
        "allocs_per_op": 1264.34
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=10",
        "ns_per_op": 718206,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=2",
        "ns_per_op": 577412,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=128/tasks=5",
        "ns_per_op": 565075,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=10",
        "ns_per_op": 11831,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=2",
        "ns_per_op": 23170,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=16/tasks=5",
        "ns_per_op": 25985,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=10",
        "ns_per_op": 72960,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=2",
        "ns_per_op": 67925,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=32/tasks=5",
        "ns_per_op": 60902,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=10",
        "ns_per_op": 811299,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=2",
        "ns_per_op": 179239,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=incremental/nodes=64/tasks=5",
        "ns_per_op": 231007,
        "bytes_per_op": 0,
        "allocs_per_op": 0
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=10",
        "ns_per_op": 5029916,
        "bytes_per_op": 952327,
        "allocs_per_op": 2889.36
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=2",
        "ns_per_op": 3571636,
        "bytes_per_op": 771003,
        "allocs_per_op": 2907.11
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=128/tasks=5",
        "ns_per_op": 3741916,
        "bytes_per_op": 848001,
        "allocs_per_op": 2904.22
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=10",
        "ns_per_op": 17595,
        "bytes_per_op": 7241,
        "allocs_per_op": 62.01
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=2",
        "ns_per_op": 62538,
        "bytes_per_op": 25001,
        "allocs_per_op": 391.02
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=16/tasks=5",
        "ns_per_op": 92600,
        "bytes_per_op": 29066,
        "allocs_per_op": 335.04
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=10",
        "ns_per_op": 185652,
        "bytes_per_op": 87006,
        "allocs_per_op": 629.12
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=2",
        "ns_per_op": 207708,
        "bytes_per_op": 62460,
        "allocs_per_op": 715.08
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=32/tasks=5",
        "ns_per_op": 186510,
        "bytes_per_op": 79309,
        "allocs_per_op": 699.1
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=10",
        "ns_per_op": 2499879,
        "bytes_per_op": 319038,
        "allocs_per_op": 1496.46
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=2",
        "ns_per_op": 840537,
        "bytes_per_op": 226806,
        "allocs_per_op": 1514.31
      },
      {
        "name": "BenchmarkFind/alg=MinRunTimeExact/kernel=oracle/nodes=64/tasks=5",
        "ns_per_op": 917462,
        "bytes_per_op": 266425,
        "allocs_per_op": 1509.36
      }
    ]
  }
];
