// Package slotsel is a Go implementation of the slot selection and
// co-allocation algorithms for parallel jobs in distributed computing with
// non-dedicated and heterogeneous resources from Toporkov, Toporkova,
// Tselishchev and Yemelyanov, "Slot Selection Algorithms in Distributed
// Computing with Non-dedicated and Heterogeneous Resources" (PaCT 2013).
//
// The library contains:
//
//   - the AEP scheme ("Algorithm searching for Extreme Performance") and its
//     instantiations — AMP, MinFinish, MinCost, MinRunTime, MinProcTime —
//     all linear in the number of available slots (package internal/core,
//     re-exported here);
//   - the CSA scheme searching for multiple disjoint alternative windows;
//   - a complete simulation substrate: heterogeneous node generation,
//     free-market pricing, non-dedicated initial load, slot publication;
//   - the two-stage batch scheduling scheme the algorithms plug into;
//   - baselines (first-fit, quadratic earliest-start, exhaustive search)
//     and an experiment harness reproducing every figure and table of the
//     paper's evaluation.
//
// # Quick start
//
//	rng := slotsel.NewRand(42)
//	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
//	req := slotsel.DefaultRequest() // 5 parallel slots, volume 150, budget 1500
//	w, err := slotsel.MinCost{}.Find(e.Slots, &req)
//
// See the examples directory for runnable programs.
package slotsel

import (
	"slotsel/internal/baseline"
	"slotsel/internal/batchsched"
	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/env"
	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/obs"
	"slotsel/internal/parallel"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// Core model types.
type (
	// Node is a heterogeneous CPU node with a performance rate, price and
	// hardware/software attributes.
	Node = nodes.Node

	// OS identifies a node operating system.
	OS = nodes.OS

	// Arch identifies a node CPU architecture.
	Arch = nodes.Arch

	// PricingModel derives per-unit node prices from performance.
	PricingModel = nodes.PricingModel

	// Interval is a half-open time span.
	Interval = slots.Interval

	// Slot is a free availability window on one node.
	Slot = slots.Slot

	// SlotList is a collection of slots, ordered by start time for the AEP
	// scan.
	SlotList = slots.List

	// Environment is a distributed environment snapshot: nodes plus the
	// slots they publish for the scheduling interval.
	Environment = env.Environment

	// EnvConfig parametrizes environment generation.
	EnvConfig = env.Config

	// Request is a job resource request: task count, volume, budget,
	// deadline and node requirements.
	Request = job.Request

	// Job is a batch job: a request plus priority metadata.
	Job = job.Job

	// Batch is an ordered collection of jobs.
	Batch = job.Batch

	// Rand is the deterministic random source used across the library.
	Rand = randx.Rand
)

// Windows and algorithms.
type (
	// Window is a co-allocation of n slots starting synchronously.
	Window = core.Window

	// Placement assigns one task to one slot.
	Placement = core.Placement

	// Candidate is a slot considered at one scan position.
	Candidate = core.Candidate

	// Algorithm is a slot selection algorithm.
	Algorithm = core.Algorithm

	// AMP finds the earliest-start window (first fit under the budget).
	AMP = core.AMP

	// MinCost finds the globally cheapest window.
	MinCost = core.MinCost

	// MinRunTime finds the window with the minimum runtime.
	MinRunTime = core.MinRunTime

	// MinFinish finds the window with the earliest finish time.
	MinFinish = core.MinFinish

	// MinProcTime is the paper's simplified total-CPU-time minimizer.
	MinProcTime = core.MinProcTime

	// MinProcTimeGreedy is the directed total-CPU-time extension.
	MinProcTimeGreedy = core.MinProcTimeGreedy

	// MinEnergy is the energy-criterion extension.
	MinEnergy = core.MinEnergy

	// FirstFit is the no-optimization first-fit baseline.
	FirstFit = baseline.FirstFit

	// CSAOptions configures the multi-alternative CSA search.
	CSAOptions = csa.Options

	// Criterion selects the characteristic by which a CSA alternative is
	// chosen.
	Criterion = csa.Criterion
)

// Batch scheduling (two-stage scheme).
type (
	// JobAlternatives is the stage-1 alternative set of one job.
	JobAlternatives = batchsched.JobAlternatives

	// Plan is a complete batch schedule.
	Plan = batchsched.Plan

	// SelectConfig parametrizes the stage-2 combination selection.
	SelectConfig = batchsched.SelectConfig

	// BatchOptions configures the stage-1 alternative search, including
	// the speculative worker pool (Workers; results are identical to the
	// sequential path for any worker count).
	BatchOptions = batchsched.Options

	// FindResult is one algorithm's outcome in a concurrent FindAllWindows
	// search.
	FindResult = parallel.Result
)

// Observability. A nil Collector means "off" everywhere at no cost; see
// the internal/obs package documentation for the event model.
type (
	// Collector receives instrumentation events (scan counters, selection
	// stats, batch/speculation stats, trace spans).
	Collector = obs.Collector

	// StatsCollector accumulates counters; its zero value is ready to use
	// and Snapshot().WriteText renders a plain-text report.
	StatsCollector = obs.Stats

	// TraceCollector records spans into a bounded ring buffer and exports
	// Chrome trace_event JSON; construct with NewTraceCollector.
	TraceCollector = obs.Trace
)

// DefaultTraceCapacity is a reasonable span capacity for NewTraceCollector
// (the CLI tools' default).
const DefaultTraceCapacity = obs.DefaultTraceCapacity

// NewTraceCollector returns a trace sink holding at most capacity spans;
// capacity must be positive.
func NewTraceCollector(capacity int) *TraceCollector { return obs.NewTrace(capacity) }

// CombineCollectors fans events out to several collectors, skipping nils;
// it returns nil when nothing remains.
func CombineCollectors(cs ...Collector) Collector { return obs.Combine(cs...) }

// FindObserved runs one algorithm search with instrumentation delivered to
// col; col == nil runs the plain search with zero added work.
func FindObserved(alg Algorithm, list SlotList, req *Request, col Collector) (*Window, error) {
	return core.FindObserved(alg, list, req, col)
}

// ErrNoWindow is returned when no feasible window exists.
var ErrNoWindow = core.ErrNoWindow

// CSA selection criteria.
const (
	ByStart    = csa.ByStart
	ByFinish   = csa.ByFinish
	ByCost     = csa.ByCost
	ByRuntime  = csa.ByRuntime
	ByProcTime = csa.ByProcTime
)

// NewRand returns a deterministic random source for the given seed.
func NewRand(seed uint64) *Rand { return randx.New(seed) }

// DefaultEnvConfig returns the paper's §3.1 environment: 100 nodes with
// performance U{2..10}, free-market pricing, 10-50% non-dedicated load,
// scheduling interval [0, 600).
func DefaultEnvConfig() EnvConfig { return env.DefaultConfig() }

// GenerateEnvironment draws a fresh environment snapshot.
func GenerateEnvironment(cfg EnvConfig, rng *Rand) *Environment { return env.Generate(cfg, rng) }

// DefaultRequest returns the paper's base job: 5 parallel slots of volume
// 150 with total cost limited to 1500.
func DefaultRequest() Request { return job.DefaultRequest() }

// SearchAlternatives runs the CSA scheme: repeated AMP searches over a
// working copy of the list, cutting every found window, yielding pairwise
// disjoint alternatives.
func SearchAlternatives(list SlotList, req *Request, opts CSAOptions) ([]*Window, error) {
	return csa.Search(list, req, opts)
}

// BestAlternative picks the alternative with the minimum criterion value.
func BestAlternative(alts []*Window, c Criterion) *Window { return csa.Best(alts, c) }

// ScheduleBatch runs the two-stage batch scheduling scheme: per-job CSA
// alternative search (stage 1) followed by combination selection under the
// VO budget (stage 2).
func ScheduleBatch(list SlotList, batch *Batch, csaOpts CSAOptions, sel SelectConfig) (*Plan, error) {
	return batchsched.Schedule(list, batch, csaOpts, sel)
}

// ScheduleBatchOpts is ScheduleBatch with full stage-1 options; setting
// BatchOptions.Workers > 1 runs the alternative search on the speculative
// worker pool, producing the same plan in less wall-clock time.
func ScheduleBatchOpts(list SlotList, batch *Batch, opts BatchOptions, sel SelectConfig) (*Plan, error) {
	return batchsched.ScheduleOpts(list, batch, opts, sel)
}

// FindAllWindows runs several algorithms concurrently over one shared slot
// list and returns their windows in input order. For any worker count the
// results are identical to calling each algorithm's Find sequentially;
// workers <= 0 selects GOMAXPROCS.
func FindAllWindows(list SlotList, req *Request, algs []Algorithm, workers int) []FindResult {
	return parallel.FindAll(list, req, algs, workers)
}
