// Quickstart: generate a distributed environment with non-dedicated
// heterogeneous resources, and co-allocate a window of 5 parallel slots for
// one job under each of the paper's selection criteria.
package main

import (
	"errors"
	"fmt"
	"log"

	"slotsel"
)

func main() {
	// A reproducible environment: 100 CPU nodes (performance 2..10,
	// free-market pricing), 10-50% initial load, scheduling interval
	// [0, 600).
	rng := slotsel.NewRand(42)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	fmt.Printf("environment: %d nodes, %d published slots, %.0f%% initially loaded\n\n",
		len(e.Nodes), len(e.Slots), 100*e.Utilization())

	// The paper's base job: 5 parallel tasks of volume 150 (a task runs in
	// volume/performance time units), total cost capped at 1500.
	req := slotsel.DefaultRequest()

	algorithms := []slotsel.Algorithm{
		slotsel.AMP{},                // earliest start
		slotsel.MinFinish{},          // earliest finish
		slotsel.MinCost{},            // cheapest
		slotsel.MinRunTime{},         // shortest runtime
		slotsel.MinProcTime{Seed: 7}, // least CPU time (simplified, random)
	}
	for _, alg := range algorithms {
		w, err := alg.Find(e.Slots, &req)
		if errors.Is(err, slotsel.ErrNoWindow) {
			fmt.Printf("%-12s no feasible window\n", alg.Name())
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s start=%6.1f finish=%6.1f runtime=%5.1f cpu=%6.1f cost=%7.1f\n",
			alg.Name(), w.Start, w.Finish(), w.Runtime, w.ProcTime, w.Cost)
	}

	// Show the composition of the cheapest window: heterogeneous nodes give
	// it a "rough right edge" — each task finishes at its own time.
	w, err := slotsel.MinCost{}.Find(e.Slots, &req)
	if err != nil {
		log.Fatal(err)
	}
	w.SortPlacementsByNode()
	fmt.Printf("\ncheapest window composition (start %.1f):\n", w.Start)
	for _, p := range w.Placements {
		n := p.Node()
		fmt.Printf("  node %3d  perf %2.0f  price %6.2f  task [%6.1f, %6.1f)  cost %6.1f\n",
			n.ID, n.Perf, n.Price, p.Start, p.Finish(), p.Cost)
	}
}
