// Heterogeneous resources: resource requests constrain node hardware and
// software (performance floor, RAM, disk, operating system), and the same
// environment yields very different windows depending on both the
// requirements and the optimization criterion.
package main

import (
	"errors"
	"fmt"
	"log"

	"slotsel"
)

func main() {
	rng := slotsel.NewRand(7)
	cfg := slotsel.DefaultEnvConfig()
	cfg.Nodes.Count = 160
	e := slotsel.GenerateEnvironment(cfg, rng)

	// Count the hardware/software mix of the generated environment.
	osCount := map[slotsel.OS]int{}
	for _, n := range e.Nodes {
		osCount[n.OS]++
	}
	fmt.Printf("environment: %d nodes, %d slots; OS mix: %v\n\n", len(e.Nodes), len(e.Slots), osCount)

	requests := []struct {
		name string
		req  slotsel.Request
	}{
		{"anything", slotsel.Request{
			TaskCount: 5, Volume: 150, MaxCost: 1500,
		}},
		{"linux+8GB", slotsel.Request{
			TaskCount: 5, Volume: 150, MaxCost: 1500,
			OS: []slotsel.OS{"linux"}, MinRAMMB: 8192,
		}},
		{"fast nodes", slotsel.Request{
			TaskCount: 5, Volume: 150, MaxCost: 2600,
			MinPerf: 7,
		}},
		{"big disk, any 3", slotsel.Request{
			TaskCount: 3, Volume: 200, MaxCost: 1400,
			MinDiskGB: 500,
		}},
	}

	algorithms := []slotsel.Algorithm{
		slotsel.AMP{},
		slotsel.MinCost{},
		slotsel.MinRunTime{},
	}

	for _, rc := range requests {
		fmt.Printf("request %q (n=%d, vol=%g, budget=%g):\n",
			rc.name, rc.req.TaskCount, rc.req.Volume, rc.req.MaxCost)
		for _, alg := range algorithms {
			req := rc.req
			w, err := alg.Find(e.Slots, &req)
			if errors.Is(err, slotsel.ErrNoWindow) {
				fmt.Printf("  %-10s no feasible window\n", alg.Name())
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			slowest, fastest := 11.0, 0.0
			for _, p := range w.Placements {
				if p.Node().Perf < slowest {
					slowest = p.Node().Perf
				}
				if p.Node().Perf > fastest {
					fastest = p.Node().Perf
				}
			}
			fmt.Printf("  %-10s start=%6.1f runtime=%5.1f cost=%7.1f perf=[%g..%g]\n",
				alg.Name(), w.Start, w.Runtime, w.Cost, slowest, fastest)
		}
		fmt.Println()
	}

	// The energy-criterion extension: trade runtime for energy by putting
	// the job on slower (lower-power) nodes within the budget.
	req := slotsel.DefaultRequest()
	me := slotsel.MinEnergy{}
	we, err := me.Find(e.Slots, &req)
	if err != nil {
		log.Fatal(err)
	}
	wr, err := slotsel.MinRunTime{}.Find(e.Slots, &req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy extension (E = perf^2 x time per task):\n")
	fmt.Printf("  MinEnergy:  runtime=%5.1f energy=%8.1f cost=%7.1f\n", we.Runtime, me.Energy(we), we.Cost)
	fmt.Printf("  MinRunTime: runtime=%5.1f energy=%8.1f cost=%7.1f\n", wr.Runtime, me.Energy(wr), wr.Cost)
}
