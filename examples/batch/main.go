// Batch scheduling: the two-stage scheme the paper's slot selection
// algorithms plug into. Stage 1 finds a set of disjoint alternative windows
// per job (CSA); stage 2 chooses one alternative per job optimizing the
// whole-batch criterion under a virtual organization budget.
package main

import (
	"fmt"
	"log"

	"slotsel"
)

func main() {
	rng := slotsel.NewRand(2013)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	fmt.Printf("environment: %d nodes, %d slots\n\n", len(e.Nodes), len(e.Slots))

	// A batch of jobs with different shapes and priorities. Higher priority
	// jobs get their alternatives first (and thus the best parts of the
	// schedule).
	batch := &slotsel.Batch{}
	batch.Add(&slotsel.Job{ID: 1, Name: "render", Priority: 3,
		Request: slotsel.Request{TaskCount: 5, Volume: 150, MaxCost: 1500}})
	batch.Add(&slotsel.Job{ID: 2, Name: "mapreduce", Priority: 2,
		Request: slotsel.Request{TaskCount: 8, Volume: 90, MaxCost: 1600}})
	batch.Add(&slotsel.Job{ID: 3, Name: "montecarlo", Priority: 1,
		Request: slotsel.Request{TaskCount: 3, Volume: 240, MaxCost: 1200}})
	batch.Add(&slotsel.Job{ID: 4, Name: "analytics", Priority: 1,
		Request: slotsel.Request{TaskCount: 4, Volume: 120, MaxCost: 900}})

	csaOpts := slotsel.CSAOptions{MaxAlternatives: 25, MinSlotLength: 10}

	// Schedule the batch minimizing total finish time under a VO budget.
	plan, err := slotsel.ScheduleBatch(e.Slots, batch, csaOpts, slotsel.SelectConfig{
		Budget:    4200,
		Criterion: slotsel.ByFinish,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan: %d/%d jobs scheduled, total cost %.1f (VO budget 4200), makespan %.1f\n\n",
		plan.Scheduled, len(batch.Jobs), plan.TotalCost, plan.Makespan())
	for _, a := range plan.Assignments {
		if a.Chosen == nil {
			fmt.Printf("  %-12s UNSCHEDULED (no affordable alternative)\n", a.Job.Name)
			continue
		}
		w := a.Chosen
		fmt.Printf("  %-12s prio=%d  start=%6.1f finish=%6.1f cost=%7.1f (%d tasks)\n",
			a.Job.Name, a.Job.Priority, w.Start, w.Finish(), w.Cost, w.Size())
	}

	// Compare criteria: the same alternatives, selected for cost instead.
	cheap, err := slotsel.ScheduleBatch(e.Slots, batch, csaOpts, slotsel.SelectConfig{
		Budget:    4200,
		Criterion: slotsel.ByCost,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselection criterion comparison under the same VO budget:\n")
	fmt.Printf("  minimize finish: cost %7.1f, makespan %6.1f\n", plan.TotalCost, plan.Makespan())
	fmt.Printf("  minimize cost:   cost %7.1f, makespan %6.1f\n", cheap.TotalCost, cheap.Makespan())
}
