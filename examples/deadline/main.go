// Deadline-constrained selection and CSA alternatives: a user needs the job
// finished by a deadline; the CSA scheme enumerates disjoint alternative
// windows, giving the scheduler a choice set instead of a single answer.
package main

import (
	"errors"
	"fmt"
	"log"

	"slotsel"
)

func main() {
	rng := slotsel.NewRand(99)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	fmt.Printf("environment: %d nodes, %d slots\n\n", len(e.Nodes), len(e.Slots))

	// Tightening the deadline shrinks the feasible set until nothing fits.
	fmt.Println("deadline sweep (MinCost under a finish deadline):")
	for _, deadline := range []float64{600, 300, 150, 80, 50, 30} {
		req := slotsel.DefaultRequest()
		req.Deadline = deadline
		w, err := slotsel.MinCost{}.Find(e.Slots, &req)
		if errors.Is(err, slotsel.ErrNoWindow) {
			fmt.Printf("  deadline %5.0f: no feasible window\n", deadline)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  deadline %5.0f: start=%6.1f finish=%6.1f cost=%7.1f\n",
			deadline, w.Start, w.Finish(), w.Cost)
	}

	// CSA: all disjoint alternatives for the unconstrained request, and the
	// per-criterion extremes selected from the same set.
	req := slotsel.DefaultRequest()
	alts, err := slotsel.SearchAlternatives(e.Slots, &req, slotsel.CSAOptions{MinSlotLength: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCSA found %d disjoint alternatives; first five:\n", len(alts))
	for i, w := range alts {
		if i == 5 {
			break
		}
		fmt.Printf("  #%d start=%6.1f finish=%6.1f runtime=%5.1f cost=%7.1f\n",
			i+1, w.Start, w.Finish(), w.Runtime, w.Cost)
	}

	fmt.Println("\nextreme alternatives by criterion (optimization at selection time):")
	for _, c := range []slotsel.Criterion{
		slotsel.ByStart, slotsel.ByFinish, slotsel.ByCost, slotsel.ByRuntime, slotsel.ByProcTime,
	} {
		w := slotsel.BestAlternative(alts, c)
		fmt.Printf("  best by %-8s: start=%6.1f finish=%6.1f runtime=%5.1f cpu=%6.1f cost=%7.1f\n",
			c, w.Start, w.Finish(), w.Runtime, w.ProcTime, w.Cost)
	}
}
