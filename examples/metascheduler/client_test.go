package main

import (
	"bytes"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slotsel/internal/env"
	"slotsel/internal/inventory"
	"slotsel/internal/randx"
	"slotsel/internal/server"
)

// TestRunClientInProcess drives the client against an in-process server:
// the full walkthrough with no external dependencies.
func TestRunClientInProcess(t *testing.T) {
	e := env.Generate(env.DefaultConfig().WithNodeCount(20).WithHorizon(600), randx.New(7))
	inv, err := inventory.New(e.Slots, inventory.Options{MinSlotLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(inv, server.Options{}))
	defer ts.Close()

	var out bytes.Buffer
	if err := runClient(ts.URL, 25, 3, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "submitted 25 jobs") {
		t.Errorf("missing summary line: %q", got)
	}
	ctr := inv.Status().Counters
	if ctr.Commits == 0 {
		t.Error("client committed nothing against a fresh 20-node environment")
	}
	if ctr.Reserves != ctr.Commits+ctr.Releases {
		t.Errorf("client leaked holds: %+v", ctr)
	}
}

// TestRunClientAgainstLiveServer exercises a slotserve instance already
// listening on localhost:8080 (as started by the README walkthrough) and
// skips silently when none is running, so the suite stays hermetic.
func TestRunClientAgainstLiveServer(t *testing.T) {
	const addr = "localhost:8080"
	conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
	if err != nil {
		t.Skipf("no slotserve listening on %s: %v", addr, err)
	}
	conn.Close()

	var out bytes.Buffer
	if err := runClient("http://"+addr, 10, 11, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "submitted 10 jobs") {
		t.Errorf("missing summary line: %q", out.String())
	}
}
