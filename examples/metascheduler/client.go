package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"slotsel/internal/job"
	"slotsel/internal/persist"
	"slotsel/internal/randx"
)

// runClient is the client-mode variant of the metascheduler example: instead
// of simulating a VO broker in-process, it submits a stream of job requests
// to a running slotserve instance over the HTTP API, exercising the full
// reserve → commit / release lifecycle against shared remote state. Several
// clients may run concurrently against one server; the server's optimistic
// conflict detection arbitrates.
func runClient(serverURL string, jobs int, seed uint64, out io.Writer) error {
	rng := randx.New(seed)
	client := &http.Client{Timeout: 10 * time.Second}

	var committed, released, rejected int
	for i := 0; i < jobs; i++ {
		req := &job.Request{
			TaskCount: rng.IntRange(1, 4),
			Volume:    float64(rng.IntRange(20, 120)),
			MaxCost:   1e6,
		}
		var reqBuf bytes.Buffer
		if err := persist.WriteRequest(&reqBuf, req); err != nil {
			return err
		}
		body, err := json.Marshal(map[string]any{
			"request":     json.RawMessage(reqBuf.Bytes()),
			"ttl_seconds": 30,
		})
		if err != nil {
			return err
		}

		resp, err := client.Post(serverURL+"/v1/reserve", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("reserve: %w", err)
		}
		var res struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusConflict:
			rejected++
			continue
		case resp.StatusCode != http.StatusOK:
			return fmt.Errorf("reserve: status %d: %s", resp.StatusCode, res.Error)
		case decErr != nil:
			return fmt.Errorf("reserve: %w", decErr)
		}

		// Commit most holds; walk away from every fifth so the server's
		// release path and hold accounting see traffic too.
		endpoint, counter := "/v1/commit", &committed
		if i%5 == 4 {
			endpoint, counter = "/v1/release", &released
		}
		idBody, _ := json.Marshal(map[string]string{"id": res.ID})
		resp, err = client.Post(serverURL+endpoint, "application/json", bytes.NewReader(idBody))
		if err != nil {
			return fmt.Errorf("%s: %w", endpoint, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", endpoint, resp.StatusCode)
		}
		*counter++
	}

	resp, err := client.Get(serverURL + "/v1/statusz")
	if err != nil {
		return fmt.Errorf("statusz: %w", err)
	}
	defer resp.Body.Close()
	var status struct {
		Inventory struct {
			Version   uint64 `json:"version"`
			FreeSlots int    `json:"free_slots"`
			Committed int    `json:"committed"`
		} `json:"inventory"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return fmt.Errorf("statusz: %w", err)
	}

	fmt.Fprintf(out, "submitted %d jobs against %s: %d committed, %d released, %d rejected (no window / conflict)\n",
		jobs, serverURL, committed, released, rejected)
	fmt.Fprintf(out, "server now at version %d: %d windows committed in total, %d free slots remain\n",
		status.Inventory.Version, status.Inventory.Committed, status.Inventory.FreeSlots)
	return nil
}
