// Metascheduler: the long-run operational context of the paper's slot
// selection algorithms. A virtual organization's metascheduler runs
// consecutive scheduling cycles over non-dedicated resources: jobs arrive
// continuously, each cycle publishes the current free slots, the two-stage
// scheme (CSA alternatives + combination selection) schedules the pending
// batch, and accepted co-allocations become reservations that constrain the
// following cycles.
//
// With -server URL the example switches to client mode and submits its job
// stream to a running slotserve instance instead of simulating in-process:
//
//	slotgen -nodes 50 -seed 7 -o env.json
//	slotserve -addr localhost:8080 -slots env.json &
//	go run ./examples/metascheduler -server http://localhost:8080 -jobs 40
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"slotsel"
)

func main() {
	server := flag.String("server", "", "slotserve base `URL`; empty runs the in-process simulation")
	jobs := flag.Int("jobs", 40, "jobs to submit in client mode")
	seed := flag.Uint64("seed", 7, "request-stream seed in client mode")
	flag.Parse()

	if *server != "" {
		if err := runClient(*server, *jobs, *seed, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := slotsel.DefaultVOSimConfig()
	cfg.Seed = 7
	cfg.Cycles = 30
	cfg.ArrivalRate = 6

	fmt.Printf("simulating %d scheduling cycles (advance %.0f, lookahead %.0f), %.0f jobs/cycle on average\n\n",
		cfg.Cycles, cfg.CycleAdvance, cfg.Horizon, cfg.ArrivalRate)

	res, err := slotsel.RunVOSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %d jobs, scheduled %d (%.0f%%), dropped %d after retries\n",
		res.Submitted, res.Scheduled, 100*res.AcceptanceRate(), res.Dropped)
	fmt.Printf("average queue length: %.1f jobs, average wait: %.2f cycles\n",
		res.QueueLength.Mean(), res.WaitCycles.Mean())
	fmt.Printf("average accepted window: cost %.1f, finish %.1f after cycle start\n",
		res.WindowCost.Mean(), res.WindowFinish.Mean())
	fmt.Printf("broker utilization of total node time: %.1f%%\n\n", 100*res.BrokerUtilization)

	// Load sensitivity: the same VO under increasing arrival pressure.
	fmt.Println("arrival-rate sweep (same environment seed):")
	fmt.Println("  rate  accepted  queue  wait(cycles)  utilization")
	for _, rate := range []float64{2, 6, 12, 24} {
		c := cfg
		c.ArrivalRate = rate
		r, err := slotsel.RunVOSimulation(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f  %7.0f%%  %5.1f  %12.2f  %10.1f%%\n",
			rate, 100*r.AcceptanceRate(), r.QueueLength.Mean(), r.WaitCycles.Mean(), 100*r.BrokerUtilization)
	}
}
