// Metascheduler: the long-run operational context of the paper's slot
// selection algorithms. A virtual organization's metascheduler runs
// consecutive scheduling cycles over non-dedicated resources: jobs arrive
// continuously, each cycle publishes the current free slots, the two-stage
// scheme (CSA alternatives + combination selection) schedules the pending
// batch, and accepted co-allocations become reservations that constrain the
// following cycles.
package main

import (
	"fmt"
	"log"

	"slotsel"
)

func main() {
	cfg := slotsel.DefaultVOSimConfig()
	cfg.Seed = 7
	cfg.Cycles = 30
	cfg.ArrivalRate = 6

	fmt.Printf("simulating %d scheduling cycles (advance %.0f, lookahead %.0f), %.0f jobs/cycle on average\n\n",
		cfg.Cycles, cfg.CycleAdvance, cfg.Horizon, cfg.ArrivalRate)

	res, err := slotsel.RunVOSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %d jobs, scheduled %d (%.0f%%), dropped %d after retries\n",
		res.Submitted, res.Scheduled, 100*res.AcceptanceRate(), res.Dropped)
	fmt.Printf("average queue length: %.1f jobs, average wait: %.2f cycles\n",
		res.QueueLength.Mean(), res.WaitCycles.Mean())
	fmt.Printf("average accepted window: cost %.1f, finish %.1f after cycle start\n",
		res.WindowCost.Mean(), res.WindowFinish.Mean())
	fmt.Printf("broker utilization of total node time: %.1f%%\n\n", 100*res.BrokerUtilization)

	// Load sensitivity: the same VO under increasing arrival pressure.
	fmt.Println("arrival-rate sweep (same environment seed):")
	fmt.Println("  rate  accepted  queue  wait(cycles)  utilization")
	for _, rate := range []float64{2, 6, 12, 24} {
		c := cfg
		c.ArrivalRate = rate
		r, err := slotsel.RunVOSimulation(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f  %7.0f%%  %5.1f  %12.2f  %10.1f%%\n",
			rate, 100*r.AcceptanceRate(), r.QueueLength.Mean(), r.WaitCycles.Mean(), 100*r.BrokerUtilization)
	}
}
