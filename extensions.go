package slotsel

import (
	"fmt"
	"io"
	"strings"

	"slotsel/internal/baseline"
	"slotsel/internal/execsim"
	"slotsel/internal/generic"
	"slotsel/internal/persist"
	"slotsel/internal/strategy"
	"slotsel/internal/vosim"
)

// Extensions beyond the paper's §2.2 special cases, re-exported from their
// implementation packages.

type (
	// Weight assigns the §2.1 per-slot characteristic z to a candidate for
	// the generic extreme-criterion algorithm.
	Weight = generic.Weight

	// Extreme is the general 0-1 formulation of AEP: minimize any additive
	// per-slot weight under the cost budget, solved exactly per scan step
	// (branch and bound) or greedily.
	Extreme = generic.Extreme

	// ExecReport is the outcome of replaying a schedule on an environment.
	ExecReport = execsim.Report

	// ExecEvent is one task start/finish in a replayed execution.
	ExecEvent = execsim.Event

	// VOSimConfig parametrizes the rolling-horizon VO metascheduler
	// simulation: consecutive scheduling cycles, Poisson job arrivals, a
	// retry queue, and carry-over reservations.
	VOSimConfig = vosim.Config

	// VOSimResult aggregates a long-run simulation's outcomes.
	VOSimResult = vosim.Result

	// Strategy combines several algorithms and selects the best-scoring
	// window — the §2.1 "combining the optimization criteria" mechanism.
	Strategy = strategy.Strategy

	// StrategyWeights is a linear score over window characteristics.
	StrategyWeights = strategy.Weights
)

// BalancedStrategy trades completion time against cost with normalized
// weights: score = finish/horizon + cost/budget.
func BalancedStrategy(horizon, budget float64) Strategy {
	return strategy.Balanced(horizon, budget)
}

// DefaultVOSimConfig returns a medium long-run workload on the paper's
// node population.
func DefaultVOSimConfig() VOSimConfig { return vosim.DefaultConfig() }

// RunVOSimulation executes the long-run metascheduler simulation.
func RunVOSimulation(cfg VOSimConfig) (*VOSimResult, error) { return vosim.Run(cfg) }

// ALP is the earlier works' "Algorithm based on Local Price of slots"
// baseline: first fit where every slot individually satisfies the local
// budget share S/n. The paper cites AMP's advantage over it.
type ALP = baseline.ALP

// AlgorithmByName resolves an algorithm identifier (as used by the CLI
// tools and configuration files) to an implementation. Recognized names,
// case-insensitive: amp, alp, minfinish, mincost, minruntime, minproctime,
// minproctimegreedy, minenergy, firstfit. seed feeds the randomized
// MinProcTime variant.
func AlgorithmByName(name string, seed uint64) (Algorithm, error) {
	switch strings.ToLower(name) {
	case "amp":
		return AMP{}, nil
	case "alp":
		return ALP{}, nil
	case "minfinish":
		return MinFinish{}, nil
	case "mincost":
		return MinCost{}, nil
	case "minruntime":
		return MinRunTime{}, nil
	case "minproctime":
		return MinProcTime{Seed: seed}, nil
	case "minproctimegreedy":
		return MinProcTimeGreedy{}, nil
	case "minenergy":
		return MinEnergy{}, nil
	case "firstfit":
		return FirstFit{}, nil
	}
	return nil, fmt.Errorf("slotsel: unknown algorithm %q", name)
}

// Generic weights for Extreme.
var (
	// WeightProcTime minimizes the total CPU time.
	WeightProcTime = generic.WeightProcTime

	// WeightCost minimizes the total allocation cost.
	WeightCost = generic.WeightCost
)

// WeightEnergy builds a weight from an energy model (nil = perf^2 x time).
func WeightEnergy(model func(perf, exec float64) float64) Weight {
	return generic.WeightEnergy(model)
}

// Replay verifies that the windows are executable on the environment (every
// task inside a published slot, no node double-booking) and returns the
// event trace and realized metrics.
func Replay(e *Environment, windows []*Window) (*ExecReport, error) {
	return execsim.Replay(e, windows)
}

// WriteEnvironment snapshots an environment as JSON (see cmd/slotgen).
func WriteEnvironment(w io.Writer, e *Environment) error {
	return persist.WriteEnvironment(w, e)
}

// ReadEnvironment loads an environment snapshot written by WriteEnvironment.
func ReadEnvironment(r io.Reader) (*Environment, error) {
	return persist.ReadEnvironment(r)
}

// WriteWindow serializes a window as JSON.
func WriteWindow(w io.Writer, win *Window) error {
	return persist.WriteWindow(w, win)
}

// ReadWindow loads a window against the environment it was found on.
func ReadWindow(r io.Reader, e *Environment) (*Window, error) {
	return persist.ReadWindow(r, e)
}

// WriteRequest serializes a resource request as JSON.
func WriteRequest(w io.Writer, req *Request) error {
	return persist.WriteRequest(w, req)
}

// ReadRequest loads and validates a resource request.
func ReadRequest(r io.Reader) (*Request, error) {
	return persist.ReadRequest(r)
}
