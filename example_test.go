package slotsel_test

import (
	"fmt"

	"slotsel"
)

// buildExampleList constructs a tiny heterogeneous environment by hand:
// three nodes of different performance and price, each publishing one or
// two free slots.
func buildExampleList() slotsel.SlotList {
	fast := &slotsel.Node{ID: 1, Perf: 10, Price: 4}
	mid := &slotsel.Node{ID: 2, Perf: 5, Price: 1.5}
	slow := &slotsel.Node{ID: 3, Perf: 2, Price: 0.5}
	l := slotsel.SlotList{
		{Node: fast, Interval: slotsel.Interval{Start: 0, End: 40}},
		{Node: mid, Interval: slotsel.Interval{Start: 10, End: 100}},
		{Node: slow, Interval: slotsel.Interval{Start: 0, End: 200}},
		{Node: fast, Interval: slotsel.Interval{Start: 120, End: 200}},
	}
	l.SortByStart()
	return l
}

func ExampleAMP() {
	list := buildExampleList()
	// Two tasks of volume 100: 10 time units on the fast node, 20 on the
	// mid node, 50 on the slow node.
	req := slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 100}
	w, err := slotsel.AMP{}.Find(list, &req)
	if err != nil {
		fmt.Println(err)
		return
	}
	// The earliest position with two simultaneously available slots is t=0:
	// fast [0,40) and slow [0,200) both host their task there.
	fmt.Printf("start=%.0f size=%d cost=%.0f\n", w.Start, w.Size(), w.Cost)
	// Output:
	// start=0 size=2 cost=65
}

func ExampleMinCost() {
	list := buildExampleList()
	req := slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 100}
	w, err := slotsel.MinCost{}.Find(list, &req)
	if err != nil {
		fmt.Println(err)
		return
	}
	// The cheapest pair is mid (20 x 1.5 = 30) + slow (50 x 0.5 = 25),
	// available together from t=10.
	fmt.Printf("start=%.0f cost=%.0f runtime=%.0f\n", w.Start, w.Cost, w.Runtime)
	// Output:
	// start=10 cost=55 runtime=50
}

func ExampleMinRunTime() {
	list := buildExampleList()
	req := slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 100}
	w, err := slotsel.MinRunTime{}.Find(list, &req)
	if err != nil {
		fmt.Println(err)
		return
	}
	// The fastest feasible pair under the budget is fast (10u, cost 40) +
	// mid (20u, cost 30): runtime 20.
	fmt.Printf("runtime=%.0f cost=%.0f\n", w.Runtime, w.Cost)
	// Output:
	// runtime=20 cost=70
}

func ExampleSearchAlternatives() {
	list := buildExampleList()
	req := slotsel.Request{TaskCount: 2, Volume: 100, MaxCost: 100}
	alts, err := slotsel.SearchAlternatives(list, &req, slotsel.CSAOptions{MinSlotLength: 5})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i, w := range alts {
		fmt.Printf("alternative %d: start=%.0f cost=%.0f\n", i+1, w.Start, w.Cost)
	}
	best := slotsel.BestAlternative(alts, slotsel.ByCost)
	fmt.Printf("cheapest: start=%.0f cost=%.0f\n", best.Start, best.Cost)
	// Output:
	// alternative 1: start=0 cost=65
	// alternative 2: start=10 cost=70
	// alternative 3: start=30 cost=70
	// alternative 4: start=50 cost=55
	// alternative 5: start=120 cost=65
	// cheapest: start=50 cost=55
}

func ExampleRequest_Matches() {
	req := slotsel.Request{TaskCount: 1, Volume: 10, MinPerf: 5, OS: []slotsel.OS{"linux"}}
	fast := &slotsel.Node{ID: 1, Perf: 8, OS: "linux"}
	slow := &slotsel.Node{ID: 2, Perf: 3, OS: "linux"}
	windows := &slotsel.Node{ID: 3, Perf: 8, OS: "windows"}
	fmt.Println(req.Matches(fast), req.Matches(slow), req.Matches(windows))
	// Output:
	// true false false
}
