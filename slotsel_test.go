package slotsel_test

import (
	"bytes"
	"errors"
	"testing"

	"slotsel"
)

// The facade tests double as end-to-end integration tests: they exercise the
// full pipeline (environment generation -> slot publication -> selection ->
// validation) through the public API only.

func TestQuickstartFlow(t *testing.T) {
	rng := slotsel.NewRand(42)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	req := slotsel.DefaultRequest()
	for _, alg := range []slotsel.Algorithm{
		slotsel.AMP{},
		slotsel.MinFinish{},
		slotsel.MinCost{},
		slotsel.MinRunTime{},
		slotsel.MinProcTime{Seed: 1},
		slotsel.MinProcTimeGreedy{},
		slotsel.MinEnergy{},
		slotsel.FirstFit{},
	} {
		w, err := alg.Find(e.Slots, &req)
		if errors.Is(err, slotsel.ErrNoWindow) {
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := w.Validate(&req); err != nil {
			t.Fatalf("%s: invalid window: %v", alg.Name(), err)
		}
	}
}

func TestAlternativesFlow(t *testing.T) {
	rng := slotsel.NewRand(7)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	req := slotsel.DefaultRequest()
	alts, err := slotsel.SearchAlternatives(e.Slots, &req, slotsel.CSAOptions{MinSlotLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) < 2 {
		t.Fatalf("expected multiple alternatives, got %d", len(alts))
	}
	for _, c := range []slotsel.Criterion{
		slotsel.ByStart, slotsel.ByFinish, slotsel.ByCost, slotsel.ByRuntime, slotsel.ByProcTime,
	} {
		if w := slotsel.BestAlternative(alts, c); w == nil {
			t.Fatalf("no best alternative by %v", c)
		}
	}
}

func TestBatchFlow(t *testing.T) {
	rng := slotsel.NewRand(2013)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	batch := &slotsel.Batch{}
	batch.Add(&slotsel.Job{ID: 1, Priority: 2, Request: slotsel.Request{TaskCount: 5, Volume: 150, MaxCost: 1500}})
	batch.Add(&slotsel.Job{ID: 2, Priority: 1, Request: slotsel.Request{TaskCount: 3, Volume: 100, MaxCost: 900}})
	plan, err := slotsel.ScheduleBatch(e.Slots, batch,
		slotsel.CSAOptions{MaxAlternatives: 10, MinSlotLength: 10},
		slotsel.SelectConfig{Budget: 2400, Criterion: slotsel.ByFinish})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCost > 2400 {
		t.Fatalf("plan cost %g exceeds VO budget", plan.TotalCost)
	}
	if plan.Scheduled == 0 {
		t.Fatal("nothing scheduled on a default environment")
	}
}

func TestAlgorithmByName(t *testing.T) {
	names := []string{
		"amp", "ALP", "MinFinish", "mincost", "minruntime",
		"minproctime", "minproctimegreedy", "minenergy", "FirstFit",
	}
	for _, name := range names {
		alg, err := slotsel.AlgorithmByName(name, 1)
		if err != nil {
			t.Errorf("%q: %v", name, err)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("%q resolved to unnamed algorithm", name)
		}
	}
	if _, err := slotsel.AlgorithmByName("bogus", 1); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestReplayFlow(t *testing.T) {
	rng := slotsel.NewRand(11)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	req := slotsel.DefaultRequest()
	alts, err := slotsel.SearchAlternatives(e.Slots, &req, slotsel.CSAOptions{MinSlotLength: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := slotsel.Replay(e, alts)
	if err != nil {
		t.Fatalf("CSA alternatives failed replay: %v", err)
	}
	if rep.Makespan <= 0 || len(rep.Events) == 0 {
		t.Fatalf("empty replay report: %+v", rep)
	}
}

func TestPersistenceFlow(t *testing.T) {
	rng := slotsel.NewRand(13)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	req := slotsel.DefaultRequest()

	var envBuf, reqBuf, winBuf bytes.Buffer
	if err := slotsel.WriteEnvironment(&envBuf, e); err != nil {
		t.Fatal(err)
	}
	if err := slotsel.WriteRequest(&reqBuf, &req); err != nil {
		t.Fatal(err)
	}
	e2, err := slotsel.ReadEnvironment(&envBuf)
	if err != nil {
		t.Fatal(err)
	}
	req2, err := slotsel.ReadRequest(&reqBuf)
	if err != nil {
		t.Fatal(err)
	}
	w, err := slotsel.MinCost{}.Find(e2.Slots, req2)
	if err != nil {
		t.Fatal(err)
	}
	if err := slotsel.WriteWindow(&winBuf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := slotsel.ReadWindow(&winBuf, e2)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Cost != w.Cost || w2.Start != w.Start {
		t.Fatalf("window changed through persistence: %v vs %v", w2, w)
	}
}

func TestGenericExtremeFlow(t *testing.T) {
	rng := slotsel.NewRand(17)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	req := slotsel.DefaultRequest()
	alg := slotsel.Extreme{Label: "energy", Weight: slotsel.WeightEnergy(nil)}
	w, err := alg.Find(e.Slots, &req)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(&req); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyFlow(t *testing.T) {
	rng := slotsel.NewRand(19)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	req := slotsel.DefaultRequest()
	s := slotsel.BalancedStrategy(e.Horizon, req.MaxCost)
	w, err := s.Find(e.Slots, &req)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(&req); err != nil {
		t.Fatal(err)
	}
	// A custom weighted strategy through the facade types.
	custom := slotsel.Strategy{
		Label:      "cheap-and-fast",
		Algorithms: []slotsel.Algorithm{slotsel.MinCost{}, slotsel.MinRunTime{}},
		Score:      slotsel.StrategyWeights{Cost: 1 / req.MaxCost, Runtime: 0.01}.Score,
	}
	if _, err := custom.Find(e.Slots, &req); err != nil {
		t.Fatal(err)
	}
}

func TestVOSimulationFlow(t *testing.T) {
	cfg := slotsel.DefaultVOSimConfig()
	cfg.Cycles = 5
	cfg.Nodes.Count = 40
	res, err := slotsel.RunVOSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted > 0 && res.Scheduled == 0 {
		t.Fatal("nothing scheduled")
	}
}

func TestRequirementFilteringFlow(t *testing.T) {
	rng := slotsel.NewRand(5)
	e := slotsel.GenerateEnvironment(slotsel.DefaultEnvConfig(), rng)
	req := slotsel.DefaultRequest()
	req.MinPerf = 7
	req.MaxCost = 4000 // fast nodes carry a market premium
	w, err := slotsel.MinRunTime{}.Find(e.Slots, &req)
	if errors.Is(err, slotsel.ErrNoWindow) {
		t.Skip("no fast window on this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range w.Placements {
		if p.Node().Perf < 7 {
			t.Fatalf("node %v below the performance floor", p.Node())
		}
	}
}
