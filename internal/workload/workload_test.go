package workload

import (
	"testing"
	"testing/quick"

	"slotsel/internal/randx"
)

func TestDefaultMixValid(t *testing.T) {
	if err := DefaultMix().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadMixes(t *testing.T) {
	cases := []func(*JobMix){
		func(m *JobMix) { m.TasksMin = 0 },
		func(m *JobMix) { m.TasksMax = m.TasksMin - 1 },
		func(m *JobMix) { m.VolumeMin = 0 },
		func(m *JobMix) { m.VolumeMax = m.VolumeMin - 1 },
		func(m *JobMix) { m.PriceCapMin = 0 },
		func(m *JobMix) { m.PriceCapMax = m.PriceCapMin - 1 },
		func(m *JobMix) { m.ReservationPerf = 0 },
	}
	for i, mutate := range cases {
		m := DefaultMix()
		mutate(&m)
		if m.Validate() == nil {
			t.Errorf("case %d: invalid mix accepted", i)
		}
	}
}

func TestJobWithinMix(t *testing.T) {
	mix := DefaultMix()
	check := func(seed uint64) bool {
		rng := randx.New(seed)
		j := mix.Job(rng, 1)
		if j.Request.Validate() != nil {
			return false
		}
		if j.Request.TaskCount < mix.TasksMin || j.Request.TaskCount > mix.TasksMax {
			return false
		}
		if j.Request.Volume < float64(mix.VolumeMin) || j.Request.Volume > float64(mix.VolumeMax) {
			return false
		}
		if j.Priority < mix.PriorityMin || j.Priority > mix.PriorityMax {
			return false
		}
		// Budget bounds from the S = F*t*n formula.
		lo := mix.PriceCapMin * j.Request.Volume / mix.ReservationPerf * float64(j.Request.TaskCount)
		hi := mix.PriceCapMax * j.Request.Volume / mix.ReservationPerf * float64(j.Request.TaskCount)
		return j.Request.MaxCost >= lo-1e-9 && j.Request.MaxCost <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBatchIDsAndSize(t *testing.T) {
	b := DefaultMix().Batch(randx.New(1), 7)
	if len(b.Jobs) != 7 {
		t.Fatalf("%d jobs, want 7", len(b.Jobs))
	}
	for i, j := range b.Jobs {
		if j.ID != i+1 {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
	}
}

func TestFixedPriorityMix(t *testing.T) {
	m := DefaultMix()
	m.PriorityMin, m.PriorityMax = 5, 5
	j := m.Job(randx.New(2), 1)
	if j.Priority != 5 {
		t.Errorf("priority %d, want 5", j.Priority)
	}
}
