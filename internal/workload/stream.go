package workload

import (
	"fmt"
	"math"

	"slotsel/internal/job"
	"slotsel/internal/randx"
)

// Stream layers a continuous arrival process over a JobMix: instead of a
// batch drawn all at once, jobs arrive one by one over virtual time, the
// way Casanova et al.'s non-batch load and Buyya et al.'s
// deadline-and-budget constrained task farms reach a production broker.
//
// Arrivals follow a Poisson process of mean Rate jobs per time unit
// (exponential interarrival gaps), optionally thinned by a Shape function
// so the instantaneous rate can follow a diurnal curve or a flash-crowd
// spike. Each arriving job is drawn from Mix; when a deadline range is
// declared the job's request additionally carries an absolute deadline of
// arrival time plus a uniform draw from [DeadlineMin, DeadlineMax] — the
// Buyya-style farm where every task must finish within its own window.
type Stream struct {
	// Mix is the per-job distribution (task count, volume, budget).
	Mix JobMix

	// Rate is the mean arrival rate in jobs per time unit (the peak rate
	// when Shape is set). Must be positive.
	Rate float64

	// DeadlineMin and DeadlineMax bound the relative deadline drawn
	// uniformly for each job and added to its arrival time. Both zero
	// means no deadlines.
	DeadlineMin, DeadlineMax float64

	// Shape, when non-nil, maps a time in [0, horizon) to a rate
	// multiplier in [0, 1]; arrivals are thinned accordingly, so the
	// instantaneous rate at time t is Rate*Shape(t). nil means the
	// constant peak rate.
	Shape func(t float64) float64
}

// Arrival is one job arriving at a point in virtual time.
type Arrival struct {
	// At is the arrival time since the stream's start.
	At float64

	// Job is the arriving job; its ID is the 1-based arrival index over
	// the whole (unthinned) process, so IDs stay stable when a Shape
	// thins the stream.
	Job *job.Job
}

// Validate reports structural problems with the stream.
func (s Stream) Validate() error {
	if err := s.Mix.Validate(); err != nil {
		return err
	}
	if s.Rate <= 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) {
		return fmt.Errorf("workload: invalid arrival rate %g", s.Rate)
	}
	if s.DeadlineMin < 0 || s.DeadlineMax < s.DeadlineMin {
		return fmt.Errorf("workload: invalid deadline range [%g, %g]", s.DeadlineMin, s.DeadlineMax)
	}
	return nil
}

// Arrivals draws the stream over [0, horizon). Generation is deterministic
// given rng's state. Thinning uses the standard acceptance draw, so a
// Shape changes which arrivals survive but not the underlying process.
func (s Stream) Arrivals(rng *randx.Rand, horizon float64) []Arrival {
	if horizon <= 0 {
		return nil
	}
	var out []Arrival
	t := 0.0
	for id := 1; ; id++ {
		t += rng.Exp(s.Rate)
		if t >= horizon {
			return out
		}
		if s.Shape != nil && !rng.Bernoulli(clamp01(s.Shape(t))) {
			continue
		}
		j := s.Mix.Job(rng, id)
		if s.DeadlineMax > 0 {
			j.Request.Deadline = t + rng.FloatRange(s.DeadlineMin, s.DeadlineMax)
		}
		out = append(out, Arrival{At: t, Job: j})
	}
}

// Next draws a single interarrival gap and job (the streaming form of
// Arrivals, for drivers that pace themselves in real time rather than
// materializing a whole trace). The returned gap is the wait before the
// job arrives at virtual time `at`.
func (s Stream) Next(rng *randx.Rand, at float64, id int) (gap float64, a Arrival) {
	gap = rng.Exp(s.Rate)
	at += gap
	j := s.Mix.Job(rng, id)
	if s.DeadlineMax > 0 {
		j.Request.Deadline = at + rng.FloatRange(s.DeadlineMin, s.DeadlineMax)
	}
	return gap, Arrival{At: at, Job: j}
}

// DiurnalShape returns a Shape tracing one smooth day-night cycle of the
// given period: 1 at mid-"day" (t = period/2), floor at "midnight"
// (t = 0 and t = period). floor keeps the night-time rate positive so the
// stream never fully stalls; it is clamped into [0, 1].
func DiurnalShape(period, floor float64) func(t float64) float64 {
	floor = clamp01(floor)
	return func(t float64) float64 {
		if period <= 0 {
			return 1
		}
		day := 0.5 * (1 - math.Cos(2*math.Pi*t/period))
		return floor + (1-floor)*day
	}
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
