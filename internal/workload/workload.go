// Package workload generates mixed job workloads for batch- and long-run
// experiments: jobs with varied parallelism, volume and priority, budgeted
// through the paper's S = F*t*n formula with a per-unit price cap drawn
// around the market level of the default pricing model.
package workload

import (
	"fmt"

	"slotsel/internal/job"
	"slotsel/internal/randx"
)

// JobMix describes the distribution jobs are drawn from.
type JobMix struct {
	// TasksMin and TasksMax bound the parallel slot count (uniform).
	TasksMin, TasksMax int

	// VolumeMin and VolumeMax bound the per-task volume (uniform integer).
	VolumeMin, VolumeMax int

	// PriceCapMin and PriceCapMax bound the per-unit price cap F in
	// S = F*t*n. The default pricing model prices a mid-market node
	// (perf 4) at about 7 per unit, so the default range [6, 10] spans
	// tight-to-comfortable budgets.
	PriceCapMin, PriceCapMax float64

	// ReservationPerf is the node performance at which the reservation
	// time t of the budget formula is estimated: t = volume /
	// ReservationPerf.
	ReservationPerf float64

	// PriorityMin and PriorityMax bound the job priority (uniform).
	PriorityMin, PriorityMax int
}

// DefaultMix returns the mixed workload used by the batch and long-run
// studies.
func DefaultMix() JobMix {
	return JobMix{
		TasksMin: 2, TasksMax: 7,
		VolumeMin: 60, VolumeMax: 200,
		PriceCapMin: 6, PriceCapMax: 10,
		ReservationPerf: 4,
		PriorityMin:     1, PriorityMax: 3,
	}
}

// Validate reports structural problems with the mix.
func (m JobMix) Validate() error {
	if m.TasksMin <= 0 || m.TasksMax < m.TasksMin {
		return fmt.Errorf("workload: invalid task range [%d, %d]", m.TasksMin, m.TasksMax)
	}
	if m.VolumeMin <= 0 || m.VolumeMax < m.VolumeMin {
		return fmt.Errorf("workload: invalid volume range [%d, %d]", m.VolumeMin, m.VolumeMax)
	}
	if m.PriceCapMin <= 0 || m.PriceCapMax < m.PriceCapMin {
		return fmt.Errorf("workload: invalid price cap range [%g, %g]", m.PriceCapMin, m.PriceCapMax)
	}
	if m.ReservationPerf <= 0 {
		return fmt.Errorf("workload: invalid reservation performance %g", m.ReservationPerf)
	}
	return nil
}

// Job draws one job with the given ID.
func (m JobMix) Job(rng *randx.Rand, id int) *job.Job {
	tasks := rng.IntRange(m.TasksMin, m.TasksMax)
	volume := float64(rng.IntRange(m.VolumeMin, m.VolumeMax))
	cap := rng.FloatRange(m.PriceCapMin, m.PriceCapMax)
	prio := m.PriorityMin
	if m.PriorityMax > m.PriorityMin {
		prio = rng.IntRange(m.PriorityMin, m.PriorityMax)
	}
	return &job.Job{
		ID:       id,
		Priority: prio,
		Request: job.Request{
			TaskCount: tasks,
			Volume:    volume,
			MaxCost:   job.BudgetFromPrice(cap, volume/m.ReservationPerf, tasks),
		},
	}
}

// Batch draws a batch of count jobs with IDs 1..count.
func (m JobMix) Batch(rng *randx.Rand, count int) *job.Batch {
	b := &job.Batch{}
	for i := 0; i < count; i++ {
		b.Add(m.Job(rng, i+1))
	}
	return b
}
