package workload

import (
	"math"
	"testing"
	"testing/quick"

	"slotsel/internal/randx"
)

func validStream() Stream {
	return Stream{Mix: DefaultMix(), Rate: 2, DeadlineMin: 50, DeadlineMax: 200}
}

func TestStreamValidate(t *testing.T) {
	if err := validStream().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Stream){
		func(s *Stream) { s.Rate = 0 },
		func(s *Stream) { s.Rate = -1 },
		func(s *Stream) { s.Rate = math.NaN() },
		func(s *Stream) { s.Rate = math.Inf(1) },
		func(s *Stream) { s.DeadlineMin = -1 },
		func(s *Stream) { s.DeadlineMax = s.DeadlineMin - 1 },
		func(s *Stream) { s.Mix.TasksMin = 0 },
	}
	for i, mutate := range cases {
		s := validStream()
		mutate(&s)
		if s.Validate() == nil {
			t.Errorf("case %d: invalid stream accepted", i)
		}
	}
}

// TestStreamArrivalRate: the realized arrival count and mean interarrival
// gap of a long trace must track the declared Poisson rate.
func TestStreamArrivalRate(t *testing.T) {
	const (
		rate    = 2.0
		horizon = 20000.0
	)
	s := Stream{Mix: DefaultMix(), Rate: rate}
	arr := s.Arrivals(randx.New(11), horizon)

	want := rate * horizon
	if n := float64(len(arr)); math.Abs(n-want) > 0.05*want {
		t.Fatalf("arrival count %d, want %g +- 5%%", len(arr), want)
	}
	// Mean interarrival gap ~ 1/rate.
	var gaps float64
	prev := 0.0
	for _, a := range arr {
		gaps += a.At - prev
		prev = a.At
	}
	mean := gaps / float64(len(arr))
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Fatalf("mean interarrival %g, want %g +- 5%%", mean, 1/rate)
	}
}

// TestStreamArrivalsOrdered: arrival times are strictly increasing, inside
// [0, horizon), and IDs are increasing (stable through thinning).
func TestStreamArrivalsOrdered(t *testing.T) {
	check := func(seed uint64) bool {
		s := validStream()
		arr := s.Arrivals(randx.New(seed), 500)
		prevAt, prevID := 0.0, 0
		for _, a := range arr {
			if a.At <= prevAt || a.At >= 500 {
				return false
			}
			if a.Job.ID <= prevID {
				return false
			}
			prevAt, prevID = a.At, a.Job.ID
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStreamDeadlineDistribution: every relative deadline lies in the
// declared range and their mean sits at its midpoint.
func TestStreamDeadlineDistribution(t *testing.T) {
	s := validStream()
	arr := s.Arrivals(randx.New(7), 10000)
	if len(arr) < 1000 {
		t.Fatalf("only %d arrivals; trace too short for a distribution check", len(arr))
	}
	var sum float64
	for _, a := range arr {
		rel := a.Job.Request.Deadline - a.At
		if rel < s.DeadlineMin-1e-9 || rel > s.DeadlineMax+1e-9 {
			t.Fatalf("relative deadline %g outside [%g, %g]", rel, s.DeadlineMin, s.DeadlineMax)
		}
		sum += rel
	}
	mid := (s.DeadlineMin + s.DeadlineMax) / 2
	if mean := sum / float64(len(arr)); math.Abs(mean-mid) > 0.05*mid {
		t.Fatalf("mean relative deadline %g, want ~%g", mean, mid)
	}
}

// TestStreamNoDeadlines: a zero deadline range leaves requests
// unconstrained.
func TestStreamNoDeadlines(t *testing.T) {
	s := Stream{Mix: DefaultMix(), Rate: 1}
	for _, a := range s.Arrivals(randx.New(3), 1000) {
		if a.Job.Request.Deadline != 0 {
			t.Fatalf("deadline %g on a deadline-free stream", a.Job.Request.Deadline)
		}
	}
}

// TestStreamBudgetDistribution: every arriving job's budget respects the
// mix's S = F*t*n formula (implied per-unit price inside the declared cap
// range), and the implied price's mean sits at the range midpoint.
func TestStreamBudgetDistribution(t *testing.T) {
	s := Stream{Mix: DefaultMix(), Rate: 1}
	arr := s.Arrivals(randx.New(5), 5000)
	if len(arr) < 1000 {
		t.Fatalf("only %d arrivals", len(arr))
	}
	var sum float64
	for _, a := range arr {
		r := a.Job.Request
		reservation := r.Volume / s.Mix.ReservationPerf
		implied := r.MaxCost / (reservation * float64(r.TaskCount))
		if implied < s.Mix.PriceCapMin-1e-9 || implied > s.Mix.PriceCapMax+1e-9 {
			t.Fatalf("implied price cap %g outside [%g, %g]", implied, s.Mix.PriceCapMin, s.Mix.PriceCapMax)
		}
		sum += implied
	}
	mid := (s.Mix.PriceCapMin + s.Mix.PriceCapMax) / 2
	if mean := sum / float64(len(arr)); math.Abs(mean-mid) > 0.05*mid {
		t.Fatalf("mean implied price cap %g, want ~%g", mean, mid)
	}
}

// TestStreamThinning: a constant Shape of 0.5 halves the realized rate;
// a Shape of 0 silences the stream entirely.
func TestStreamThinning(t *testing.T) {
	const horizon = 20000.0
	half := Stream{Mix: DefaultMix(), Rate: 1, Shape: func(float64) float64 { return 0.5 }}
	n := float64(len(half.Arrivals(randx.New(9), horizon)))
	want := 0.5 * horizon
	if math.Abs(n-want) > 0.07*want {
		t.Fatalf("thinned arrival count %g, want %g +- 7%%", n, want)
	}
	mute := Stream{Mix: DefaultMix(), Rate: 1, Shape: func(float64) float64 { return 0 }}
	if arr := mute.Arrivals(randx.New(9), 1000); len(arr) != 0 {
		t.Fatalf("zero-shape stream produced %d arrivals", len(arr))
	}
}

// TestDiurnalShape: floor at the cycle edges, peak of 1 at mid-cycle,
// always within [floor, 1].
func TestDiurnalShape(t *testing.T) {
	const period, floor = 100.0, 0.1
	shape := DiurnalShape(period, floor)
	if got := shape(0); math.Abs(got-floor) > 1e-9 {
		t.Fatalf("shape(0) = %g, want floor %g", got, floor)
	}
	if got := shape(period / 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("shape(period/2) = %g, want 1", got)
	}
	for x := 0.0; x <= period; x += period / 64 {
		if v := shape(x); v < floor-1e-9 || v > 1+1e-9 {
			t.Fatalf("shape(%g) = %g outside [%g, 1]", x, v, floor)
		}
	}
	// Degenerate period: constant full rate.
	if got := DiurnalShape(0, 0.5)(42); got != 1 {
		t.Fatalf("zero-period shape = %g, want 1", got)
	}
}

// TestStreamNextMatchesDistributions: the streaming form draws from the
// same distributions as the batch form — gaps exponential with mean
// 1/rate, deadlines relative to the running arrival time.
func TestStreamNextMatchesDistributions(t *testing.T) {
	s := validStream()
	rng := randx.New(21)
	at, n := 0.0, 20000
	var gapSum float64
	for i := 1; i <= n; i++ {
		gap, a := s.Next(rng, at, i)
		if gap <= 0 {
			t.Fatalf("non-positive gap %g", gap)
		}
		at += gap
		if math.Abs(a.At-at) > 1e-9 {
			t.Fatalf("arrival time %g, want %g", a.At, at)
		}
		rel := a.Job.Request.Deadline - a.At
		if rel < s.DeadlineMin-1e-9 || rel > s.DeadlineMax+1e-9 {
			t.Fatalf("relative deadline %g outside [%g, %g]", rel, s.DeadlineMin, s.DeadlineMax)
		}
		gapSum += gap
	}
	mean := gapSum / float64(n)
	if math.Abs(mean-1/s.Rate) > 0.05/s.Rate {
		t.Fatalf("mean gap %g, want %g +- 5%%", mean, 1/s.Rate)
	}
}
