package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"slotsel/internal/inventory"
	"slotsel/internal/obs"
	"slotsel/internal/persist"
	"slotsel/internal/server"
	"slotsel/internal/slots"
	"slotsel/internal/telemetry"
	"slotsel/internal/telemetry/reqlog"
)

// slotserveTestHook, when set by a test, receives the bound address and a
// shutdown trigger instead of the process waiting for SIGINT/SIGTERM.
var slotserveTestHook func(addr string, shutdown func())

// Slotserve runs the slot-inventory scheduling service (see cmd/slotserve).
func Slotserve(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slotserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8080", "listen `address`")
		slotFile = fs.String("slots", "", "slot `file`: a cmd/slotgen environment snapshot or a bare slot list (required)")
		workers  = fs.Int("workers", 32, "max concurrently executing requests")
		queue    = fs.Int("queue", 64, "max requests waiting for a worker before shedding with 429")
		ttl      = fs.Duration("ttl", 30*time.Second, "default reservation hold lifetime")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request deadline")
		minLen   = fs.Float64("min-slot-length", 0, "drop free fragments shorter than this")
		logFmt   = fs.String("log-format", "off", "request log `format`: json (one line per request on stdout) or off")
	)
	obsF := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *slotFile == "" {
		fmt.Fprintln(stderr, "slotserve: -slots is required")
		fs.Usage()
		return 2
	}

	list, err := loadSlotFile(*slotFile)
	if err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}

	var reqLog *reqlog.Logger
	switch *logFmt {
	case "json":
		reqLog = reqlog.New(stdout)
	case "off", "":
		// reqLog stays nil: logging off.
	default:
		fmt.Fprintf(stderr, "slotserve: unknown -log-format %q (want json or off)\n", *logFmt)
		return 2
	}

	stats := &obs.Stats{}
	col, err := obsF.setup("slotserve", stats, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}

	// The metrics registry is always on: /metricsz costs nothing until
	// scraped (counters are plain atomics), and a production service with
	// no metrics endpoint is not observable. The telemetry adapter joins
	// the obs seam so kernel counters (scans, per-algorithm searches,
	// batch accounting) surface as slotsel_* series next to the server's
	// slotserve_* families.
	reg := telemetry.NewRegistry()
	col = obs.Combine(col, telemetry.NewCollector(reg))

	inv, err := inventory.New(list, inventory.Options{
		MinSlotLength: *minLen,
		DefaultTTL:    *ttl,
		Collector:     col,
	})
	if err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}
	handler := server.New(inv, server.Options{
		MaxInflight:    *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Collector:      col,
		Metrics:        reg,
		RequestLog:     reqLog,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}
	fmt.Fprintf(stderr, "slotserve: %d free slots loaded, listening on http://%s\n",
		len(inv.Snapshot().Slots), ln.Addr())

	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	stopc := make(chan struct{})
	if slotserveTestHook != nil {
		slotserveTestHook(ln.Addr().String(), func() { close(stopc) })
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sig
			close(stopc)
		}()
	}

	code := 0
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(stderr, "slotserve:", err)
			code = 1
		}
	case <-stopc:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "slotserve: shutdown:", err)
			code = 1
		}
		cancel()
		fmt.Fprintln(stderr, "slotserve: drained, bye")
	}

	if obsF.stats {
		stats.Snapshot().WriteText(stdout)
	}
	if err := obsF.finish(); err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}
	return code
}

// loadSlotFile reads either a full environment snapshot (the cmd/slotgen
// default output, recognized by its "horizon" field) or a bare slot list
// (cmd/slotgen -slots-only, or a saved /v1/slots response).
func loadSlotFile(path string) (slots.List, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, isEnv := probe["horizon"]; isEnv {
		e, err := persist.ReadEnvironment(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return e.Slots, nil
	}
	l, err := persist.ReadSlotList(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}
