package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"slotsel/internal/inventory"
	"slotsel/internal/obs"
	"slotsel/internal/persist"
	"slotsel/internal/server"
	"slotsel/internal/slots"
	"slotsel/internal/telemetry"
	"slotsel/internal/telemetry/reqlog"
	"slotsel/internal/wal"
)

// slotserveTestHook, when set by a test, receives the bound address and a
// shutdown trigger instead of the process waiting for SIGINT/SIGTERM.
var slotserveTestHook func(addr string, shutdown func())

// Slotserve runs the slot-inventory scheduling service (see cmd/slotserve).
func Slotserve(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slotserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "localhost:8080", "listen `address`")
		slotFile = fs.String("slots", "", "slot `file`: a cmd/slotgen environment snapshot or a bare slot list")
		workers  = fs.Int("workers", 32, "max concurrently executing requests")
		queue    = fs.Int("queue", 64, "max requests waiting for a worker before shedding with 429")
		ttl      = fs.Duration("ttl", 30*time.Second, "default reservation hold lifetime")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request deadline")
		minLen   = fs.Float64("min-slot-length", 0, "drop free fragments shorter than this")
		logFmt   = fs.String("log-format", "off", "request log `format`: json (one line per request on stdout) or off")
		dataDir  = fs.String("data-dir", "", "WAL `directory`: fsync every mutation and recover state across restarts")
		snapIvl  = fs.Duration("snapshot-interval", time.Minute, "minimum time between periodic snapshots (with -data-dir)")
		snapEvts = fs.Uint64("snapshot-every", 4096, "also snapshot once this many events accumulate since the last one; 0 = time-based only (with -data-dir)")
		follow   = fs.String("follow", "", "tail this WAL `directory` as a read-only follower (excludes -slots and -data-dir)")
		poll     = fs.Duration("poll", 200*time.Millisecond, "follower poll interval (with -follow)")
		shards   = fs.Int("shards", 1, "inventory `shards`: >1 partitions nodes by ID hash across independent shards, each with its own lock, published snapshot, and (with -data-dir) WAL directory")
	)
	obsF := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *follow != "" && (*slotFile != "" || *dataDir != "") {
		fmt.Fprintln(stderr, "slotserve: -follow excludes -slots and -data-dir (a follower's state comes from the leader's log)")
		return 2
	}
	if *shards < 1 {
		fmt.Fprintln(stderr, "slotserve: -shards must be at least 1")
		return 2
	}
	if *shards > 1 && *follow != "" {
		fmt.Fprintln(stderr, "slotserve: -follow excludes -shards (a follower replicates one leader log)")
		return 2
	}
	if *follow == "" && *slotFile == "" && *dataDir == "" {
		fmt.Fprintln(stderr, "slotserve: -slots is required (or -data-dir to recover, or -follow to replicate)")
		fs.Usage()
		return 2
	}

	var reqLog *reqlog.Logger
	switch *logFmt {
	case "json":
		reqLog = reqlog.New(stdout)
	case "off", "":
		// reqLog stays nil: logging off.
	default:
		fmt.Fprintf(stderr, "slotserve: unknown -log-format %q (want json or off)\n", *logFmt)
		return 2
	}

	stats := &obs.Stats{}
	col, err := obsF.setup("slotserve", stats, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}

	// The metrics registry is always on: /metricsz costs nothing until
	// scraped (counters are plain atomics), and a production service with
	// no metrics endpoint is not observable. The telemetry adapter joins
	// the obs seam so kernel counters (scans, per-algorithm searches,
	// batch accounting) surface as slotsel_* series next to the server's
	// slotserve_* families.
	reg := telemetry.NewRegistry()
	col = obs.Combine(col, telemetry.NewCollector(reg))

	invOpts := inventory.Options{
		MinSlotLength: *minLen,
		DefaultTTL:    *ttl,
		Collector:     col,
	}
	srvOpts := server.Options{
		MaxInflight:    *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		Collector:      col,
		Metrics:        reg,
		RequestLog:     reqLog,
	}

	var inv inventory.Pool
	var store *wal.Store    // single-pool durability (-data-dir, -shards 1)
	var stores []*wal.Store // per-shard durability (-data-dir, -shards > 1)
	var flwr *wal.Follower
	closeStores := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	switch {
	case *follow != "":
		flwr, err = wal.NewFollower(*follow, invOpts)
		if err != nil {
			fmt.Fprintln(stderr, "slotserve:", err)
			return 1
		}
		inv = flwr.Inventory()
		srvOpts.ReadOnly = true
		srvOpts.Follower = flwr
		fmt.Fprintf(stderr, "slotserve: read-only follower of %s (applied seq %d)\n", *follow, flwr.LastSeq())

	case *dataDir != "" && *shards > 1:
		walOpts := wal.Options{OnFsync: server.FsyncHistogram(reg)}
		pool, sts, results, err := wal.OpenSharded(*dataDir, *shards, invOpts, walOpts)
		if err != nil {
			fmt.Fprintln(stderr, "slotserve:", err)
			return 1
		}
		stores = sts
		srvOpts.WALs = sts
		if pool != nil {
			inv = pool
			if *slotFile != "" {
				fmt.Fprintf(stderr, "slotserve: %s already holds state; -slots %s ignored (recovered state wins)\n", *dataDir, *slotFile)
			}
			events, truncated := 0, false
			for _, res := range results {
				events += len(res.Events)
				truncated = truncated || res.Truncated
			}
			fmt.Fprintf(stderr, "slotserve: recovered %d shards from %s (%d events replayed, torn tail truncated: %v)\n",
				*shards, *dataDir, events, truncated)
		} else {
			if *slotFile == "" {
				closeStores()
				fmt.Fprintf(stderr, "slotserve: %s is empty; -slots is required to seed a fresh durable inventory\n", *dataDir)
				return 2
			}
			list, err := loadSlotFile(*slotFile)
			if err != nil {
				closeStores()
				fmt.Fprintln(stderr, "slotserve:", err)
				return 1
			}
			pool, err := wal.SeedSharded(list, invOpts, stores)
			if err != nil {
				closeStores()
				fmt.Fprintln(stderr, "slotserve:", err)
				return 1
			}
			inv = pool
		}

	case *dataDir != "":
		walOpts := wal.Options{OnFsync: server.FsyncHistogram(reg)}
		recovered, st, res, err := wal.Open(*dataDir, invOpts, walOpts)
		if err != nil {
			fmt.Fprintln(stderr, "slotserve:", err)
			return 1
		}
		store = st
		srvOpts.WAL = st
		if recovered != nil {
			inv = recovered
			if *slotFile != "" {
				fmt.Fprintf(stderr, "slotserve: %s already holds state; -slots %s ignored (recovered state wins)\n", *dataDir, *slotFile)
			}
			fmt.Fprintf(stderr, "slotserve: recovered seq %d from %s (%d events replayed, torn tail truncated: %v)\n",
				res.LastSeq, *dataDir, len(res.Events), res.Truncated)
		} else {
			if *slotFile == "" {
				store.Close()
				fmt.Fprintf(stderr, "slotserve: %s is empty; -slots is required to seed a fresh durable inventory\n", *dataDir)
				return 2
			}
			list, err := loadSlotFile(*slotFile)
			if err != nil {
				store.Close()
				fmt.Fprintln(stderr, "slotserve:", err)
				return 1
			}
			seedOpts := invOpts
			seedOpts.Sink = store
			inv, err = inventory.New(list, seedOpts)
			if err != nil {
				store.Close()
				fmt.Fprintln(stderr, "slotserve:", err)
				return 1
			}
		}

	default:
		list, err := loadSlotFile(*slotFile)
		if err != nil {
			fmt.Fprintln(stderr, "slotserve:", err)
			return 1
		}
		if *shards > 1 {
			so := invOpts
			so.Shards = *shards
			inv, err = inventory.NewSharded(list, so)
		} else {
			inv, err = inventory.New(list, invOpts)
		}
		if err != nil {
			fmt.Fprintln(stderr, "slotserve:", err)
			return 1
		}
	}
	handler := server.New(inv, srvOpts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}
	fmt.Fprintf(stderr, "slotserve: %d free slots loaded, listening on http://%s\n",
		len(inv.Snapshot().Slots), ln.Addr())

	// Background upkeep: the leader's snapshotter, or the follower's
	// poller. Stopped (and drained) before the WAL store closes.
	bgStop := make(chan struct{})
	bgDone := make(chan struct{})
	switch {
	case len(stores) > 0:
		// One snapshotter per shard: each store snapshots its own shard's
		// state, on its own cadence, exactly like a single-pool leader.
		pool := inv.(*inventory.Sharded)
		var wg sync.WaitGroup
		for i := range stores {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				snapshotLoop(pool.Shard(i), stores[i], *snapIvl, *snapEvts, bgStop, stderr)
			}(i)
		}
		go func() {
			wg.Wait()
			close(bgDone)
		}()
	case store != nil:
		go func() {
			defer close(bgDone)
			snapshotLoop(inv.(*inventory.Inventory), store, *snapIvl, *snapEvts, bgStop, stderr)
		}()
	case flwr != nil:
		go func() {
			defer close(bgDone)
			followLoop(flwr, *poll, bgStop, stderr)
		}()
	default:
		close(bgDone)
	}

	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	stopc := make(chan struct{})
	if slotserveTestHook != nil {
		slotserveTestHook(ln.Addr().String(), func() { close(stopc) })
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sig
			close(stopc)
		}()
	}

	code := 0
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(stderr, "slotserve:", err)
			code = 1
		}
	case <-stopc:
		// Wake parked /v1/watch long-polls with 503 first, so they cannot
		// hold the graceful drain open until their deadlines.
		handler.DrainWatches()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "slotserve: shutdown:", err)
			code = 1
		}
		cancel()
		fmt.Fprintln(stderr, "slotserve: drained, bye")
	}

	close(bgStop)
	<-bgDone
	if len(stores) > 0 {
		// Final flush, shard by shard: each store snapshots and closes its
		// own shard, so a slow shard cannot block another's fsync queue.
		pool := inv.(*inventory.Sharded)
		for i, st := range stores {
			if stats := st.Stats(); stats.AppendedSeq > stats.SnapshotSeq {
				if err := st.Snapshot(pool.Shard(i).ExportState()); err != nil {
					fmt.Fprintf(stderr, "slotserve: final snapshot (shard %d): %v\n", i, err)
					code = 1
				}
			}
			if err := st.Close(); err != nil {
				fmt.Fprintf(stderr, "slotserve: wal close (shard %d): %v\n", i, err)
				code = 1
			}
		}
	} else if store != nil {
		// Final flush: a parting snapshot makes the next boot's replay
		// instant, and Close drains any still-queued appends to disk.
		if st := store.Stats(); st.AppendedSeq > st.SnapshotSeq {
			if err := store.Snapshot(inv.(*inventory.Inventory).ExportState()); err != nil {
				fmt.Fprintln(stderr, "slotserve: final snapshot:", err)
				code = 1
			}
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(stderr, "slotserve: wal close:", err)
			code = 1
		}
	}

	if obsF.stats {
		stats.Snapshot().WriteText(stdout)
	}
	if err := obsF.finish(); err != nil {
		fmt.Fprintln(stderr, "slotserve:", err)
		return 1
	}
	return code
}

// snapshotLoop writes periodic snapshots: once interval has passed since
// the last one (or every journal events have accumulated, when every > 0)
// and at least one new event exists. The check granule is one second —
// snapshot timing does not need to be finer, and the checks are two
// atomic loads.
func snapshotLoop(inv *inventory.Inventory, store *wal.Store, interval time.Duration, every uint64, stop <-chan struct{}, stderr io.Writer) {
	granule := time.Second
	if interval > 0 && interval < granule {
		granule = interval
	}
	tick := time.NewTicker(granule)
	defer tick.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		st := store.Stats()
		pending := st.AppendedSeq - st.SnapshotSeq
		if pending == 0 {
			continue
		}
		if time.Since(last) < interval && (every == 0 || pending < every) {
			continue
		}
		if err := store.Snapshot(inv.ExportState()); err != nil {
			fmt.Fprintln(stderr, "slotserve: snapshot:", err)
			return // the store has latched an error; retrying cannot help
		}
		last = time.Now()
	}
}

// followLoop drives the replica: apply whatever the leader has made
// durable, every poll interval. Errors are reported but polling continues
// — transient read races with a compacting leader resolve themselves.
func followLoop(f *wal.Follower, interval time.Duration, stop <-chan struct{}, stderr io.Writer) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if _, err := f.Poll(); err != nil {
			fmt.Fprintln(stderr, "slotserve: follower:", err)
		}
	}
}

// loadSlotFile reads either a full environment snapshot (the cmd/slotgen
// default output, recognized by its "horizon" field) or a bare slot list
// (cmd/slotgen -slots-only, or a saved /v1/slots response).
func loadSlotFile(path string) (slots.List, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, isEnv := probe["horizon"]; isEnv {
		e, err := persist.ReadEnvironment(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return e.Slots, nil
	}
	l, err := persist.ReadSlotList(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}
