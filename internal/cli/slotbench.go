package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"slotsel/internal/batchsched"
	"slotsel/internal/benchgate"
	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/env"
	"slotsel/internal/inventory"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
	"slotsel/internal/testkit"
)

// benchResult is one grid point of the harness, serialized into the
// machine-readable BENCH_*.json trajectory files.
type benchResult struct {
	// Bench is the hot path measured: "find", "csa" or "batch".
	Bench string `json:"bench"`

	// Alg is the algorithm name for the find bench ("" otherwise).
	Alg string `json:"alg,omitempty"`

	// Kernel is "incremental" (the shipped WindowIndex kernels) or
	// "oracle" (the retained per-visit copy+sort kernels) for the find
	// bench; "" for paths without an oracle twin.
	Kernel string `json:"kernel,omitempty"`

	// Nodes and Slots describe the instance; Tasks is the requested window
	// size n.
	Nodes int `json:"nodes"`
	Slots int `json:"slots"`
	Tasks int `json:"tasks,omitempty"`

	// Jobs is the batch size for the batch bench.
	Jobs int `json:"jobs,omitempty"`

	// Shards and Workers describe the churn bench: the inventory shard
	// count behind the pool and the concurrent client goroutines driving
	// the Reserve→Release cycles. Zero for the other benches.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`

	// NsPerOp is the minimum wall time of one operation over Iters timed
	// repetitions.
	NsPerOp int64 `json:"ns_per_op"`
	Iters   int   `json:"iters"`

	// AllocsPerOp and BytesPerOp are the steady-state heap costs of one
	// operation, measured as runtime.MemStats deltas over a warmed-up
	// batch. The incremental find kernels run on a reused Scanner and are
	// expected to report 0 here; the oracle kernels allocate by design.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// benchFile is the overall BENCH_5.json shape.
type benchFile struct {
	Issue   int           `json:"issue"`
	Seed    uint64        `json:"seed"`
	Results []benchResult `json:"results"`
}

// Slotbench is the reproducible benchmark harness of the incremental
// selection kernels (see cmd/slotbench): it times the Find, CSA and batch
// hot paths across node-count and window-size grids, once per kernel where
// an oracle twin exists, and emits machine-readable JSON with ns_per_op,
// allocs_per_op and bytes_per_op columns. With -check it instead runs the
// kernel differential across the same grid and fails on any signature
// mismatch — the CI gate. With -benchfmt it emits benchstat-comparable
// `Benchmark... ns/op B/op allocs/op` lines (one per timed repetition)
// instead of JSON, and with -gate it compares two such files through
// internal/benchgate, exiting non-zero on a statistically significant
// regression — the perf CI gate.
func Slotbench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slotbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Uint64("seed", 1, "workload seed (same seed = same instances)")
		iters     = fs.Int("iters", 5, "timed repetitions per grid point (the minimum is reported)")
		nodesGrid = fs.String("nodes", "16,32,64,128", "comma-separated node-count grid")
		tasksGrid = fs.String("tasks", "2,5,10", "comma-separated window-size (task count) grid")
		outPath   = fs.String("o", "", "output path (- = stdout; default BENCH_<issue>.json for JSON, stdout for -benchfmt)")
		issue     = fs.Int("issue", 5, "issue `number` stamped into the JSON output (and its default filename)")
		check     = fs.Bool("check", false, "run the incremental-vs-oracle differential over the grid instead of timing; non-zero exit on mismatch")
		benchfmt  = fs.Bool("benchfmt", false, "emit Go benchmark lines (benchstat/-gate input) instead of JSON, one line per repetition")
		gate      = fs.Bool("gate", false, "compare two -benchfmt files: slotbench -gate baseline.txt current.txt; non-zero exit on significant regression")
		regress   = fs.Float64("regress", 10, "gate threshold: fail on a significant regression past this `percent`")
		ratchet   = fs.String("ratchet", "", "with -gate: overwrite this baseline `file` with the current run when it improved significantly with zero regressions")
		accum     = fs.String("accum", "", "append a trajectory entry to this dashboard `file` (results/data.js) from the input files given as args (-benchfmt text or BENCH_*.json), or from a fresh grid run when none")
		label     = fs.String("label", "", "trajectory entry label for -accum (default: derived from the input, or \"local\")")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *gate {
		return benchGate(fs.Args(), *regress, *ratchet, stdout, stderr)
	}
	nodeCounts, err := parseIntGrid(*nodesGrid)
	if err != nil {
		fmt.Fprintln(stderr, "slotbench: -nodes:", err)
		return 2
	}
	taskCounts, err := parseIntGrid(*tasksGrid)
	if err != nil {
		fmt.Fprintln(stderr, "slotbench: -tasks:", err)
		return 2
	}
	if *iters < 1 {
		fmt.Fprintln(stderr, "slotbench: -iters must be >= 1")
		return 2
	}

	if *check {
		return benchCheck(stdout, stderr, *seed, nodeCounts, taskCounts)
	}
	if *benchfmt {
		return benchFmt(stdout, stderr, *outPath, *seed, *iters, nodeCounts, taskCounts)
	}
	if *accum != "" {
		return benchAccum(stdout, stderr, *accum, *label, fs.Args(), *seed, *iters, nodeCounts, taskCounts)
	}

	ops, err := benchOpsGrid(*seed, nodeCounts, taskCounts)
	if err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	if *outPath == "" {
		*outPath = fmt.Sprintf("BENCH_%d.json", *issue)
	}
	file := benchFile{Issue: *issue, Seed: *seed}
	for _, bo := range ops {
		times := benchTimes(*iters, bo.op)
		allocs, bytes := benchAlloc(bo.allocRounds, bo.op)
		r := bo.meta
		r.NsPerOp = minInt64(times)
		r.Iters = *iters
		r.AllocsPerOp = allocs
		r.BytesPerOp = bytes
		file.Results = append(file.Results, r)
	}

	var w io.Writer = stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "slotbench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	if *outPath != "-" {
		fmt.Fprintf(stdout, "slotbench: wrote %d results to %s\n", len(file.Results), *outPath)
	}
	return 0
}

// benchOp is one measured grid point: a benchstat-safe name, the JSON
// metadata row, the alloc-measurement batch size, and the operation.
type benchOp struct {
	name        string // e.g. BenchmarkFind/alg=MinCost/kernel=incremental/nodes=16/tasks=2
	meta        benchResult
	allocRounds int
	op          func()
}

// benchOpsGrid enumerates the measured grid once, shared by the JSON and
// -benchfmt output modes so the two can never time different workloads.
func benchOpsGrid(seed uint64, nodeCounts, taskCounts []int) ([]benchOp, error) {
	var ops []benchOp
	sc := core.NewScanner()
	for _, nc := range nodeCounts {
		nc := nc
		e := env.Generate(env.DefaultConfig().WithNodeCount(nc), randx.New(seed))
		list := e.Slots

		// The cached/uncached service rows run against an inventory of the
		// same instance: the configuration slotserve actually serves, with
		// the churn-aware FindCache in front of the kernel.
		inv, err := inventory.New(list, inventory.Options{})
		if err != nil {
			return nil, err
		}
		cache := inventory.NewFindCache(inv, 0)

		for _, tasks := range taskCounts {
			req := benchRequest(tasks)
			for _, alg := range benchAlgorithms(seed) {
				oracle, ok := core.Oracle(alg)
				if !ok {
					return nil, fmt.Errorf("no oracle twin for %s", alg.Name())
				}
				// The incremental kernel runs through the reused Scanner —
				// the steady-state service shape, and the configuration the
				// zero-alloc gate pins. The oracle twin has no pooled path;
				// its per-visit copy+sort allocations are the baseline the
				// alloc columns contrast against.
				r1, r2 := req, req
				alg := alg
				for _, run := range []struct {
					kernel string
					op     func()
				}{
					{"incremental", func() { _, _ = sc.FindObserved(alg, list, &r1, nil) }},
					{"oracle", func() { _, _ = oracle.Find(list, &r2) }},
				} {
					meta := benchResult{
						Bench: "find", Alg: alg.Name(), Kernel: run.kernel,
						Nodes: nc, Slots: len(list), Tasks: tasks,
					}
					ops = append(ops, benchOp{
						name:        benchName(meta),
						meta:        meta,
						allocRounds: findAllocRounds,
						op:          run.op,
					})
				}
			}

			// Service-layer find, with and without the FindCache in front.
			// The instance does not churn during the measurement, so after
			// the first miss every cached op is a steady-state hit — the
			// key lookup plus the invalidation-ring disjointness proof —
			// while the uncached op pays what every /v1/find pays without
			// the cache: a fresh full kernel pass over the same snapshot.
			// The spread between the two rows is the cache's headline win.
			rc, ru := req, req
			ckey := inventory.NewCacheKey(&rc, core.AMP{}.Name())
			for _, run := range []struct {
				kernel string
				op     func()
			}{
				{"cached", func() {
					_, _, _ = cache.Find(ckey, func(snap *inventory.Snapshot) (*core.Window, error) {
						return core.FindObserved(core.AMP{}, snap.Slots, &rc, nil)
					})
				}},
				{"uncached", func() {
					snap := inv.Snapshot()
					_, _ = core.FindObserved(core.AMP{}, snap.Slots, &ru, nil)
				}},
			} {
				meta := benchResult{
					Bench: "find", Alg: core.AMP{}.Name(), Kernel: run.kernel,
					Nodes: nc, Slots: len(list), Tasks: tasks,
				}
				ops = append(ops, benchOp{
					name:        benchName(meta),
					meta:        meta,
					allocRounds: findAllocRounds,
					op:          run.op,
				})
			}

			// CSA alternative search: repeated AMP over a carved working
			// copy — the inventory/reserve hot path. Search draws a pooled
			// scanner internally, so this times the shipped clone-free loop.
			r := req
			tasks := tasks
			csaMeta := benchResult{Bench: "csa", Nodes: nc, Slots: len(list), Tasks: tasks}
			ops = append(ops, benchOp{
				name:        benchName(csaMeta),
				meta:        csaMeta,
				allocRounds: csaAllocRounds,
				op: func() {
					_, _ = csa.Search(list, &r, csa.Options{MaxAlternatives: 10, MinSlotLength: 10})
				},
			})
		}

		// Two-stage batch scheduling over a random batch: stage-1 CSA per
		// job plus the stage-2 selection DP.
		const batchJobs = 8
		batchMeta := benchResult{Bench: "batch", Nodes: nc, Slots: len(list), Jobs: batchJobs}
		ops = append(ops, benchOp{
			name:        benchName(batchMeta),
			meta:        batchMeta,
			allocRounds: batchAllocRounds,
			op: func() {
				batch := testkit.RandomBatch(randx.New(seed), batchJobs)
				_, _ = batchsched.Schedule(list, batch,
					csa.Options{MaxAlternatives: 3, MinSlotLength: 10},
					batchsched.SelectConfig{Budget: 4000, Criterion: csa.ByFinish})
			},
		})
	}
	churn, err := benchChurnOps(seed)
	if err != nil {
		return nil, err
	}
	return append(ops, churn...), nil
}

// benchChurnOps is the shard-sweep: the identical Reserve→Release churn
// workload measured at 1, 2 and 4 inventory shards, serially and under
// parallel workers. Every variant cycles the same pre-built single-node
// windows (found once against the initial snapshot; a released window is
// immediately reservable again, so the pool returns to its starting state
// every op), which isolates the mutation path the sharding tentpole
// targets: per-shard locking and the O(slots/shard) snapshot
// republication, with no search time mixed in. One op is a full pass —
// every window reserved and released once — so ns_per_op at equal work
// divides out directly into the cross-shard speedup.
func benchChurnOps(seed uint64) ([]benchOp, error) {
	// A dense instance — many slots per node — so the cost under
	// measurement is the one sharding divides: the O(slots/shard)
	// republication splice behind every mutation. Slots are laid out with
	// gaps so interval merging cannot collapse them.
	const (
		churnNodes        = 64
		churnSlotsPerNode = 48
	)
	rng := randx.New(seed)
	var list slots.List
	for id := 0; id < churnNodes; id++ {
		n := testkit.Node(id, float64(rng.IntRange(2, 10)), 0.3+3*rng.Float64())
		for k := 0; k < churnSlotsPerNode; k++ {
			start := float64(k * 100)
			list = append(list, &slots.Slot{Node: n, Interval: slots.Interval{Start: start, End: start + 80}})
		}
	}
	var ops []benchOp
	for _, nShards := range []int{1, 2, 4} {
		pool, err := inventory.NewSharded(list, inventory.Options{MinSlotLength: 1, Shards: nShards})
		if err != nil {
			return nil, err
		}
		// One window per node, on the node's first free slot: windows on
		// distinct nodes never contend for capacity, so every reserve
		// succeeds and parallel workers measure lock contention, not
		// conflict retries.
		seen := make(map[int]bool)
		var wins []*core.Window
		for _, s := range pool.Snapshot().Slots {
			if seen[s.Node.ID] {
				continue
			}
			seen[s.Node.ID] = true
			length := s.Interval.End - s.Interval.Start
			wins = append(wins, core.NewWindow(s.Interval.Start, []core.Candidate{
				{Slot: s, Exec: length / 2, Cost: 1},
			}))
		}
		for _, workers := range []int{1, 4} {
			pool, wins, workers := pool, wins, workers
			op := func() {
				if workers == 1 {
					for _, w := range wins {
						res, err := pool.ReserveWindow(w, time.Hour)
						if err != nil {
							continue
						}
						_ = pool.Release(res.ID)
					}
					return
				}
				var wg sync.WaitGroup
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := g; i < len(wins); i += workers {
							res, err := pool.ReserveWindow(wins[i], time.Hour)
							if err != nil {
								continue
							}
							_ = pool.Release(res.ID)
						}
					}(g)
				}
				wg.Wait()
			}
			meta := benchResult{
				Bench: "churn", Shards: nShards, Workers: workers,
				Nodes: churnNodes, Slots: len(list),
			}
			ops = append(ops, benchOp{
				name:        benchName(meta),
				meta:        meta,
				allocRounds: churnAllocRounds,
				op:          op,
			})
		}
	}
	return ops, nil
}

// benchMinSample is the wall-time floor of one benchfmt measurement: fast
// ops are batched until a sample covers at least this long, so a sample is
// never dominated by clock granularity or scheduler jitter.
const benchMinSample = 200 * time.Microsecond

// benchFmt is the -benchfmt mode: the same grid, emitted as Go benchmark
// lines — one line per timed repetition, so downstream statistics
// (benchstat, the -gate Mann-Whitney test) see a real sample, not a point
// estimate.
//
// Repetitions are taken round-robin across the whole grid, not
// consecutively per benchmark: consecutive samples of one op share the
// machine's momentary state (frequency step, a noisy neighbor) and
// understate the run-to-run variance the significance test needs to model.
// Spreading one benchmark's reps over the full run makes its sample
// variance track the drift a later comparison run will actually face. The
// alloc columns are measured once per grid point (they are deterministic)
// and repeated on every line.
func benchFmt(stdout, stderr io.Writer, outPath string, seed uint64, iters int, nodeCounts, taskCounts []int) int {
	ops, err := benchOpsGrid(seed, nodeCounts, taskCounts)
	if err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	var w io.Writer = stdout
	if outPath != "-" && outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(stderr, "slotbench:", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	// Warm-up pass: page in every instance, size pools and indexes, and
	// calibrate the per-op batch size from the warm-up timing.
	batch := make([]int, len(ops))
	for i, bo := range ops {
		start := time.Now()
		bo.op()
		d := time.Since(start)
		b := 1
		if d > 0 && d < benchMinSample {
			b = int(benchMinSample/d) + 1
		}
		if b > 1000 {
			b = 1000
		}
		batch[i] = b
	}
	runtime.GC()

	times := make([][]float64, len(ops))
	for round := 0; round < iters; round++ {
		for i, bo := range ops {
			start := time.Now()
			for j := 0; j < batch[i]; j++ {
				bo.op()
			}
			perOp := float64(time.Since(start).Nanoseconds()) / float64(batch[i])
			times[i] = append(times[i], perOp)
		}
	}

	fmt.Fprintf(w, "goos: %s\ngoarch: %s\npkg: slotsel/cmd/slotbench\n", runtime.GOOS, runtime.GOARCH)
	for i, bo := range ops {
		allocs, bytes := benchAlloc(bo.allocRounds, bo.op)
		for _, ns := range times[i] {
			fmt.Fprintf(w, "%s\t%8d\t%.0f ns/op\t%.0f B/op\t%.2f allocs/op\n", bo.name, batch[i], ns, bytes, allocs)
		}
	}
	return 0
}

// benchGate is the -gate mode: compare a baseline -benchfmt file against a
// current one and fail on statistically significant regressions. ns/op is
// machine-calibrated, allocs/op is compared raw; see internal/benchgate.
// With -ratchet, a run that improved significantly somewhere and regressed
// nowhere overwrites the named baseline file with the current samples, so
// the reference numbers track genuine kernel wins without hand-refreshes —
// and a mixed run cannot launder a slowdown into the new baseline.
func benchGate(args []string, regressPct float64, ratchetPath string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "slotbench: -gate wants exactly two files: baseline.txt current.txt")
		return 2
	}
	oldF, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	defer oldF.Close()
	newF, err := os.Open(args[1])
	if err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	defer newF.Close()
	opts := benchgate.DefaultOptions()
	opts.Threshold = regressPct / 100
	res, err := benchgate.GateResult(oldF, newF, opts, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	if ratchetPath == "" {
		return 0
	}
	if !res.ShouldRatchet() {
		fmt.Fprintf(stdout, "slotbench: baseline %s kept (no significant improvement to ratchet)\n", ratchetPath)
		return 0
	}
	cur, err := os.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(stderr, "slotbench: ratchet:", err)
		return 1
	}
	if err := os.WriteFile(ratchetPath, cur, 0o644); err != nil {
		fmt.Fprintln(stderr, "slotbench: ratchet:", err)
		return 1
	}
	fmt.Fprintf(stdout, "slotbench: ratcheted %s from %s (%d improved, 0 regressed)\n",
		ratchetPath, args[1], len(res.Improvements()))
	return 0
}

// benchCheck is the -check mode: the incremental kernels must match their
// copy+sort oracles signature-for-signature on every grid instance.
func benchCheck(stdout, stderr io.Writer, seed uint64, nodeCounts, taskCounts []int) int {
	checked, bad := 0, 0
	for _, nc := range nodeCounts {
		e := env.Generate(env.DefaultConfig().WithNodeCount(nc), randx.New(seed))
		for _, tasks := range taskCounts {
			req := benchRequest(tasks)
			for _, alg := range benchAlgorithms(seed) {
				oracle, ok := core.Oracle(alg)
				if !ok {
					fmt.Fprintf(stderr, "slotbench: no oracle twin for %s\n", alg.Name())
					return 1
				}
				r1, r2 := req, req
				incW, incErr := alg.Find(e.Slots, &r1)
				orcW, orcErr := oracle.Find(e.Slots, &r2)
				checked++
				if (incErr == nil) != (orcErr == nil) {
					fmt.Fprintf(stderr, "slotbench: MISMATCH nodes=%d tasks=%d alg=%s: incremental err=%v, oracle err=%v\n",
						nc, tasks, alg.Name(), incErr, orcErr)
					bad++
					continue
				}
				if incErr != nil {
					continue
				}
				is, os := testkit.WindowSignature(incW), testkit.WindowSignature(orcW)
				if is != os {
					fmt.Fprintf(stderr, "slotbench: MISMATCH nodes=%d tasks=%d alg=%s:\n  incremental: %s\n  oracle:      %s\n",
						nc, tasks, alg.Name(), is, os)
					bad++
				}
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "slotbench: %d/%d kernel differentials FAILED\n", bad, checked)
		return 1
	}
	fmt.Fprintf(stdout, "slotbench: %d kernel differentials ok\n", checked)
	return 0
}

// benchAlgorithms is the measured catalogue: every shipped algorithm
// family, matching the differential test suite's coverage.
func benchAlgorithms(seed uint64) []core.Algorithm {
	return []core.Algorithm{
		core.AMP{},
		core.MinCost{},
		core.MinRunTime{},
		core.MinRunTime{Exact: true},
		core.MinFinish{},
		core.MinFinish{Exact: true},
		core.MinProcTime{Seed: seed},
		core.MinProcTimeGreedy{},
		core.MinEnergy{},
	}
}

// benchRequest scales the §3.1 reference request (5 slots x volume 150
// under budget 1500) to the given window size.
func benchRequest(tasks int) job.Request {
	return job.Request{TaskCount: tasks, Volume: 150, MaxCost: 300 * float64(tasks)}
}

// Allocation-measurement batch sizes, matched to the per-op cost of each
// hot path so a batch stays in the low milliseconds even at 128 nodes.
const (
	findAllocRounds  = 200
	csaAllocRounds   = 50
	batchAllocRounds = 5
	churnAllocRounds = 10
)

// benchAlloc reports the mean heap allocations and bytes of one op over a
// warmed-up batch, from runtime.MemStats' monotonic Mallocs / TotalAlloc
// counters. The warm-up run pays the one-time costs (index capacity
// growth, pool warm-up) that the steady-state figure must exclude; the GC
// fence keeps a concurrently finishing sweep from attributing its work to
// the batch.
func benchAlloc(rounds int, op func()) (allocsPerOp, bytesPerOp float64) {
	op()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		op()
	}
	runtime.ReadMemStats(&after)
	n := float64(rounds)
	return float64(after.Mallocs-before.Mallocs) / n, float64(after.TotalAlloc-before.TotalAlloc) / n
}

// benchTimes runs op iters times and returns every repetition's wall time.
// The JSON mode reports the minimum (the standard least-noise estimator
// for deterministic workloads); the benchfmt mode keeps the whole sample
// so the regression gate can test significance. The GC fence matters:
// without it, garbage left by a previous grid point's allocation batch
// makes the collector tax every timed rep with assist work, and even a
// minimum-of-iters estimator cannot dodge a slowdown that covers the whole
// window.
func benchTimes(iters int, op func()) []int64 {
	op() // warm-up: page in the list, size the allocator
	runtime.GC()
	times := make([]int64, iters)
	for i := range times {
		start := time.Now()
		op()
		times[i] = time.Since(start).Nanoseconds()
	}
	return times
}

func minInt64(xs []int64) int64 {
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}

func parseIntGrid(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad grid entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty grid")
	}
	return out, nil
}
