package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"slotsel/internal/slotlab"
)

// Slotlab runs the scenario-driven conformance and soak harness (see
// cmd/slotlab).
func Slotlab(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slotlab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarios = fs.String("scenarios", "all", "comma-separated scenario `names`, or \"all\"")
		duration  = fs.Duration("duration", 10*time.Second, "traffic window per scenario")
		seed      = fs.Uint64("seed", 1, "run `seed` (fixes workloads, environments and sampling)")
		out       = fs.String("o", "", "report `file` (default results/slotlab_<seed>.json)")
		soak      = fs.Bool("soak", false, "mark this run as the long-run soak tier in the report")
		list      = fs.Bool("list", false, "list scenarios and exit")
		quiet     = fs.Bool("q", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, sc := range slotlab.Scenarios() {
			fmt.Fprintf(stdout, "%-16s %s\n", sc.Name, sc.Description)
		}
		return 0
	}

	selected, err := slotlab.Resolve(*scenarios)
	if err != nil {
		fmt.Fprintln(stderr, "slotlab:", err)
		return 2
	}

	cfg := slotlab.Config{Seed: *seed, Duration: *duration, Soak: *soak}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	rep, err := slotlab.Run(cfg, selected)
	if err != nil {
		fmt.Fprintln(stderr, "slotlab:", err)
		return 1
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("results/slotlab_%d.json", *seed)
	}
	if err := rep.Write(path); err != nil {
		fmt.Fprintln(stderr, "slotlab:", err)
		return 1
	}

	fmt.Fprint(stdout, rep.Summary())
	fmt.Fprintf(stdout, "report: %s\n", path)
	if !rep.Pass {
		fmt.Fprintf(stderr, "slotlab: FAIL (%s)\n", strings.Join(rep.FailedChecks(), ", "))
		return 1
	}
	return 0
}
