package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run invokes a CLI function capturing stdout/stderr.
func run(t *testing.T, f func([]string, *bytes.Buffer, *bytes.Buffer) int, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = f(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func runSlotsim(t *testing.T, args ...string) (int, string, string) {
	return run(t, func(a []string, o, e *bytes.Buffer) int { return Slotsim(a, o, e) }, args...)
}

func runSlotgen(t *testing.T, args ...string) (int, string, string) {
	return run(t, func(a []string, o, e *bytes.Buffer) int { return Slotgen(a, o, e) }, args...)
}

func runSlotfind(t *testing.T, args ...string) (int, string, string) {
	return run(t, func(a []string, o, e *bytes.Buffer) int { return Slotfind(a, o, e) }, args...)
}

func TestSlotsimUsageErrors(t *testing.T) {
	if code, _, _ := runSlotsim(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code, _, stderr := runSlotsim(t, "nonsense"); code != 2 || !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("unknown experiment: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runSlotsim(t, "-not-a-flag", "fig4"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestSlotsimFig4(t *testing.T) {
	code, stdout, stderr := runSlotsim(t, "-cycles", "15", "-nodes", "30", "fig4")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"Fig. 4", "MinCost", "CSA"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("fig4 output missing %q:\n%s", want, stdout)
		}
	}
}

func TestSlotsimSummaryParallel(t *testing.T) {
	code, stdout, stderr := runSlotsim(t, "-cycles", "15", "-nodes", "30", "-workers", "3", "summary")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "CSA average alternatives") {
		t.Errorf("summary output incomplete:\n%s", stdout)
	}
}

func TestSlotsimTimingTables(t *testing.T) {
	// Shrink via -cycles; the sweep values stay the paper's, so keep the
	// run tiny.
	code, stdout, stderr := runSlotsim(t, "-cycles", "1", "table2")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "Table 2") || !strings.Contains(stdout, "Fig. 6") {
		t.Errorf("table2 output incomplete:\n%s", stdout)
	}
}

func TestSlotsimExtensions(t *testing.T) {
	for _, cmd := range []string{"tasks", "frontier", "batch", "longrun"} {
		code, stdout, stderr := runSlotsim(t, "-cycles", "5", "-nodes", "30", cmd)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr %q", cmd, code, stderr)
		}
		if stdout == "" {
			t.Errorf("%s produced no output", cmd)
		}
	}
}

func TestSlotsimAll(t *testing.T) {
	if testing.Short() {
		t.Skip("all-experiments run is slow")
	}
	code, stdout, stderr := runSlotsim(t,
		"-cycles", "1", "-nodes", "25",
		"-sweep-nodes", "15", "-sweep-horizons", "200", "all")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{"Fig. 2 (a)", "Fig. 4", "Table 1", "Table 2", "pricing degree", "batch study"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("all output missing %q", want)
		}
	}
}

func TestSlotsimCSVOutput(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "out.csv")
	code, _, stderr := runSlotsim(t, "-cycles", "10", "-nodes", "30", "-csv", csvPath, "summary")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "algorithm,metric,mean") {
		t.Errorf("CSV header wrong: %q", string(data[:min(60, len(data))]))
	}
}

func TestSlotsimAblate(t *testing.T) {
	code, stdout, stderr := runSlotsim(t, "-cycles", "10", "-nodes", "30", "ablate")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "pricing degree ablation") {
		t.Errorf("ablate output incomplete:\n%s", stdout)
	}
}

func TestSlotgenAndSlotfindPipeline(t *testing.T) {
	dir := t.TempDir()
	envPath := filepath.Join(dir, "env.json")

	code, _, stderr := runSlotgen(t, "-nodes", "40", "-seed", "3", "-o", envPath)
	if code != 0 {
		t.Fatalf("slotgen exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "40 nodes") {
		t.Errorf("slotgen summary missing: %q", stderr)
	}
	if _, err := os.Stat(envPath); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runSlotfind(t, "-env", envPath, "-alg", "mincost")
	if code != 0 {
		t.Fatalf("slotfind exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "MinCost:") {
		t.Errorf("slotfind output missing header: %q", stdout)
	}

	code, stdout, _ = runSlotfind(t, "-env", envPath, "-alg", "minruntime", "-gantt")
	if code != 0 {
		t.Fatalf("slotfind -gantt exit %d", code)
	}
	if !strings.Contains(stdout, "#") || !strings.Contains(stdout, "=") {
		t.Errorf("gantt glyphs missing:\n%s", stdout)
	}

	code, stdout, _ = runSlotfind(t, "-env", envPath, "-alternatives")
	if code != 0 {
		t.Fatalf("slotfind -alternatives exit %d", code)
	}
	if !strings.Contains(stdout, "disjoint alternatives") {
		t.Errorf("alternatives output missing: %q", stdout)
	}

	code, stdout, _ = runSlotfind(t, "-env", envPath, "-alg", "amp", "-json")
	if code != 0 {
		t.Fatalf("slotfind -json exit %d", code)
	}
	if !strings.Contains(stdout, `"placements"`) {
		t.Errorf("JSON output missing placements: %q", stdout)
	}

	// Multi-algorithm comparison on the worker pool: the table must list
	// every requested algorithm and be identical for any worker count.
	code, seqOut, stderr := runSlotfind(t, "-env", envPath, "-alg", "amp,mincost,minruntime", "-workers", "1")
	if code != 0 {
		t.Fatalf("slotfind multi-alg exit %d: %s", code, stderr)
	}
	for _, name := range []string{"AMP", "MinCost", "MinRunTime"} {
		if !strings.Contains(seqOut, name) {
			t.Errorf("multi-alg table missing %s:\n%s", name, seqOut)
		}
	}
	code, parOut, stderr := runSlotfind(t, "-env", envPath, "-alg", "amp,mincost,minruntime", "-workers", "8")
	if code != 0 {
		t.Fatalf("slotfind multi-alg -workers 8 exit %d: %s", code, stderr)
	}
	if parOut != seqOut {
		t.Errorf("multi-alg output depends on worker count:\nworkers=1:\n%s\nworkers=8:\n%s", seqOut, parOut)
	}
}

func TestSlotfindErrors(t *testing.T) {
	if code, _, _ := runSlotfind(t); code != 2 {
		t.Errorf("missing -env: exit %d, want 2", code)
	}
	if code, _, _ := runSlotfind(t, "-env", "/does/not/exist.json"); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	dir := t.TempDir()
	envPath := filepath.Join(dir, "env.json")
	if code, _, _ := runSlotgen(t, "-nodes", "10", "-o", envPath); code != 0 {
		t.Fatal("slotgen failed")
	}
	if code, _, _ := runSlotfind(t, "-env", envPath, "-alg", "bogus"); code != 2 {
		t.Errorf("unknown algorithm: exit %d, want 2", code)
	}
	// An impossible request exits 1 with a friendly message.
	code, stdout, _ := runSlotfind(t, "-env", envPath, "-tasks", "500")
	if code != 1 || !strings.Contains(stdout, "no feasible window") {
		t.Errorf("infeasible request: exit %d, stdout %q", code, stdout)
	}
}

func TestSlotsimRemainingExperiments(t *testing.T) {
	for _, cmd := range []string{"fig2", "fig3", "hetero", "deadline"} {
		code, stdout, stderr := runSlotsim(t, "-cycles", "8", "-nodes", "30", cmd)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr %q", cmd, code, stderr)
		}
		if stdout == "" {
			t.Errorf("%s produced no output", cmd)
		}
	}
}

func TestSlotsimSweepFlagsAndSVG(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runSlotsim(t,
		"-cycles", "2", "-sweep-nodes", "20,40", "-svg", dir, "table1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "20") || !strings.Contains(stdout, "40") {
		t.Errorf("custom sweep values missing:\n%s", stdout)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("fig5.svg is not SVG: %q", string(data[:min(40, len(data))]))
	}

	code, _, stderr = runSlotsim(t,
		"-cycles", "2", "-sweep-horizons", "200,400", "-svg", dir, "table2")
	if code != 0 {
		t.Fatalf("table2 exit %d: %s", code, stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig6.svg")); err != nil {
		t.Fatal(err)
	}

	if code, _, _ := runSlotsim(t, "-sweep-nodes", "abc", "table1"); code != 2 {
		t.Errorf("bad sweep list accepted: exit %d", code)
	}
}

func TestSlotsimQualitySVG(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runSlotsim(t, "-cycles", "8", "-nodes", "30", "-svg", dir, "fig2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, name := range []string{"fig2a.svg", "fig2b.svg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
}

func TestSlotfindRequestFile(t *testing.T) {
	dir := t.TempDir()
	envPath := filepath.Join(dir, "env.json")
	if code, _, _ := runSlotgen(t, "-nodes", "40", "-o", envPath); code != 0 {
		t.Fatal("slotgen failed")
	}
	reqPath := filepath.Join(dir, "req.json")
	if err := os.WriteFile(reqPath, []byte(`{"tasks": 3, "volume": 90, "max_cost": 900}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runSlotfind(t, "-env", envPath, "-request", reqPath, "-alg", "mincost")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	// Three placements must be listed (one per task of the loaded request).
	if got := strings.Count(stdout, "node "); got != 3 {
		t.Errorf("expected 3 placements, got %d:\n%s", got, stdout)
	}
	if code, _, _ := runSlotfind(t, "-env", envPath, "-request", filepath.Join(dir, "missing.json")); code != 1 {
		t.Errorf("missing request file: exit %d, want 1", code)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tasks": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runSlotfind(t, "-env", envPath, "-request", bad); code != 1 {
		t.Errorf("invalid request file: exit %d, want 1", code)
	}
}

func TestSlotgenToStdout(t *testing.T) {
	code, stdout, _ := runSlotgen(t, "-nodes", "5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, `"version"`) {
		t.Errorf("snapshot JSON missing: %q", stdout[:min(80, len(stdout))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
