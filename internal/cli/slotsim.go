// Package cli implements the command-line tools (slotsim, slotgen,
// slotfind) as testable functions: each takes an argument vector and output
// writers and returns a process exit code. The cmd/ mains are one-line
// wrappers.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"slotsel/internal/experiments"
	"slotsel/internal/vosim"
)

// Slotsim runs the experiment driver (see cmd/slotsim).
func Slotsim(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slotsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cycles     = fs.Int("cycles", 0, "scheduling cycles (0 = experiment default: 5000 quality, 1000 timing)")
		seed       = fs.Uint64("seed", 1, "random seed")
		nodeCount  = fs.Int("nodes", 100, "CPU node count for quality experiments")
		horizon    = fs.Float64("horizon", 600, "scheduling interval length")
		tasks      = fs.Int("tasks", 5, "parallel slots required by the base job")
		volume     = fs.Float64("volume", 150, "task volume of the base job")
		budget     = fs.Float64("budget", 1500, "total cost limit of the base job")
		pricingLin = fs.Bool("linear-pricing", false, "use strictly linear pricing (ablation; default is the market-premium model)")
		workers    = fs.Int("workers", 0, "run the quality study and the batch study's stage-1 search on a worker pool (0 = sequential, matching the paper's setup; batch results are identical for any value)")
		csvPath    = fs.String("csv", "", "also write machine-readable results to this CSV file (quality, timing and sweep experiments)")
		svgDir     = fs.String("svg", "", "also render figures as SVG files into this directory (quality figures and timing curves)")
		sweepNodes = fs.String("sweep-nodes", "", "comma-separated node counts for table1 (default: the paper's 50,100,200,300,400)")
		sweepHoriz = fs.String("sweep-horizons", "", "comma-separated interval lengths for table2 (default: the paper's 600..3600)")
	)
	obsF := registerObsFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: slotsim [flags] <fig2|fig3|fig4|table1|table2|summary|ablate|tasks|frontier|hetero|deadline|batch|longrun|all>\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	// The aggregating collector feeds the quality and batch studies; the
	// other experiments run uninstrumented (their configs have no collector
	// seam — timing results would be skewed by instrumentation anyway).
	agg := &experiments.ObsAgg{}
	col, err := obsF.setup("slotsim", agg, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "slotsim:", err)
		return 1
	}

	qcfg := experiments.DefaultQualityConfig()
	qcfg.Collector = col
	qcfg.Seed = *seed
	qcfg.Env = qcfg.Env.WithNodeCount(*nodeCount).WithHorizon(*horizon)
	qcfg.Request.TaskCount = *tasks
	qcfg.Request.Volume = *volume
	qcfg.Request.MaxCost = *budget
	if *pricingLin {
		qcfg.Env.Nodes.Pricing.Degree = 1
	}
	if *cycles > 0 {
		qcfg.Cycles = *cycles
	}

	tcfg := experiments.DefaultTimingConfig()
	tcfg.Seed = *seed
	tcfg.Request = qcfg.Request
	tcfg.Env = qcfg.Env
	if *cycles > 0 {
		tcfg.Cycles = *cycles
	}
	if *sweepNodes != "" {
		vals, err := parseFloats(*sweepNodes)
		if err != nil {
			fmt.Fprintf(stderr, "slotsim: -sweep-nodes: %v\n", err)
			return 2
		}
		tcfg.NodeCounts = tcfg.NodeCounts[:0]
		for _, v := range vals {
			tcfg.NodeCounts = append(tcfg.NodeCounts, int(v))
		}
	}
	if *sweepHoriz != "" {
		vals, err := parseFloats(*sweepHoriz)
		if err != nil {
			fmt.Fprintf(stderr, "slotsim: -sweep-horizons: %v\n", err)
			return 2
		}
		tcfg.Horizons = vals
	}

	acfg := experiments.DefaultAblationConfig()
	acfg.Seed = *seed
	acfg.Request = qcfg.Request
	if *cycles > 0 {
		acfg.Cycles = *cycles
	}

	scfg := experiments.DefaultSweepConfig()
	scfg.Seed = *seed
	scfg.Env = qcfg.Env
	scfg.Request = qcfg.Request
	if *cycles > 0 {
		scfg.Cycles = *cycles
	}

	bcfg := experiments.DefaultBatchStudyConfig()
	bcfg.Collector = col
	bcfg.Seed = *seed
	bcfg.Env = qcfg.Env
	bcfg.Workers = *workers
	if *cycles > 0 {
		bcfg.Cycles = *cycles
	}

	runQuality := func(cfg experiments.QualityConfig) (*experiments.QualityResult, error) {
		if *workers > 0 {
			return experiments.RunQualityParallel(cfg, *workers)
		}
		return experiments.RunQuality(cfg)
	}

	s := &slotsimRun{stdout: stdout, runQuality: runQuality, csvPath: *csvPath, svgDir: *svgDir}
	switch cmd := fs.Arg(0); cmd {
	case "fig2":
		err = s.qualityFigures(qcfg, []figSpec{
			{experiments.MetricStart, "Fig. 2 (a)"},
			{experiments.MetricRuntime, "Fig. 2 (b)"},
		})
	case "fig3":
		err = s.qualityFigures(qcfg, []figSpec{
			{experiments.MetricFinish, "Fig. 3 (a)"},
			{experiments.MetricProcTime, "Fig. 3 (b)"},
		})
	case "fig4":
		err = s.qualityFigures(qcfg, []figSpec{
			{experiments.MetricCost, "Fig. 4"},
		})
	case "summary":
		err = s.summary(qcfg)
	case "table1":
		err = s.table1(tcfg)
	case "table2":
		err = s.table2(tcfg)
	case "ablate":
		err = s.ablations(acfg)
	case "tasks":
		err = s.taskSweep(scfg)
	case "frontier":
		err = s.frontier(scfg)
	case "hetero":
		err = s.heterogeneity(scfg)
	case "deadline":
		err = s.deadlineSweep(scfg)
	case "batch":
		err = s.batchStudy(bcfg)
	case "longrun":
		vcfg := vosim.DefaultConfig()
		vcfg.Seed = *seed
		vcfg.Nodes.Count = *nodeCount
		if *cycles > 0 {
			vcfg.Cycles = *cycles
		}
		err = s.longRun(vcfg)
	case "all":
		err = s.all(qcfg, tcfg, acfg, scfg, bcfg)
	default:
		fmt.Fprintf(stderr, "slotsim: unknown experiment %q\n", cmd)
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "slotsim:", err)
		return 1
	}
	if obsF.stats {
		agg.Render(stdout)
	}
	if err := obsF.finish(); err != nil {
		fmt.Fprintln(stderr, "slotsim:", err)
		return 1
	}
	return 0
}

type slotsimRun struct {
	stdout     io.Writer
	runQuality func(experiments.QualityConfig) (*experiments.QualityResult, error)
	csvPath    string
	svgDir     string
}

// writeSVG renders one figure into <svgDir>/<name>.svg when -svg is set.
func (s *slotsimRun) writeSVG(name string, write func(io.Writer) error) error {
	if s.svgDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.svgDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(s.svgDir, name+".svg"))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseFloats parses a comma-separated list of positive numbers.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(part, "%g", &v); err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// svgName turns a paper label like "Fig. 2 (a)" into "fig2a".
func svgName(label string) string {
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		}
	}
	return b.String()
}

// writeCSV writes one experiment's machine-readable output when -csv is set.
func (s *slotsimRun) writeCSV(write func(io.Writer) error) error {
	if s.csvPath == "" {
		return nil
	}
	f, err := os.Create(s.csvPath)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

type figSpec struct {
	metric experiments.FigureMetric
	label  string
}

func (s *slotsimRun) qualityFigures(cfg experiments.QualityConfig, specs []figSpec) error {
	res, err := s.runQuality(cfg)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		res.RenderFigure(s.stdout, spec.metric, spec.label)
		spec := spec
		if err := s.writeSVG(svgName(spec.label), func(w io.Writer) error {
			return res.WriteFigureSVG(w, spec.metric, spec.label)
		}); err != nil {
			return err
		}
	}
	return s.writeCSV(res.WriteQualityCSV)
}

func (s *slotsimRun) summary(cfg experiments.QualityConfig) error {
	res, err := s.runQuality(cfg)
	if err != nil {
		return err
	}
	res.RenderSummary(s.stdout)
	return s.writeCSV(res.WriteQualityCSV)
}

func (s *slotsimRun) table1(cfg experiments.TimingConfig) error {
	res, err := experiments.RunNodeSweep(cfg)
	if err != nil {
		return err
	}
	res.RenderTable(s.stdout, "Table 1. Actual algorithms execution time vs CPU node count")
	res.RenderCurves(s.stdout, "Fig. 5. Average working time vs available CPU nodes (CSA omitted as in the paper)", false)
	if err := s.writeSVG("fig5", func(w io.Writer) error {
		return res.WriteCurvesSVG(w, "Fig. 5 — working time vs CPU nodes", false)
	}); err != nil {
		return err
	}
	return s.writeCSV(res.WriteTimingCSV)
}

func (s *slotsimRun) table2(cfg experiments.TimingConfig) error {
	res, err := experiments.RunIntervalSweep(cfg)
	if err != nil {
		return err
	}
	res.RenderTable(s.stdout, "Table 2. Algorithms working time vs scheduling interval length")
	res.RenderCurves(s.stdout, "Fig. 6. Average working time vs scheduling interval length", true)
	if err := s.writeSVG("fig6", func(w io.Writer) error {
		return res.WriteCurvesSVG(w, "Fig. 6 — working time vs interval length", true)
	}); err != nil {
		return err
	}
	return s.writeCSV(res.WriteTimingCSV)
}

func (s *slotsimRun) ablations(cfg experiments.AblationConfig) error {
	pricing, err := experiments.RunPricingAblation(cfg)
	if err != nil {
		return err
	}
	for _, res := range pricing {
		experiments.RenderAblation(s.stdout, res)
	}
	budgetCheck, err := experiments.RunBudgetCheckAblation(cfg)
	if err != nil {
		return err
	}
	experiments.RenderAblation(s.stdout, budgetCheck)
	greedy, err := experiments.RunGreedyVsExactAblation(cfg)
	if err != nil {
		return err
	}
	for _, res := range greedy {
		experiments.RenderAblation(s.stdout, res)
	}
	ampALP, err := experiments.RunAMPvsALP(cfg)
	if err != nil {
		return err
	}
	experiments.RenderAblation(s.stdout, ampALP)
	return nil
}

func (s *slotsimRun) taskSweep(cfg experiments.SweepConfig) error {
	results, err := experiments.RunTaskCountSweep(cfg)
	if err != nil {
		return err
	}
	experiments.RenderSweep(s.stdout, "Extension: window quality vs job parallelism n (budget = n x per-task budget)",
		"tasks", results, func(p *experiments.SweepPoint) float64 { return p.Runtime.Mean() }, "runtime")
	experiments.RenderSweep(s.stdout, "Extension: start time vs job parallelism n",
		"tasks", results, func(p *experiments.SweepPoint) float64 { return p.Start.Mean() }, "start")
	return s.writeCSV(func(w io.Writer) error { return experiments.WriteSweepCSV(w, results) })
}

func (s *slotsimRun) frontier(cfg experiments.SweepConfig) error {
	results, err := experiments.RunBudgetFrontier(cfg)
	if err != nil {
		return err
	}
	experiments.RenderSweep(s.stdout, "Extension: cost-runtime frontier — runtime vs user budget",
		"budget", results, func(p *experiments.SweepPoint) float64 { return p.Runtime.Mean() }, "runtime")
	experiments.RenderSweep(s.stdout, "Extension: cost-runtime frontier — realized cost vs user budget",
		"budget", results, func(p *experiments.SweepPoint) float64 { return p.Cost.Mean() }, "cost")
	return s.writeCSV(func(w io.Writer) error { return experiments.WriteSweepCSV(w, results) })
}

func (s *slotsimRun) heterogeneity(cfg experiments.SweepConfig) error {
	results, err := experiments.RunHeterogeneitySweep(cfg)
	if err != nil {
		return err
	}
	experiments.RenderSweep(s.stdout, "Extension: runtime vs performance heterogeneity (perf = 6 ± halfwidth)",
		"halfwidth", results, func(p *experiments.SweepPoint) float64 { return p.Runtime.Mean() }, "runtime")
	experiments.RenderSweep(s.stdout, "Extension: cost vs performance heterogeneity",
		"halfwidth", results, func(p *experiments.SweepPoint) float64 { return p.Cost.Mean() }, "cost")
	return s.writeCSV(func(w io.Writer) error { return experiments.WriteSweepCSV(w, results) })
}

func (s *slotsimRun) deadlineSweep(cfg experiments.SweepConfig) error {
	results, err := experiments.RunDeadlineSweep(cfg)
	if err != nil {
		return err
	}
	experiments.RenderSweep(s.stdout, "Extension: finish time and feasibility vs deadline",
		"deadline", results, func(p *experiments.SweepPoint) float64 { return p.Finish.Mean() }, "finish")
	experiments.RenderSweep(s.stdout, "Extension: realized cost vs deadline",
		"deadline", results, func(p *experiments.SweepPoint) float64 { return p.Cost.Mean() }, "cost")
	return s.writeCSV(func(w io.Writer) error { return experiments.WriteSweepCSV(w, results) })
}

func (s *slotsimRun) batchStudy(cfg experiments.BatchStudyConfig) error {
	res, err := experiments.RunBatchStudy(cfg)
	if err != nil {
		return err
	}
	res.Render(s.stdout)
	return nil
}

func (s *slotsimRun) longRun(cfg vosim.Config) error {
	fmt.Fprintf(s.stdout, "long-run VO simulation: %d cycles, advance %.0f, horizon %.0f, arrival rate %.1f jobs/cycle\n\n",
		cfg.Cycles, cfg.CycleAdvance, cfg.Horizon, cfg.ArrivalRate)
	fmt.Fprintln(s.stdout, "policy     accepted  dropped  queue  wait(cyc)  avg cost  avg finish  utilization")
	for _, policy := range []vosim.Policy{vosim.PolicyTwoStage, vosim.PolicyFCFS, vosim.PolicyMinCost} {
		c := cfg
		c.Policy = policy
		res, err := vosim.Run(c)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.stdout, "%-9s  %7.0f%%  %7d  %5.1f  %9.2f  %8.1f  %10.1f  %10.1f%%\n",
			policy, 100*res.AcceptanceRate(), res.Dropped,
			res.QueueLength.Mean(), res.WaitCycles.Mean(),
			res.WindowCost.Mean(), res.WindowFinish.Mean(), 100*res.BrokerUtilization)
	}
	return nil
}

func (s *slotsimRun) all(q experiments.QualityConfig, t experiments.TimingConfig,
	a experiments.AblationConfig, sc experiments.SweepConfig, bc experiments.BatchStudyConfig) error {
	res, err := s.runQuality(q)
	if err != nil {
		return err
	}
	for _, spec := range []figSpec{
		{experiments.MetricStart, "Fig. 2 (a)"},
		{experiments.MetricRuntime, "Fig. 2 (b)"},
		{experiments.MetricFinish, "Fig. 3 (a)"},
		{experiments.MetricProcTime, "Fig. 3 (b)"},
		{experiments.MetricCost, "Fig. 4"},
	} {
		res.RenderFigure(s.stdout, spec.metric, spec.label)
	}
	res.RenderSummary(s.stdout)
	if err := s.table1(t); err != nil {
		return err
	}
	if err := s.table2(t); err != nil {
		return err
	}
	if err := s.ablations(a); err != nil {
		return err
	}
	if err := s.taskSweep(sc); err != nil {
		return err
	}
	if err := s.frontier(sc); err != nil {
		return err
	}
	return s.batchStudy(bc)
}
