package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"slotsel/internal/env"
	"slotsel/internal/persist"
	"slotsel/internal/randx"
)

// Slotgen generates an environment snapshot (see cmd/slotgen).
func Slotgen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slotgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodeCount = fs.Int("nodes", 100, "CPU node count")
		horizon   = fs.Float64("horizon", 600, "scheduling interval length")
		seed      = fs.Uint64("seed", 1, "random seed")
		out       = fs.String("o", "", "output file (default stdout)")
		linear    = fs.Bool("linear-pricing", false, "use strictly linear pricing instead of the market-premium model")
		slotsOnly = fs.Bool("slots-only", false, "emit a bare slot list (no horizon) instead of a full environment snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := env.DefaultConfig().WithNodeCount(*nodeCount).WithHorizon(*horizon)
	if *linear {
		cfg.Nodes.Pricing.Degree = 1
	}
	e := env.Generate(cfg, randx.New(*seed))

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "slotgen:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	write := func() error { return persist.WriteEnvironment(w, e) }
	if *slotsOnly {
		write = func() error { return persist.WriteSlotList(w, e.Slots) }
	}
	if err := write(); err != nil {
		fmt.Fprintln(stderr, "slotgen:", err)
		return 1
	}
	fmt.Fprintf(stderr, "slotgen: %d nodes, %d slots, %.0f%% initially loaded\n",
		len(e.Nodes), len(e.Slots), 100*e.Utilization())
	return 0
}
