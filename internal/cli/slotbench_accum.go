package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"slotsel/internal/benchgate"
)

// trajPoint is one benchmark's summary inside a trajectory entry.
type trajPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// trajEntry is one accumulated run: a labeled column of the dashboard.
type trajEntry struct {
	Label   string      `json:"label"`
	Time    string      `json:"time,omitempty"`
	Results []trajPoint `json:"results"`
}

// dataJSHeader precedes the JSON payload so the file loads from a plain
// <script src="data.js"> tag — a file:// dashboard has no fetch() under
// most browsers' CORS rules, a global assignment always works.
const dataJSHeader = `// Machine-generated benchmark trajectory; do not edit by hand.
// Append a run:  go run ./cmd/slotbench -accum results/data.js -label NAME bench.txt
// Render:        open results/dashboard.html
window.SLOTBENCH_TRAJECTORY = `

// benchName renders a result's canonical benchmark identity — the single
// name shared by -benchfmt lines, BENCH_*.json rows and trajectory
// points, so every output mode of the harness joins on it.
func benchName(r benchResult) string {
	switch r.Bench {
	case "find":
		return fmt.Sprintf("BenchmarkFind/alg=%s/kernel=%s/nodes=%d/tasks=%d", r.Alg, r.Kernel, r.Nodes, r.Tasks)
	case "csa":
		return fmt.Sprintf("BenchmarkCSA/nodes=%d/tasks=%d", r.Nodes, r.Tasks)
	case "batch":
		return fmt.Sprintf("BenchmarkBatch/nodes=%d/jobs=%d", r.Nodes, r.Jobs)
	case "churn":
		return fmt.Sprintf("BenchmarkChurn/shards=%d/workers=%d/nodes=%d", r.Shards, r.Workers, r.Nodes)
	}
	return "Benchmark" + r.Bench
}

// benchAccum is the -accum mode: turn one run — a -benchfmt text file, a
// BENCH_*.json snapshot, or a fresh grid run when no input is named —
// into a labeled trajectory entry and merge it into the data.js series.
// An entry with the same label is replaced (re-running a PR's CI must not
// duplicate its column); new labels append in arrival order.
func benchAccum(stdout, stderr io.Writer, dataPath, label string, inputs []string, seed uint64, iters int, nodeCounts, taskCounts []int) int {
	if len(inputs) > 1 {
		fmt.Fprintln(stderr, "slotbench: -accum takes at most one input file")
		return 2
	}
	var (
		points []trajPoint
		err    error
	)
	if len(inputs) == 1 {
		points, label, err = accumInput(inputs[0], label)
	} else {
		if label == "" {
			label = "local"
		}
		points, err = accumGridRun(seed, iters, nodeCounts, taskCounts)
	}
	if err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Name < points[j].Name })

	entries, err := loadTrajectory(dataPath)
	if err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	entry := trajEntry{Label: label, Time: time.Now().UTC().Format(time.RFC3339), Results: points}
	replaced := false
	for i := range entries {
		if entries[i].Label == label {
			entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, entry)
	}
	if err := writeTrajectory(dataPath, entries); err != nil {
		fmt.Fprintln(stderr, "slotbench:", err)
		return 1
	}
	verb := "appended"
	if replaced {
		verb = "replaced"
	}
	fmt.Fprintf(stdout, "slotbench: %s trajectory entry %q (%d benchmarks) in %s (%d entries)\n",
		verb, label, len(points), dataPath, len(entries))
	return 0
}

// accumInput summarizes one recorded run. A .json input is a BENCH_*.json
// snapshot; anything else is parsed as Go benchmark text, taking the
// median of each benchmark's repetitions.
func accumInput(path, label string) ([]trajPoint, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		var file benchFile
		if err := json.NewDecoder(f).Decode(&file); err != nil {
			return nil, "", fmt.Errorf("%s: %w", path, err)
		}
		if label == "" {
			label = fmt.Sprintf("issue-%d", file.Issue)
		}
		var points []trajPoint
		for _, r := range file.Results {
			points = append(points, trajPoint{
				Name:        benchName(r),
				NsPerOp:     float64(r.NsPerOp),
				BytesPerOp:  r.BytesPerOp,
				AllocsPerOp: r.AllocsPerOp,
			})
		}
		return points, label, nil
	}
	set, err := benchgate.ParseSet(f)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if label == "" {
		label = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	var points []trajPoint
	for name, units := range set.Benchmarks {
		points = append(points, trajPoint{
			Name:        name,
			NsPerOp:     sampleMedian(units["ns/op"]),
			BytesPerOp:  sampleMedian(units["B/op"]),
			AllocsPerOp: sampleMedian(units["allocs/op"]),
		})
	}
	return points, label, nil
}

// accumGridRun measures the grid fresh, exactly like the JSON output mode.
func accumGridRun(seed uint64, iters int, nodeCounts, taskCounts []int) ([]trajPoint, error) {
	ops, err := benchOpsGrid(seed, nodeCounts, taskCounts)
	if err != nil {
		return nil, err
	}
	var points []trajPoint
	for _, bo := range ops {
		times := benchTimes(iters, bo.op)
		allocs, bytes := benchAlloc(bo.allocRounds, bo.op)
		points = append(points, trajPoint{
			Name:        bo.name,
			NsPerOp:     float64(minInt64(times)),
			BytesPerOp:  bytes,
			AllocsPerOp: allocs,
		})
	}
	return points, nil
}

// loadTrajectory reads data.js back into entries; a missing file is an
// empty trajectory.
func loadTrajectory(path string) ([]trajEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	i := bytes.IndexByte(raw, '=')
	if i < 0 {
		return nil, fmt.Errorf("%s: not a trajectory file (no assignment)", path)
	}
	payload := strings.TrimSpace(string(raw[i+1:]))
	payload = strings.TrimSuffix(payload, ";")
	var entries []trajEntry
	if err := json.Unmarshal([]byte(payload), &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

func writeTrajectory(path string, entries []trajEntry) error {
	var b strings.Builder
	b.WriteString(dataJSHeader)
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return err
	}
	s := strings.TrimRight(b.String(), "\n") + ";\n"
	return os.WriteFile(path, []byte(s), 0o644)
}

// sampleMedian is the midpoint summary of one benchmark's repetitions.
func sampleMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
