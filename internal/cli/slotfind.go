package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"slotsel"
	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/parallel"
	"slotsel/internal/persist"
	"slotsel/internal/slots"
	"slotsel/internal/tablefmt"
)

// Slotfind selects a window on an environment snapshot (see cmd/slotfind).
func Slotfind(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slotfind", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		envPath  = fs.String("env", "", "environment snapshot (from slotgen); required")
		reqPath  = fs.String("request", "", "resource request JSON file (overrides -tasks/-volume/... flags)")
		algName  = fs.String("alg", "amp", "algorithm, or a comma-separated list to compare several: amp|minfinish|mincost|minruntime|minproctime|minenergy|firstfit")
		tasks    = fs.Int("tasks", 5, "parallel slots required")
		volume   = fs.Float64("volume", 150, "task volume")
		budget   = fs.Float64("budget", 1500, "total cost limit (0 = unconstrained)")
		deadline = fs.Float64("deadline", 0, "finish deadline (0 = none)")
		minPerf  = fs.Float64("min-perf", 0, "minimum node performance (0 = none)")
		alts     = fs.Bool("alternatives", false, "run CSA and list all disjoint alternatives instead")
		asJSON   = fs.Bool("json", false, "emit the window as JSON")
		gantt    = fs.Bool("gantt", false, "draw the selected nodes' timelines (published slots '=', allocation '#')")
		seed     = fs.Uint64("seed", 1, "seed for the randomized MinProcTime algorithm")
		workers  = fs.Int("workers", 1, "worker-pool size when -alg lists several algorithms (0 = GOMAXPROCS; results are identical for any value)")
	)
	obsF := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *envPath == "" {
		fmt.Fprintln(stderr, "slotfind: -env is required")
		fs.Usage()
		return 2
	}
	if *workers < 0 {
		fmt.Fprintln(stderr, "slotfind: -workers must be >= 0")
		return 2
	}

	f, err := os.Open(*envPath)
	if err != nil {
		fmt.Fprintln(stderr, "slotfind:", err)
		return 1
	}
	e, err := persist.ReadEnvironment(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "slotfind:", err)
		return 1
	}

	req := job.Request{
		TaskCount: *tasks, Volume: *volume, MaxCost: *budget,
		Deadline: *deadline, MinPerf: *minPerf,
	}
	if *reqPath != "" {
		rf, err := os.Open(*reqPath)
		if err != nil {
			fmt.Fprintln(stderr, "slotfind:", err)
			return 1
		}
		loaded, err := persist.ReadRequest(rf)
		rf.Close()
		if err != nil {
			fmt.Fprintln(stderr, "slotfind:", err)
			return 1
		}
		req = *loaded
	}

	stats := &obs.Stats{}
	col, err := obsF.setup("slotfind", stats, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "slotfind:", err)
		return 1
	}
	// finish flushes the observability outputs on every exit path past this
	// point: the stats block after the tool's normal output, then the trace
	// file. A flush failure turns a successful run into exit 1.
	finish := func(code int) int {
		if obsF.stats {
			fmt.Fprintln(stdout)
			stats.Snapshot().WriteText(stdout)
		}
		if err := obsF.finish(); err != nil {
			fmt.Fprintln(stderr, "slotfind:", err)
			if code == 0 {
				code = 1
			}
		}
		return code
	}

	if *alts {
		found, err := csa.SearchObserved(e.Slots, &req, csa.Options{MinSlotLength: 10}, col)
		if errors.Is(err, core.ErrNoWindow) {
			fmt.Fprintln(stdout, "no feasible window")
			return finish(1)
		}
		if err != nil {
			fmt.Fprintln(stderr, "slotfind:", err)
			return finish(1)
		}
		fmt.Fprintf(stdout, "%d disjoint alternatives:\n", len(found))
		for i, w := range found {
			fmt.Fprintf(stdout, "  #%-3d start=%8.2f finish=%8.2f runtime=%7.2f cpu=%8.2f cost=%9.2f\n",
				i+1, w.Start, w.Finish(), w.Runtime, w.ProcTime, w.Cost)
		}
		return finish(0)
	}

	names := strings.Split(*algName, ",")
	if len(names) > 1 {
		return finish(findMany(e.Slots, &req, names, *seed, *workers, col, stdout, stderr))
	}

	alg, err := slotsel.AlgorithmByName(*algName, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "slotfind: %v\n", err)
		return 2
	}

	w, err := core.FindObserved(alg, e.Slots, &req, col)
	if errors.Is(err, core.ErrNoWindow) {
		fmt.Fprintln(stdout, "no feasible window")
		return finish(1)
	}
	if err != nil {
		fmt.Fprintln(stderr, "slotfind:", err)
		return finish(1)
	}
	if *asJSON {
		if err := persist.WriteWindow(stdout, w); err != nil {
			fmt.Fprintln(stderr, "slotfind:", err)
			return finish(1)
		}
		return finish(0)
	}
	fmt.Fprintf(stdout, "%s: start=%.2f finish=%.2f runtime=%.2f cpu=%.2f cost=%.2f\n",
		alg.Name(), w.Start, w.Finish(), w.Runtime, w.ProcTime, w.Cost)
	w.SortPlacementsByNode()
	for _, p := range w.Placements {
		n := p.Node()
		fmt.Fprintf(stdout, "  node %4d perf %4.1f price %7.3f  [%8.2f, %8.2f)  cost %8.2f\n",
			n.ID, n.Perf, n.Price, p.Start, p.Finish(), p.Cost)
	}
	if *gantt {
		chart := tablefmt.NewGantt(e.Horizon)
		selected := make(map[int]bool, len(w.Placements))
		for _, p := range w.Placements {
			selected[p.Node().ID] = true
		}
		for _, s := range e.Slots {
			if selected[s.Node.ID] {
				chart.Span(s.Node.ID, s.Start, s.End, '=')
			}
		}
		for _, p := range w.Placements {
			used := p.Used()
			chart.Span(p.Node().ID, used.Start, used.End, '#')
		}
		fmt.Fprintln(stdout)
		chart.Render(stdout)
	}
	return finish(0)
}

// findMany runs several algorithms concurrently over the shared slot list
// (parallel.FindAllObserved — results and counters are identical to running
// them one by one) and
// prints a comparison table. Exit code 0 if at least one algorithm found a
// window, 1 if none did, 2 on a bad algorithm name.
func findMany(list slots.List, req *job.Request, names []string, seed uint64, workers int, col obs.Collector, stdout, stderr io.Writer) int {
	algs := make([]core.Algorithm, 0, len(names))
	for _, name := range names {
		alg, err := slotsel.AlgorithmByName(strings.TrimSpace(name), seed)
		if err != nil {
			fmt.Fprintf(stderr, "slotfind: %v\n", err)
			return 2
		}
		algs = append(algs, alg)
	}
	found := 0
	t := tablefmt.New("algorithm", "start", "finish", "runtime", "cpu", "cost")
	for _, res := range parallel.FindAllObserved(list, req, algs, workers, col) {
		if errors.Is(res.Err, core.ErrNoWindow) {
			t.AddRow(res.Algorithm.Name(), "-", "-", "-", "-", "no window")
			continue
		}
		if res.Err != nil {
			fmt.Fprintf(stderr, "slotfind: %s: %v\n", res.Algorithm.Name(), res.Err)
			return 1
		}
		found++
		w := res.Window
		t.AddRow(res.Algorithm.Name(),
			fmt.Sprintf("%.2f", w.Start), fmt.Sprintf("%.2f", w.Finish()),
			fmt.Sprintf("%.2f", w.Runtime), fmt.Sprintf("%.2f", w.ProcTime),
			fmt.Sprintf("%.2f", w.Cost))
	}
	t.Render(stdout)
	if found == 0 {
		fmt.Fprintln(stdout, "no feasible window")
		return 1
	}
	return 0
}
