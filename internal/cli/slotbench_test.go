package cli

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slotsel/internal/benchgate"
)

func runSlotbench(t *testing.T, args ...string) (int, string, string) {
	return run(t, func(a []string, o, e *bytes.Buffer) int { return Slotbench(a, o, e) }, args...)
}

// TestSlotbenchBenchfmt runs a tiny grid in -benchfmt mode and checks the
// output is benchgate-parseable with the expected shape: one line per
// repetition, ns/op + B/op + allocs/op on each, and a zero allocs/op
// column for every incremental find kernel (the zero-alloc contract,
// visible straight from the emitted text).
func TestSlotbenchBenchfmt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	code, _, stderr := runSlotbench(t, "-benchfmt", "-iters", "3", "-nodes", "16", "-tasks", "2", "-o", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	set, err := benchgate.ParseSet(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	// 9 algorithms x 2 kernels + cached/uncached service find + 1 CSA +
	// 1 batch + churn at shards {1,2,4} x workers {1,4} = 28 benchmarks.
	if len(set.Benchmarks) != 28 {
		t.Errorf("parsed %d benchmarks, want 28", len(set.Benchmarks))
	}
	sawCached := false
	for name, units := range set.Benchmarks {
		for _, unit := range []string{"ns/op", "B/op", "allocs/op"} {
			if got := len(units[unit]); got != 3 {
				t.Errorf("%s: %d %s samples, want 3 (one per -iters rep)", name, got, unit)
			}
		}
		if strings.Contains(name, "kernel=incremental") {
			for _, a := range units["allocs/op"] {
				if a != 0 {
					t.Errorf("%s: allocs/op = %v, want 0 (zero-alloc contract)", name, a)
				}
			}
		}
		// The cached service row measures steady-state hits (the instance
		// never churns mid-benchmark), and the hit path is alloc-free.
		if strings.Contains(name, "kernel=cached") {
			sawCached = true
			for _, a := range units["allocs/op"] {
				if a != 0 {
					t.Errorf("%s: allocs/op = %v, want 0 (cache-hit zero-alloc contract)", name, a)
				}
			}
		}
	}
	if !sawCached {
		t.Error("no kernel=cached benchmark in the grid")
	}
}

// TestSlotbenchGate drives the -gate mode end to end on synthetic files:
// a clean pass, a flagged regression, and the usage errors.
func TestSlotbenchGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, bump float64) string {
		var b strings.Builder
		for i := 0; i < 6; i++ {
			scale := 1.0
			if i == 0 {
				scale = bump
			}
			for _, v := range []float64{100, 101, 102, 99, 98} {
				fmt.Fprintf(&b, "BenchmarkG%d\t1\t%g ns/op\t0 B/op\t0.00 allocs/op\n", i, v*scale)
			}
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.txt", 1)
	same := write("same.txt", 1)
	worse := write("worse.txt", 1.5)

	if code, stdout, stderr := runSlotbench(t, "-gate", base, same); code != 0 {
		t.Errorf("clean gate: exit %d\nstdout %s\nstderr %s", code, stdout, stderr)
	}
	code, stdout, stderr := runSlotbench(t, "-gate", base, worse)
	if code != 1 {
		t.Errorf("regressed gate: exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "REGRESSION BenchmarkG0") || !strings.Contains(stderr, "regressions past +10%") {
		t.Errorf("gate did not report the regression:\nstdout %s\nstderr %s", stdout, stderr)
	}
	// A looser threshold lets the same delta through.
	if code, _, stderr := runSlotbench(t, "-regress", "60", "-gate", base, worse); code != 0 {
		t.Errorf("-regress 60: exit %d, stderr %s", code, stderr)
	}

	if code, _, _ := runSlotbench(t, "-gate", base); code != 2 {
		t.Errorf("-gate with one file: exit %d, want 2", code)
	}
	if code, _, stderr := runSlotbench(t, "-gate", base, filepath.Join(dir, "missing.txt")); code != 1 || stderr == "" {
		t.Errorf("-gate with missing file: exit %d, stderr %q", code, stderr)
	}
}

// TestSlotbenchGateRatchet drives -gate -ratchet end to end: an improved
// run replaces the baseline file byte-for-byte, while unchanged and
// regressed runs leave it untouched.
func TestSlotbenchGateRatchet(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, bump float64) string {
		var b strings.Builder
		for i := 0; i < 6; i++ {
			scale := 1.0
			if i == 0 {
				scale = bump
			}
			for _, v := range []float64{100, 101, 102, 99, 98} {
				fmt.Fprintf(&b, "BenchmarkG%d\t1\t%g ns/op\t0 B/op\t0.00 allocs/op\n", i, v*scale)
			}
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	baseline := write("baseline.txt", 1)
	baseBytes, _ := os.ReadFile(baseline)

	// Unchanged run: gate passes, baseline kept.
	same := write("same.txt", 1)
	code, stdout, stderr := runSlotbench(t, "-ratchet", baseline, "-gate", baseline, same)
	if code != 0 {
		t.Fatalf("unchanged gate: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, "kept") {
		t.Errorf("unchanged run did not report the baseline as kept:\n%s", stdout)
	}
	if got, _ := os.ReadFile(baseline); !bytes.Equal(got, baseBytes) {
		t.Error("unchanged run rewrote the baseline")
	}

	// Regressed run: gate fails, baseline kept.
	worse := write("worse.txt", 1.5)
	if code, _, _ := runSlotbench(t, "-ratchet", baseline, "-gate", baseline, worse); code != 1 {
		t.Errorf("regressed gate with -ratchet: exit %d, want 1", code)
	}
	if got, _ := os.ReadFile(baseline); !bytes.Equal(got, baseBytes) {
		t.Error("regressed run rewrote the baseline")
	}

	// Improved run: gate passes and the baseline becomes the current file.
	better := write("better.txt", 0.5)
	betterBytes, _ := os.ReadFile(better)
	code, stdout, stderr = runSlotbench(t, "-ratchet", baseline, "-gate", baseline, better)
	if code != 0 {
		t.Fatalf("improved gate: exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, "ratcheted") {
		t.Errorf("improved run did not report the ratchet:\n%s", stdout)
	}
	if got, _ := os.ReadFile(baseline); !bytes.Equal(got, betterBytes) {
		t.Error("baseline was not replaced by the improved run")
	}

	// Second pass against the new baseline: the same run is now a no-op.
	code, stdout, _ = runSlotbench(t, "-ratchet", baseline, "-gate", baseline, better)
	if code != 0 || !strings.Contains(stdout, "kept") {
		t.Errorf("re-gate after ratchet: exit %d, stdout:\n%s", code, stdout)
	}
}
