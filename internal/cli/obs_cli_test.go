package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// genEnv writes a small environment snapshot and returns its path.
func genEnv(t *testing.T, nodes int) string {
	t.Helper()
	envPath := filepath.Join(t.TempDir(), "env.json")
	if code, _, stderr := runSlotgen(t, "-nodes", fmt.Sprint(nodes), "-seed", "3", "-o", envPath); code != 0 {
		t.Fatalf("slotgen exit %d: %s", code, stderr)
	}
	return envPath
}

func TestSlotfindStatsOutput(t *testing.T) {
	envPath := genEnv(t, 40)

	code, stdout, stderr := runSlotfind(t, "-env", envPath, "-alg", "mincost", "-stats")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"MinCost:", // the normal window output still comes first
		"scan counters",
		"scans:            1",
		"slots examined:",
		"selection",
		"MinCost",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stats output missing %q:\n%s", want, stdout)
		}
	}

	// Multi-algorithm comparison counts one scan per algorithm.
	code, stdout, stderr = runSlotfind(t, "-env", envPath,
		"-alg", "amp,mincost,minruntime", "-workers", "2", "-stats")
	if code != 0 {
		t.Fatalf("multi-alg exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "scans:            3") {
		t.Errorf("expected 3 scans in stats:\n%s", stdout)
	}

	// The CSA path reports one scan per accepted alternative plus the final
	// miss, and stats still print on the "no window" exit path.
	code, stdout, _ = runSlotfind(t, "-env", envPath, "-alternatives", "-stats")
	if code != 0 {
		t.Fatalf("alternatives exit %d", code)
	}
	if !strings.Contains(stdout, "scan counters") {
		t.Errorf("alternatives stats missing:\n%s", stdout)
	}
	code, stdout, _ = runSlotfind(t, "-env", envPath, "-tasks", "500", "-stats")
	if code != 1 {
		t.Fatalf("infeasible exit %d, want 1", code)
	}
	if !strings.Contains(stdout, "no feasible window") || !strings.Contains(stdout, "scan counters") {
		t.Errorf("infeasible run should still print stats:\n%s", stdout)
	}
}

// chromeEvent mirrors the subset of the trace_event schema the tests check.
type chromeEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// readChromeTrace parses a trace file and fails the test on malformed JSON.
func readChromeTrace(t *testing.T, path string) []chromeEvent {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file is not a JSON event array: %v\n%s", err, data)
	}
	return events
}

func TestSlotfindTraceOutput(t *testing.T) {
	envPath := genEnv(t, 40)
	tracePath := filepath.Join(t.TempDir(), "trace.json")

	code, _, stderr := runSlotfind(t, "-env", envPath, "-alg", "amp", "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	events := readChromeTrace(t, tracePath)
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	var sawScan, sawSelect bool
	for _, ev := range events {
		if ev.Phase != "X" {
			t.Errorf("event %q: phase %q, want complete event \"X\"", ev.Name, ev.Phase)
		}
		if ev.PID != 1 || ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q has implausible fields: %+v", ev.Name, ev)
		}
		switch ev.Cat {
		case "scan":
			sawScan = true
		case "select":
			sawSelect = true
		}
	}
	if !sawScan || !sawSelect {
		t.Errorf("trace missing scan/select spans (scan=%v select=%v)", sawScan, sawSelect)
	}
}

func TestSlotsimStatsAndTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	code, stdout, stderr := runSlotsim(t,
		"-cycles", "4", "-nodes", "25", "-stats", "-trace", tracePath, "batch")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"batch study:", // the experiment's own output is unchanged
		"observability:",
		"scan_slots",
		"select_ms_",
		"batch_alternatives",
		"batch_spec_runs",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("slotsim -stats output missing %q:\n%s", want, stdout)
		}
	}
	events := readChromeTrace(t, tracePath)
	if len(events) == 0 {
		t.Fatal("slotsim trace has no events")
	}
	var sawCSA bool
	for _, ev := range events {
		if ev.Cat == "csa" {
			sawCSA = true
		}
	}
	if !sawCSA {
		t.Error("slotsim batch trace has no csa spans")
	}
}

func TestSlotsimQualityStats(t *testing.T) {
	code, stdout, stderr := runSlotsim(t, "-cycles", "6", "-nodes", "25", "-stats", "fig4")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	// The quality study instruments every algorithm of the figure.
	for _, want := range []string{"observability:", "select_ms_AMP", "select_ms_MinCost"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("quality stats missing %q:\n%s", want, stdout)
		}
	}
	// Batch rows must be absent: no batch experiment ran.
	if strings.Contains(stdout, "batch_alternatives") {
		t.Errorf("quality run reports batch rows:\n%s", stdout)
	}
}

func TestSlotfindPprof(t *testing.T) {
	envPath := genEnv(t, 40)
	code, _, stderr := runSlotfind(t, "-env", envPath, "-alg", "amp", "-pprof", "localhost:0")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "pprof listening on http://") {
		t.Errorf("pprof address not announced: %q", stderr)
	}
	// A bad address is a runtime error, not a usage error.
	if code, _, _ := runSlotfind(t, "-env", envPath, "-pprof", "256.0.0.1:bogus"); code != 1 {
		t.Errorf("bad pprof address: exit %d, want 1", code)
	}
}

// TestSlotfindErrorPaths pins the exit codes and diagnostics of the
// documented failure modes: usage errors exit 2, runtime errors exit 1.
func TestSlotfindErrorPaths(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	envPath := genEnv(t, 40)

	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr
	}{
		{"unknown algorithm", []string{"-env", envPath, "-alg", "bogus"}, 2, "unknown algorithm"},
		{"unknown algorithm in list", []string{"-env", envPath, "-alg", "amp,bogus"}, 2, "unknown algorithm"},
		{"negative workers", []string{"-env", envPath, "-workers", "-3"}, 2, "-workers must be >= 0"},
		{"missing env flag", nil, 2, "-env is required"},
		{"unreadable env file", []string{"-env", filepath.Join(dir, "absent.json")}, 1, "no such file"},
		{"corrupt env file", []string{"-env", corrupt}, 1, "slotfind:"},
		{"env path is a directory", []string{"-env", dir}, 1, "slotfind:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runSlotfind(t, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit %d, want %d (stderr %q)", code, tc.wantCode, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.wantErr)
			}
		})
	}
}
