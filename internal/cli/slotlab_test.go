package cli

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlotlabList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Slotlab([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("slotlab -list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"flash-crowd", "hot-spot", "churn", "deadline-farm", "budget-starved", "diurnal"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing scenario %q", name)
		}
	}
}

func TestSlotlabUnknownScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Slotlab([]string{"-scenarios", "no-such"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scenario exited %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown scenario") {
		t.Errorf("stderr = %q, want unknown-scenario error", errb.String())
	}
}

// TestSlotlabRun drives one fast scenario end to end through the CLI and
// checks the exit status, summary output and written report.
func TestSlotlabRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errb bytes.Buffer
	code := Slotlab([]string{
		"-scenarios", "budget-starved",
		"-duration", "300ms",
		"-seed", "7",
		"-o", path,
		"-q",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("slotlab exited %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "budget-starved") || !strings.Contains(out.String(), "PASS") {
		t.Errorf("summary missing scenario verdict: %q", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Schema        string `json:"schema"`
		SchemaVersion int    `json:"schema_version"`
		Seed          uint64 `json:"seed"`
		Pass          bool   `json:"pass"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "slotlab-report" || rep.SchemaVersion < 1 {
		t.Errorf("report schema = %q v%d", rep.Schema, rep.SchemaVersion)
	}
	if rep.Seed != 7 || !rep.Pass {
		t.Errorf("report seed=%d pass=%v, want seed=7 pass=true", rep.Seed, rep.Pass)
	}
}
