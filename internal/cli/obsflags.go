package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"slotsel/internal/obs"
)

// obsFlags bundles the observability surface shared by slotfind and slotsim:
// -stats, -trace and -pprof. Each tool supplies its own stats sink (slotfind
// prints raw counters, slotsim aggregates distributions); the trace sink and
// the pprof server are common.
type obsFlags struct {
	stats bool
	trace string
	pprof string

	tr   *obs.Trace
	stop func() error
}

// registerObsFlags declares the three observability flags on fs.
func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.BoolVar(&o.stats, "stats", false, "print instrumentation counters after the run")
	fs.StringVar(&o.trace, "trace", "", "write a Chrome trace_event JSON timeline to this `file` (load in chrome://tracing or ui.perfetto.dev)")
	fs.StringVar(&o.pprof, "pprof", "", "serve net/http/pprof on this `address` (e.g. localhost:0) while the tool runs")
	return o
}

// setup starts the pprof server when requested and combines the tool's stats
// sink with the trace sink. It returns nil when no sink is enabled, so the
// hot paths skip instrumentation entirely.
func (o *obsFlags) setup(name string, statsSink obs.Collector, stderr io.Writer) (obs.Collector, error) {
	var cols []obs.Collector
	if o.stats {
		cols = append(cols, statsSink)
	}
	if o.trace != "" {
		o.tr = obs.NewTrace(obs.DefaultTraceCapacity)
		cols = append(cols, o.tr)
	}
	if o.pprof != "" {
		addr, stop, err := obs.ServePprof(o.pprof)
		if err != nil {
			return nil, err
		}
		o.stop = stop
		fmt.Fprintf(stderr, "%s: pprof listening on http://%s/debug/pprof/\n", name, addr)
	}
	return obs.Combine(cols...), nil
}

// finish writes the trace file when requested and stops the pprof server.
// The caller renders its own stats sink.
func (o *obsFlags) finish() error {
	if o.stop != nil {
		defer o.stop()
	}
	if o.tr == nil {
		return nil
	}
	f, err := os.Create(o.trace)
	if err != nil {
		return err
	}
	if err := o.tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
