package cli

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"slotsel/internal/telemetry"
)

// syncBuf is a bytes.Buffer safe to poll while the server goroutine is
// still writing to it.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlotserveTelemetry boots the CLI with -log-format=json and -pprof and
// walks the whole telemetry surface: the X-Trace-Id header, the /metricsz
// exposition (server families AND kernel families via the obs seam), the
// JSON request log correlation, and the live pprof endpoint.
func TestSlotserveTelemetry(t *testing.T) {
	file := filepath.Join(t.TempDir(), "env.json")
	if code, _, stderr := runSlotgen(t, "-nodes", "10", "-seed", "7", "-o", file); code != 0 {
		t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
	}

	addrc := make(chan string, 1)
	var shutdown func()
	slotserveTestHook = func(addr string, stop func()) {
		shutdown = stop
		addrc <- addr
	}
	t.Cleanup(func() { slotserveTestHook = nil })

	var out, errBuf syncBuf
	done := make(chan int, 1)
	go func() {
		done <- Slotserve([]string{
			"-addr", "localhost:0", "-slots", file,
			"-log-format", "json", "-pprof", "localhost:0",
		}, &out, &errBuf)
	}()
	base := "http://" + <-addrc

	resp, err := http.Post(base+"/v1/find", "application/json",
		strings.NewReader(`{"request":{"tasks":2,"volume":20,"max_cost":100000},"alg":"mincost"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("find: status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if len(traceID) != 16 {
		t.Fatalf("X-Trace-Id %q: want 16 hex chars", traceID)
	}

	// /metricsz: well-formed, carries the request counter AND the kernel
	// scan counters (proof the telemetry adapter joined the obs seam).
	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	got, perr := telemetry.ParseExposition(resp.Body)
	resp.Body.Close()
	if perr != nil {
		t.Fatalf("/metricsz malformed: %v", perr)
	}
	if n := got[`slotserve_http_requests_total{path="/v1/find",status="200"}`]; n != 1 {
		t.Errorf("find counter: got %g want 1", n)
	}
	if got["slotsel_scans_total"] < 1 {
		t.Errorf("kernel scans_total: got %g, want >= 1 (collector not combined into obs seam?)", got["slotsel_scans_total"])
	}
	// The select counter is labeled with the algorithm's canonical name
	// (core.MinCost.Name()), not the wire-format alias from the request.
	if got[`slotsel_select_total{alg="MinCost",found="true"}`] != 1 {
		t.Errorf("select counter missing: %g", got[`slotsel_select_total{alg="MinCost",found="true"}`])
	}

	// -pprof: the announced endpoint must actually serve profiles.
	deadline := time.Now().Add(5 * time.Second)
	var pprofAddr string
	for pprofAddr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("pprof address never announced: %q", errBuf.String())
		}
		for _, line := range strings.Split(errBuf.String(), "\n") {
			if i := strings.Index(line, "pprof listening on http://"); i >= 0 {
				pprofAddr = strings.TrimSuffix(strings.TrimSpace(line[i+len("pprof listening on "):]), "/debug/pprof/")
			}
		}
		if pprofAddr == "" {
			time.Sleep(10 * time.Millisecond)
		}
	}
	resp, err = http.Get(pprofAddr + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatalf("pprof fetch: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "heap profile") {
		t.Errorf("pprof heap: status %d, body %.80q", resp.StatusCode, body)
	}

	shutdown()
	if code := <-done; code != 0 {
		t.Fatalf("slotserve exit %d, stderr %q", code, errBuf.String())
	}

	// The JSON request log on stdout carries the same trace ID the client
	// saw, and names the algorithm.
	foundLine := false
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var entry struct {
			TraceID string `json:"trace_id"`
			Path    string `json:"path"`
			Status  int    `json:"status"`
			Alg     string `json:"alg"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("request log line is not valid JSON: %v\n%s", err, line)
		}
		if entry.TraceID == traceID {
			foundLine = true
			if entry.Path != "/v1/find" || entry.Status != 200 || entry.Alg != "mincost" {
				t.Errorf("log line for %s: %+v", traceID, entry)
			}
		}
	}
	if !foundLine {
		t.Errorf("no request log line carries trace ID %s:\n%s", traceID, out.String())
	}
}

func TestSlotserveLogFormatValidation(t *testing.T) {
	file := filepath.Join(t.TempDir(), "env.json")
	if code, _, stderr := runSlotgen(t, "-nodes", "5", "-seed", "3", "-o", file); code != 0 {
		t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr := runSlotserve(t, "-slots", file, "-log-format", "yaml")
	if code != 2 || !strings.Contains(stderr, "unknown -log-format") {
		t.Errorf("bad -log-format: exit %d, stderr %q; want 2 with diagnostics", code, stderr)
	}
}
