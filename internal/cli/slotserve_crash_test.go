package cli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"slotsel/internal/inventory"
	"slotsel/internal/slots"
	"slotsel/internal/wal"
)

// TestMain doubles the test binary as a slotserve executable: the SIGKILL
// e2e needs a real separate process to kill (an in-process server cannot
// be killed without taking the test down with it). With SLOTSERVE_REEXEC
// set, the binary runs Slotserve with the JSON-encoded args and exits.
func TestMain(m *testing.M) {
	if os.Getenv("SLOTSERVE_REEXEC") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("SLOTSERVE_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "slotserve reexec: bad SLOTSERVE_ARGS:", err)
			os.Exit(2)
		}
		os.Exit(Slotserve(args, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// serveProc is a slotserve child process started via re-exec.
type serveProc struct {
	cmd    *exec.Cmd
	addr   string
	stderr *syncBuffer
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServeProc launches the test binary as slotserve and waits for its
// "listening on" line to learn the bound address.
func startServeProc(t *testing.T, args ...string) *serveProc {
	t.Helper()
	raw, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SLOTSERVE_REEXEC=1", "SLOTSERVE_ARGS="+string(raw))
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, stderr: &syncBuffer{}}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(p.stderr, line)
			if _, rest, ok := strings.Cut(line, "listening on http://"); ok {
				select {
				case addrc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrc:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("slotserve child never reported its address; stderr:\n%s", p.stderr)
	}
	return p
}

// TestSlotserveKillDuringChurn is the durability e2e: a real slotserve
// process with -data-dir takes concurrent reserve/commit/release traffic
// and is SIGKILLed mid-churn. Every commit the server acknowledged before
// the kill must be present in the recovered state, with zero overlapping
// allocations — and a second slotserve must boot from the directory and
// serve again.
func TestSlotserveKillDuringChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	scratch := t.TempDir()
	slotFile := filepath.Join(scratch, "env.json")
	if code, _, stderr := runSlotgen(t, "-nodes", "12", "-seed", "11", "-o", slotFile); code != 0 {
		t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
	}
	walDir := filepath.Join(scratch, "wal")

	p := startServeProc(t,
		"-addr", "127.0.0.1:0", "-slots", slotFile, "-data-dir", walDir,
		"-snapshot-interval", "300ms", "-snapshot-every", "16", "-ttl", "1h")
	base := "http://" + p.addr

	// Churn: concurrent clients reserve and then commit or release. Acked
	// commits — the server answered 200 after the WAL fsync — are the
	// records that must survive the kill.
	var (
		mu    sync.Mutex
		acked []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 2 * time.Second}
	post := func(path, body string) (int, map[string]json.RawMessage, error) {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, out, nil
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"request":{"tasks":%d,"volume":%d,"max_cost":100000}}`, 1+(w+i)%3, 10+(i%7)*5)
				code, out, err := post("/v1/reserve", body)
				if err != nil {
					return // the process died under us: done churning
				}
				if code != http.StatusOK {
					continue // no window / conflict: keep hammering
				}
				var id string
				if err := json.Unmarshal(out["id"], &id); err != nil {
					t.Errorf("worker %d: bad reserve response: %v", w, err)
					return
				}
				path := "/v1/commit"
				if (w+i)%4 == 3 {
					path = "/v1/release"
				}
				code, _, err = post(path, fmt.Sprintf(`{"id":%q}`, id))
				if err != nil {
					return
				}
				if path == "/v1/commit" && code == http.StatusOK {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				}
			}
		}(w)
	}

	// Kill mid-churn once enough commits are acknowledged, with workers
	// still in flight — some requests die between fsync and response,
	// which is exactly the window the WAL contract covers.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d commits acked in 30s; stderr:\n%s", n, p.stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
	close(stop)
	wg.Wait()

	// Recover the directory in-process and check the contract.
	inv, store, res, err := wal.Open(walDir, inventory.Options{}, wal.Options{})
	if err != nil {
		t.Fatalf("recovery after SIGKILL failed: %v", err)
	}
	defer store.Close()
	if inv == nil {
		t.Fatal("recovery found no state at all")
	}
	st := inv.ExportState()
	committed := map[string]bool{}
	for _, c := range st.Committed {
		committed[c.ID] = true
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range acked {
		if !committed[id] {
			t.Errorf("acked commit %s lost in the crash (recovered seq %d, %d events)", id, res.LastSeq, len(res.Events))
		}
	}
	// Zero double-booking: no two recovered allocations may overlap on any
	// node. Holds and commits both occupy capacity, so check them together.
	type span struct {
		id         string
		start, end float64
	}
	occupied := map[int][]span{}
	check := func(id string, m map[int][]slots.Interval) {
		for nid, ivs := range m {
			for _, iv := range ivs {
				for _, prev := range occupied[nid] {
					if prev.id != id && prev.start < iv.End && iv.Start < prev.end {
						t.Errorf("double-booking on node %d: %s [%g,%g) overlaps %s [%g,%g)",
							nid, prev.id, prev.start, prev.end, id, iv.Start, iv.End)
					}
				}
				occupied[nid] = append(occupied[nid], span{id: id, start: iv.Start, end: iv.End})
			}
		}
	}
	for _, c := range st.Committed {
		check(c.ID, c.Window.UsedIntervals())
	}
	for _, h := range st.Holds {
		check(h.ID, h.Window.UsedIntervals())
	}
	if len(st.Committed) < len(acked) {
		t.Errorf("recovered %d commits, but %d were acked", len(st.Committed), len(acked))
	}
	store.Close()

	// And the real boot path: a fresh slotserve on the same directory
	// recovers and serves, then exits cleanly on SIGTERM with a final
	// snapshot on disk.
	p2 := startServeProc(t, "-addr", "127.0.0.1:0", "-data-dir", walDir)
	resp, err := http.Get("http://" + p2.addr + "/v1/statusz")
	if err != nil {
		t.Fatalf("restarted server unreachable: %v", err)
	}
	var status struct {
		Durability struct {
			JournalSeq uint64 `json:"journal_seq"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Durability.JournalSeq < res.LastSeq {
		t.Errorf("restarted server at seq %d, recovery saw %d", status.Durability.JournalSeq, res.LastSeq)
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, p2.stderr)
	}
	snaps, err := filepath.Glob(filepath.Join(walDir, "snap-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Errorf("no snapshot after clean shutdown (%v)", err)
	}
}

// TestSlotserveShardedKillDuringChurn is the sharded durability e2e: a
// slotserve with -shards 4 -data-dir takes concurrent traffic and is
// SIGKILLed mid-churn. Every acked commit must survive into the recovered
// 4-shard layout with zero overlapping allocations, a torn tail in one
// shard's log must not disturb the others, and a second slotserve must
// boot the same directory and serve again.
func TestSlotserveShardedKillDuringChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const nShards = 4
	scratch := t.TempDir()
	slotFile := filepath.Join(scratch, "env.json")
	if code, _, stderr := runSlotgen(t, "-nodes", "12", "-seed", "23", "-o", slotFile); code != 0 {
		t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
	}
	walDir := filepath.Join(scratch, "wal")

	p := startServeProc(t,
		"-addr", "127.0.0.1:0", "-slots", slotFile, "-data-dir", walDir, "-shards", "4",
		"-snapshot-interval", "300ms", "-snapshot-every", "16", "-ttl", "1h")
	base := "http://" + p.addr

	var (
		mu    sync.Mutex
		acked []string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 2 * time.Second}
	post := func(path, body string) (int, map[string]json.RawMessage, error) {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, out, nil
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Multi-task requests span nodes, so a share of the traffic
				// exercises the two-phase cross-shard path under fire.
				body := fmt.Sprintf(`{"request":{"tasks":%d,"volume":%d,"max_cost":100000}}`, 1+(w+i)%3, 10+(i%7)*5)
				code, out, err := post("/v1/reserve", body)
				if err != nil {
					return
				}
				if code != http.StatusOK {
					continue
				}
				var id string
				if err := json.Unmarshal(out["id"], &id); err != nil {
					t.Errorf("worker %d: bad reserve response: %v", w, err)
					return
				}
				path := "/v1/commit"
				if (w+i)%4 == 3 {
					path = "/v1/release"
				}
				code, _, err = post(path, fmt.Sprintf(`{"id":%q}`, id))
				if err != nil {
					return
				}
				if path == "/v1/commit" && code == http.StatusOK {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				}
			}
		}(w)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d commits acked in 30s; stderr:\n%s", n, p.stderr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
	close(stop)
	wg.Wait()

	// Recover the 4-shard layout in-process and check the contract.
	pool, stores, results, err := wal.OpenSharded(walDir, nShards, inventory.Options{}, wal.Options{})
	if err != nil {
		t.Fatalf("sharded recovery after SIGKILL failed: %v", err)
	}
	if pool == nil {
		t.Fatal("sharded recovery found no state at all")
	}
	committed := pool.Committed()
	mu.Lock()
	for _, id := range acked {
		if _, ok := committed[id]; !ok {
			t.Errorf("acked commit %s lost in the crash", id)
		}
	}
	nAcked := len(acked)
	mu.Unlock()
	if len(committed) < nAcked {
		t.Errorf("recovered %d commits, but %d were acked", len(committed), nAcked)
	}

	// Zero double-booking across the whole recovered pool: holds and
	// commits from every shard together.
	type span struct {
		id         string
		start, end float64
	}
	occupied := map[int][]span{}
	check := func(id string, m map[int][]slots.Interval) {
		for nid, ivs := range m {
			for _, iv := range ivs {
				for _, prev := range occupied[nid] {
					if prev.id != id && prev.start < iv.End && iv.Start < prev.end {
						t.Errorf("double-booking on node %d: %s [%g,%g) overlaps %s [%g,%g)",
							nid, prev.id, prev.start, prev.end, id, iv.Start, iv.End)
					}
				}
				occupied[nid] = append(occupied[nid], span{id: id, start: iv.Start, end: iv.End})
			}
		}
	}
	for i := 0; i < nShards; i++ {
		st := pool.Shard(i).ExportState()
		for _, c := range st.Committed {
			check(c.ID, c.Window.UsedIntervals())
		}
		for _, h := range st.Holds {
			check(h.ID, h.Window.UsedIntervals())
		}
	}
	// A torn tail is at most one frame per shard — SIGKILL interrupts at
	// most one in-flight group commit per log — and recovery repairs it
	// without failing any sibling shard (results all non-nil above).
	var replayed int
	for i, res := range results {
		if res == nil {
			t.Fatalf("shard %d: no recovery result", i)
		}
		replayed += len(res.Events)
	}
	if replayed == 0 {
		t.Error("no events recovered across any shard")
	}
	for _, st := range stores {
		st.Close()
	}

	// Real boot path: a fresh slotserve -shards 4 on the same directory
	// recovers every shard, serves, and snapshots each shard on SIGTERM.
	p2 := startServeProc(t, "-addr", "127.0.0.1:0", "-data-dir", walDir, "-shards", "4")
	if !strings.Contains(p2.stderr.String(), "recovered 4 shards") {
		t.Errorf("restarted server did not report sharded recovery; stderr:\n%s", p2.stderr)
	}
	resp, err := http.Get("http://" + p2.addr + "/v1/statusz")
	if err != nil {
		t.Fatalf("restarted server unreachable: %v", err)
	}
	var status struct {
		Inventory  inventory.Status `json:"inventory"`
		Durability struct {
			Shards []struct {
				Shard      int    `json:"shard"`
				JournalSeq uint64 `json:"journal_seq"`
			} `json:"shards"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := len(status.Durability.Shards); got != nShards {
		t.Errorf("statusz durability lists %d shards, want %d", got, nShards)
	}
	if status.Inventory.Committed < nAcked {
		t.Errorf("restarted server reports %d committed, acked %d", status.Inventory.Committed, nAcked)
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v; stderr:\n%s", err, p2.stderr)
	}
	for i := 0; i < nShards; i++ {
		snaps, err := filepath.Glob(filepath.Join(walDir, wal.ShardDirName(i), "snap-*.snap"))
		if err != nil || len(snaps) == 0 {
			t.Errorf("shard %d: no snapshot after clean shutdown (%v)", i, err)
		}
	}
}
