package cli

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSlotserve(t *testing.T, args ...string) (int, string, string) {
	return run(t, func(a []string, o, e *bytes.Buffer) int { return Slotserve(a, o, e) }, args...)
}

func TestSlotserveUsageErrors(t *testing.T) {
	if code, _, stderr := runSlotserve(t); code != 2 || !strings.Contains(stderr, "-slots is required") {
		t.Errorf("no args: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runSlotserve(t, "-not-a-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, stderr := runSlotserve(t, "-slots", "does-not-exist.json"); code != 1 || stderr == "" {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

// TestSlotservePipeline is the end-to-end CLI walkthrough: slotgen writes a
// snapshot (both formats), slotserve loads it, and a reserve/commit cycle
// runs over real HTTP before a clean shutdown.
func TestSlotservePipeline(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"environment snapshot", nil},
		{"bare slot list", []string{"-slots-only"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			file := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".json")
			genArgs := append([]string{"-nodes", "10", "-seed", "7", "-o", file}, tc.args...)
			if code, _, stderr := runSlotgen(t, genArgs...); code != 0 {
				t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
			}

			addrc := make(chan string, 1)
			var shutdown func()
			slotserveTestHook = func(addr string, stop func()) {
				shutdown = stop
				addrc <- addr
			}
			t.Cleanup(func() { slotserveTestHook = nil })

			done := make(chan struct {
				code   int
				stderr string
			}, 1)
			go func() {
				var out, errBuf bytes.Buffer
				code := Slotserve([]string{"-addr", "localhost:0", "-slots", file}, &out, &errBuf)
				done <- struct {
					code   int
					stderr string
				}{code, errBuf.String()}
			}()

			addr := <-addrc
			base := "http://" + addr

			resp, err := http.Post(base+"/v1/reserve", "application/json",
				strings.NewReader(`{"request":{"tasks":2,"volume":20,"max_cost":100000}}`))
			if err != nil {
				t.Fatal(err)
			}
			var res struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || res.ID == "" {
				t.Fatalf("reserve: status %d, id %q", resp.StatusCode, res.ID)
			}

			resp, err = http.Post(base+"/v1/commit", "application/json",
				strings.NewReader(`{"id":"`+res.ID+`"}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("commit: status %d", resp.StatusCode)
			}

			resp, err = http.Get(base + "/v1/statusz")
			if err != nil {
				t.Fatal(err)
			}
			var status struct {
				Inventory struct {
					Counters struct {
						Commits uint64 `json:"commits"`
					} `json:"counters"`
				} `json:"inventory"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if status.Inventory.Counters.Commits != 1 {
				t.Fatalf("statusz commits = %d, want 1", status.Inventory.Counters.Commits)
			}

			shutdown()
			r := <-done
			if r.code != 0 {
				t.Fatalf("slotserve exit %d, stderr %q", r.code, r.stderr)
			}
			if !strings.Contains(r.stderr, "listening on") || !strings.Contains(r.stderr, "drained") {
				t.Errorf("stderr missing lifecycle lines: %q", r.stderr)
			}
		})
	}
}

// TestSlotgenSlotsOnlyFormat: -slots-only output has no horizon field and
// parses as a bare slot list.
func TestSlotgenSlotsOnlyFormat(t *testing.T) {
	file := filepath.Join(t.TempDir(), "slots.json")
	if code, _, stderr := runSlotgen(t, "-nodes", "5", "-seed", "3", "-o", file, "-slots-only"); code != 0 {
		t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	if _, has := probe["horizon"]; has {
		t.Error("-slots-only output still has a horizon field")
	}
	l, err := loadSlotFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) == 0 {
		t.Fatal("empty slot list")
	}
}
