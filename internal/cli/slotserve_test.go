package cli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func runSlotserve(t *testing.T, args ...string) (int, string, string) {
	return run(t, func(a []string, o, e *bytes.Buffer) int { return Slotserve(a, o, e) }, args...)
}

func TestSlotserveUsageErrors(t *testing.T) {
	if code, _, stderr := runSlotserve(t); code != 2 || !strings.Contains(stderr, "-slots is required") {
		t.Errorf("no args: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runSlotserve(t, "-not-a-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code, _, stderr := runSlotserve(t, "-slots", "does-not-exist.json"); code != 1 || stderr == "" {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code, _, stderr := runSlotserve(t, "-shards", "0"); code != 2 || !strings.Contains(stderr, "-shards") {
		t.Errorf("zero shards: exit %d, stderr %q, want 2", code, stderr)
	}
	if code, _, stderr := runSlotserve(t, "-shards", "4", "-follow", "http://localhost:1"); code != 2 || !strings.Contains(stderr, "-follow excludes -shards") {
		t.Errorf("follow+shards: exit %d, stderr %q, want 2", code, stderr)
	}
}

// TestSlotservePipeline is the end-to-end CLI walkthrough: slotgen writes a
// snapshot (both formats), slotserve loads it, and a reserve/commit cycle
// runs over real HTTP before a clean shutdown.
func TestSlotservePipeline(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"environment snapshot", nil},
		{"bare slot list", []string{"-slots-only"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			file := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".json")
			genArgs := append([]string{"-nodes", "10", "-seed", "7", "-o", file}, tc.args...)
			if code, _, stderr := runSlotgen(t, genArgs...); code != 0 {
				t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
			}

			addrc := make(chan string, 1)
			var shutdown func()
			slotserveTestHook = func(addr string, stop func()) {
				shutdown = stop
				addrc <- addr
			}
			t.Cleanup(func() { slotserveTestHook = nil })

			done := make(chan struct {
				code   int
				stderr string
			}, 1)
			go func() {
				var out, errBuf bytes.Buffer
				code := Slotserve([]string{"-addr", "localhost:0", "-slots", file}, &out, &errBuf)
				done <- struct {
					code   int
					stderr string
				}{code, errBuf.String()}
			}()

			addr := <-addrc
			base := "http://" + addr

			resp, err := http.Post(base+"/v1/reserve", "application/json",
				strings.NewReader(`{"request":{"tasks":2,"volume":20,"max_cost":100000}}`))
			if err != nil {
				t.Fatal(err)
			}
			var res struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || res.ID == "" {
				t.Fatalf("reserve: status %d, id %q", resp.StatusCode, res.ID)
			}

			resp, err = http.Post(base+"/v1/commit", "application/json",
				strings.NewReader(`{"id":"`+res.ID+`"}`))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("commit: status %d", resp.StatusCode)
			}

			resp, err = http.Get(base + "/v1/statusz")
			if err != nil {
				t.Fatal(err)
			}
			var status struct {
				Inventory struct {
					Counters struct {
						Commits uint64 `json:"commits"`
					} `json:"counters"`
				} `json:"inventory"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if status.Inventory.Counters.Commits != 1 {
				t.Fatalf("statusz commits = %d, want 1", status.Inventory.Counters.Commits)
			}

			shutdown()
			r := <-done
			if r.code != 0 {
				t.Fatalf("slotserve exit %d, stderr %q", r.code, r.stderr)
			}
			if !strings.Contains(r.stderr, "listening on") || !strings.Contains(r.stderr, "drained") {
				t.Errorf("stderr missing lifecycle lines: %q", r.stderr)
			}
		})
	}
}

// TestSlotserveDrainMidCycle: a shutdown signal arriving while a reserve is
// mid-flight must let the request complete — the client gets its 200 and
// reservation ID, and the process still exits 0 with a clean drain.
//
// The in-flight state is constructed deterministically over raw TCP: the
// request headers and half the declared body are sent, which makes the
// connection active (the handler blocks reading the rest of the body), then
// the shutdown path fires, then the body is completed. http.Server.Shutdown
// must wait out the active request rather than killing it.
func TestSlotserveDrainMidCycle(t *testing.T) {
	file := filepath.Join(t.TempDir(), "env.json")
	if code, _, stderr := runSlotgen(t, "-nodes", "10", "-seed", "7", "-o", file); code != 0 {
		t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
	}

	addrc := make(chan string, 1)
	var shutdown func()
	slotserveTestHook = func(addr string, stop func()) {
		shutdown = stop
		addrc <- addr
	}
	t.Cleanup(func() { slotserveTestHook = nil })

	done := make(chan struct {
		code   int
		stderr string
	}, 1)
	go func() {
		var out, errBuf bytes.Buffer
		code := Slotserve([]string{"-addr", "localhost:0", "-slots", file}, &out, &errBuf)
		done <- struct {
			code   int
			stderr string
		}{code, errBuf.String()}
	}()
	addr := <-addrc

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	body := `{"request":{"tasks":2,"volume":20,"max_cost":100000}}`
	head := fmt.Sprintf("POST /v1/reserve HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		addr, len(body))
	half := len(body) / 2
	if _, err := io.WriteString(conn, head+body[:half]); err != nil {
		t.Fatal(err)
	}
	// Give the server time to read the headers and block in the body read:
	// the request is now provably in-flight.
	time.Sleep(50 * time.Millisecond)

	// SIGTERM path fires mid-cycle.
	shutdown()
	time.Sleep(50 * time.Millisecond)

	// Complete the body; the drained server must still answer in full.
	if _, err := io.WriteString(conn, body[half:]); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading mid-drain response: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-drain reserve: status %d, want 200", resp.StatusCode)
	}
	var res struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.ID == "" {
		t.Fatal("mid-drain reserve completed without a reservation ID")
	}

	r := <-done
	if r.code != 0 {
		t.Fatalf("slotserve exit %d, stderr %q", r.code, r.stderr)
	}
	if !strings.Contains(r.stderr, "drained") {
		t.Errorf("stderr missing drain line: %q", r.stderr)
	}
}

// TestSlotgenSlotsOnlyFormat: -slots-only output has no horizon field and
// parses as a bare slot list.
func TestSlotgenSlotsOnlyFormat(t *testing.T) {
	file := filepath.Join(t.TempDir(), "slots.json")
	if code, _, stderr := runSlotgen(t, "-nodes", "5", "-seed", "3", "-o", file, "-slots-only"); code != 0 {
		t.Fatalf("slotgen: exit %d, stderr %q", code, stderr)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	if _, has := probe["horizon"]; has {
		t.Error("-slots-only output still has a horizon field")
	}
	l, err := loadSlotFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) == 0 {
		t.Fatal("empty slot list")
	}
}
