package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSlotbenchAccum covers the trajectory accumulator: benchfmt text and
// BENCH_*.json inputs both become labeled entries, medians summarize the
// repetitions, re-accumulating a label replaces its entry, and the file
// round-trips through the loader.
func TestSlotbenchAccum(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data.js")

	bench := filepath.Join(dir, "run.txt")
	lines := `goos: linux
goarch: amd64
BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=2	100	300 ns/op	0 B/op	0.00 allocs/op
BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=2	100	100 ns/op	0 B/op	0.00 allocs/op
BenchmarkFind/alg=AMP/kernel=incremental/nodes=16/tasks=2	100	200 ns/op	0 B/op	0.00 allocs/op
BenchmarkCSA/nodes=16/tasks=2	10	5000 ns/op	128 B/op	3.00 allocs/op
`
	if err := os.WriteFile(bench, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runSlotbench(t, "-accum", data, "-label", "pr-a", bench); code != 0 {
		t.Fatalf("accum text: exit %d, stderr %q", code, stderr)
	}

	snap := filepath.Join(dir, "BENCH_9.json")
	file := benchFile{Issue: 9, Seed: 1, Results: []benchResult{
		{Bench: "csa", Nodes: 16, Slots: 40, Tasks: 2, NsPerOp: 4500, Iters: 5, AllocsPerOp: 3, BytesPerOp: 128},
	}}
	raw, _ := json.Marshal(file)
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runSlotbench(t, "-accum", data, snap); code != 0 {
		t.Fatalf("accum json: exit %d, stderr %q", code, stderr)
	}

	entries, err := loadTrajectory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Label != "pr-a" || entries[1].Label != "issue-9" {
		t.Fatalf("entries = %+v, want [pr-a issue-9]", entries)
	}
	var find, csaPoint *trajPoint
	for i := range entries[0].Results {
		p := &entries[0].Results[i]
		if strings.HasPrefix(p.Name, "BenchmarkFind") {
			find = p
		}
		if strings.HasPrefix(p.Name, "BenchmarkCSA") {
			csaPoint = p
		}
	}
	if find == nil || find.NsPerOp != 200 {
		t.Fatalf("median of {300,100,200} = %+v, want 200", find)
	}
	if csaPoint == nil || csaPoint.AllocsPerOp != 3 || csaPoint.BytesPerOp != 128 {
		t.Fatalf("csa point = %+v", csaPoint)
	}
	if got := entries[1].Results[0].Name; got != "BenchmarkCSA/nodes=16/tasks=2" {
		t.Fatalf("json input name = %q (benchName drifted from the benchfmt grid?)", got)
	}

	// Same label again: replaced, not duplicated.
	if code, stdout, _ := runSlotbench(t, "-accum", data, "-label", "pr-a", bench); code != 0 || !strings.Contains(stdout, "replaced") {
		t.Fatalf("re-accum: exit %d, stdout %q", code, stdout)
	}
	entries, err = loadTrajectory(data)
	if err != nil || len(entries) != 2 {
		t.Fatalf("after re-accum: %d entries (%v)", len(entries), err)
	}

	// The file itself is a loadable script: a single assignment ending in
	// a semicolon, with the payload valid JSON.
	raw, err = os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, "window.SLOTBENCH_TRAJECTORY = ") || !strings.HasSuffix(strings.TrimSpace(s), ";") {
		t.Fatalf("data.js is not a script-global assignment:\n%.200s", s)
	}
}
