package baseline

import (
	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// ALP is the "Algorithm based on Local Price of slots" from the authors'
// earlier works ([15-17] of the paper): instead of constraining the total
// window cost, every slot must individually satisfy a local price share of
// the budget — cost(slot) <= S/n. The first scan position with n such slots
// wins (first fit, earliest start).
//
// The paper reports AMP's advantage over ALP: a window rejected by ALP for
// one locally-expensive slot can still satisfy the total budget when other
// slots are cheap, so ALP starts later (or misses) where AMP succeeds.
type ALP struct{}

// Name implements core.Algorithm.
func (ALP) Name() string { return "ALP" }

// Find implements core.Algorithm.
func (a ALP) Find(list slots.List, req *job.Request) (*core.Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements core.ObservedFinder.
func (ALP) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*core.Window, error) {
	localLimit := 0.0
	if req.MaxCost > 0 && req.TaskCount > 0 {
		localLimit = req.MaxCost / float64(req.TaskCount)
	}
	var best *core.Window
	err := core.ScanObserved(list, req, func(start float64, cands []core.Candidate) bool {
		var chosen []core.Candidate
		for _, c := range cands {
			if localLimit > 0 && c.Cost > localLimit {
				continue
			}
			chosen = append(chosen, c)
			if len(chosen) == req.TaskCount {
				break
			}
		}
		if len(chosen) < req.TaskCount {
			return false
		}
		best = core.NewWindow(start, chosen)
		return true
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, core.ErrNoWindow
	}
	return best, nil
}
