package baseline

import (
	"errors"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/testkit"
)

func TestALPReturnsValidWindows(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		e := testkit.SmallEnv(seed, 12, 300)
		req := smallRequest()
		w, err := (ALP{}).Find(e.Slots, &req)
		if errors.Is(err, core.ErrNoWindow) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if verr := w.Validate(&req); verr != nil {
			t.Fatalf("seed %d: invalid window: %v", seed, verr)
		}
		// The defining ALP constraint: every slot within the local share.
		share := req.MaxCost / float64(req.TaskCount)
		for _, p := range w.Placements {
			if p.Cost > share+1e-9 {
				t.Fatalf("seed %d: placement cost %g exceeds local share %g", seed, p.Cost, share)
			}
		}
	}
}

func TestALPNeverStartsBeforeAMP(t *testing.T) {
	// ALP's per-slot constraint implies the total constraint, so any
	// ALP-feasible position is AMP-feasible; AMP can only start earlier.
	for seed := uint64(1); seed <= 30; seed++ {
		e := testkit.SmallEnv(seed, 12, 300)
		req := smallRequest()
		alp, errL := (ALP{}).Find(e.Slots, &req)
		amp, errA := (core.AMP{}).Find(e.Slots, &req)
		if errors.Is(errL, core.ErrNoWindow) {
			continue
		}
		if errors.Is(errA, core.ErrNoWindow) {
			t.Fatalf("seed %d: ALP found a window AMP missed", seed)
		}
		if alp.Start < amp.Start-1e-9 {
			t.Fatalf("seed %d: ALP start %g before AMP start %g", seed, alp.Start, amp.Start)
		}
	}
}

func TestALPRejectsLocallyExpensiveMix(t *testing.T) {
	// One cheap and one expensive slot: the pair satisfies the total budget
	// (AMP accepts) but the expensive slot breaks the local share (ALP
	// must skip to a later all-affordable position, or fail).
	cheap := testkit.Node(1, 6, 0.2)  // exec 10, cost 2
	pricey := testkit.Node(2, 6, 5)   // exec 10, cost 50
	cheap2 := testkit.Node(3, 6, 0.3) // exec 10, cost 3, available later
	l := testkit.SlotList(
		testkit.Slot(cheap, 0, 100),
		testkit.Slot(pricey, 0, 100),
		testkit.Slot(cheap2, 40, 100),
	)
	req := job.Request{TaskCount: 2, Volume: 60, MaxCost: 60} // local share 30

	amp, err := (core.AMP{}).Find(l, &req)
	if err != nil {
		t.Fatal(err)
	}
	if amp.Start != 0 {
		t.Fatalf("AMP start %g, want 0 (total 52 <= 60)", amp.Start)
	}
	alp, err := (ALP{}).Find(l, &req)
	if err != nil {
		t.Fatal(err)
	}
	if alp.Start != 40 {
		t.Fatalf("ALP start %g, want 40 (waits for the second cheap slot)", alp.Start)
	}
}

func TestALPUnconstrained(t *testing.T) {
	e := testkit.SmallEnv(5, 10, 300)
	req := testkit.SmallRequest(3, 0) // no budget: ALP = plain first fit
	w, err := (ALP{}).Find(e.Slots, &req)
	if errors.Is(err, core.ErrNoWindow) {
		t.Skip("no window on this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if verr := w.Validate(&req); verr != nil {
		t.Fatal(verr)
	}
}
