package baseline

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

func smallRequest() job.Request {
	return job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}
}

func TestFirstFitReturnsValidWindow(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		e := testkit.SmallEnv(seed, 12, 300)
		req := smallRequest()
		w, err := (FirstFit{}).Find(e.Slots, &req)
		if errors.Is(err, core.ErrNoWindow) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if verr := w.Validate(&req); verr != nil {
			t.Fatalf("seed %d: invalid window: %v", seed, verr)
		}
	}
}

func TestFirstFitNeverStartsBeforeAMP(t *testing.T) {
	// AMP optimizes the subset choice under the budget, so it can accept a
	// position first-fit must skip; first-fit can therefore never start
	// strictly earlier.
	for seed := uint64(1); seed <= 30; seed++ {
		e := testkit.SmallEnv(seed, 12, 300)
		req := smallRequest()
		ff, errF := (FirstFit{}).Find(e.Slots, &req)
		amp, errA := (core.AMP{}).Find(e.Slots, &req)
		if errors.Is(errA, core.ErrNoWindow) {
			continue
		}
		if errors.Is(errF, core.ErrNoWindow) {
			continue // budget can starve first-fit while AMP succeeds
		}
		if ff.Start < amp.Start-1e-9 {
			t.Fatalf("seed %d: first-fit start %g before AMP start %g", seed, ff.Start, amp.Start)
		}
	}
}

func TestQuadraticMatchesAMPStart(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		e := testkit.SmallEnv(seed, 12, 300)
		req := smallRequest()
		quad, errQ := (EarliestStartQuadratic{}).Find(e.Slots, &req)
		amp, errA := (core.AMP{}).Find(e.Slots, &req)
		if errors.Is(errQ, core.ErrNoWindow) != errors.Is(errA, core.ErrNoWindow) {
			t.Fatalf("seed %d: feasibility disagreement", seed)
		}
		if errQ != nil {
			continue
		}
		if math.Abs(quad.Start-amp.Start) > 1e-9 {
			t.Fatalf("seed %d: quadratic start %g, AMP start %g", seed, quad.Start, amp.Start)
		}
	}
}

func TestBruteForceAgainstHandInstance(t *testing.T) {
	n1 := testkit.Node(1, 6, 1) // exec 10, cost 10
	n2 := testkit.Node(2, 3, 1) // exec 20, cost 20
	n3 := testkit.Node(3, 2, 3) // exec 30, cost 90
	l := testkit.SlotList(
		testkit.Slot(n1, 0, 100),
		testkit.Slot(n2, 5, 100),
		testkit.Slot(n3, 0, 100),
	)
	req := job.Request{TaskCount: 2, Volume: 60, MaxCost: 100}

	cheapest, err := (BruteForce{Obj: ObjCost}).Find(l, &req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cheapest.Cost-30) > 1e-9 { // n1+n2 at start 5
		t.Errorf("brute-force min cost %g, want 30", cheapest.Cost)
	}

	fastest, err := (BruteForce{Obj: ObjRuntime}).Find(l, &req)
	if err != nil {
		t.Fatal(err)
	}
	if fastest.Runtime != 20 { // n1+n2: max(10,20)
		t.Errorf("brute-force min runtime %g, want 20", fastest.Runtime)
	}

	earliest, err := (BruteForce{Obj: ObjStart}).Find(l, &req)
	if err != nil {
		t.Fatal(err)
	}
	if earliest.Start != 0 { // n1+n3 at start 0 costs 100 <= budget
		t.Errorf("brute-force min start %g, want 0", earliest.Start)
	}
}

func TestBruteForceMatchesCoreOptimizers(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		e := testkit.SmallEnv(seed, 8, 200)
		req := job.Request{TaskCount: 2, Volume: 60, MaxCost: 200}

		type pair struct {
			name   string
			algo   core.Algorithm
			obj    Objective
			metric func(*core.Window) float64
		}
		pairs := []pair{
			{"MinCost", core.MinCost{}, ObjCost, func(w *core.Window) float64 { return w.Cost }},
			{"MinRunTimeExact", core.MinRunTime{Exact: true}, ObjRuntime, func(w *core.Window) float64 { return w.Runtime }},
			{"MinFinishExact", core.MinFinish{Exact: true}, ObjFinish, func(w *core.Window) float64 { return w.Finish() }},
			{"AMP", core.AMP{}, ObjStart, func(w *core.Window) float64 { return w.Start }},
		}
		for _, p := range pairs {
			got, errG := p.algo.Find(e.Slots, &req)
			want, errW := (BruteForce{Obj: p.obj}).Find(e.Slots, &req)
			if errors.Is(errG, core.ErrNoWindow) != errors.Is(errW, core.ErrNoWindow) {
				t.Fatalf("seed %d %s: feasibility disagreement", seed, p.name)
			}
			if errG != nil {
				continue
			}
			if math.Abs(p.metric(got)-p.metric(want)) > 1e-9 {
				t.Fatalf("seed %d %s: core %g, brute force %g", seed, p.name, p.metric(got), p.metric(want))
			}
		}
	}
}

func TestForEachSubsetCount(t *testing.T) {
	cands := make([]core.Candidate, 6)
	count := 0
	forEachSubset(cands, 3, func(s []core.Candidate) {
		if len(s) != 3 {
			t.Fatalf("subset size %d", len(s))
		}
		count++
	})
	if count != 20 { // C(6,3)
		t.Fatalf("enumerated %d subsets, want 20", count)
	}
	count = 0
	forEachSubset(cands, 7, func([]core.Candidate) { count++ })
	if count != 0 {
		t.Fatal("k > n enumerated subsets")
	}
	count = 0
	forEachSubset(cands, 6, func([]core.Candidate) { count++ })
	if count != 1 {
		t.Fatalf("k == n enumerated %d subsets", count)
	}
}

// bruteMinWeight is an independent oracle for MinWeightSubset.
func bruteMinWeight(cands []core.Candidate, k int, budget float64, weight func(core.Candidate) float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	forEachSubset(cands, k, func(s []core.Candidate) {
		cost, w := 0.0, 0.0
		for _, c := range s {
			cost += c.Cost
			w += weight(c)
		}
		if budget > 0 && cost > budget {
			return
		}
		if w < best {
			best = w
			found = true
		}
	})
	return best, found
}

func TestMinWeightSubsetMatchesBruteForce(t *testing.T) {
	weight := func(c core.Candidate) float64 { return c.Exec }
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		rng := randx.New(seed)
		n := int(nRaw%10) + 1
		k := int(kRaw)%n + 1
		cands := make([]core.Candidate, n)
		for i := range cands {
			node := testkit.Node(i, 5, 1)
			cands[i] = core.Candidate{
				Slot: testkit.Slot(node, 0, 1000),
				Exec: rng.FloatRange(1, 50),
				Cost: rng.FloatRange(1, 30),
			}
		}
		budget := rng.FloatRange(float64(k), float64(k)*25)
		chosen, got, ok := MinWeightSubset(cands, k, budget, weight)
		want, okWant := bruteMinWeight(cands, k, budget, weight)
		if ok != okWant {
			return false
		}
		if !ok {
			return true
		}
		if len(chosen) != k {
			return false
		}
		cost := 0.0
		for _, c := range chosen {
			cost += c.Cost
		}
		if cost > budget+1e-9 {
			return false
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinWeightSubsetUnconstrained(t *testing.T) {
	cands := make([]core.Candidate, 5)
	for i := range cands {
		node := testkit.Node(i, 5, 1)
		cands[i] = core.Candidate{Slot: testkit.Slot(node, 0, 100), Exec: float64(10 - i), Cost: 1000}
	}
	_, w, ok := MinWeightSubset(cands, 2, 0, func(c core.Candidate) float64 { return c.Exec })
	if !ok || w != 6+7 {
		t.Fatalf("unconstrained MinWeightSubset = %g ok=%v, want 13", w, ok)
	}
	if _, _, ok := MinWeightSubset(cands, 6, 0, nil); ok {
		t.Error("k > n must fail")
	}
}

func TestBaselineNames(t *testing.T) {
	if (FirstFit{}).Name() == "" || (EarliestStartQuadratic{}).Name() == "" || (BruteForce{}).Name() == "" {
		t.Error("empty baseline names")
	}
}

func TestBaselinesRejectInvalidRequest(t *testing.T) {
	bad := job.Request{TaskCount: 0, Volume: 10}
	if _, err := (EarliestStartQuadratic{}).Find(nil, &bad); err == nil || errors.Is(err, core.ErrNoWindow) {
		t.Error("quadratic accepted invalid request")
	}
	if _, err := (BruteForce{}).Find(nil, &bad); err == nil || errors.Is(err, core.ErrNoWindow) {
		t.Error("brute force accepted invalid request")
	}
}
