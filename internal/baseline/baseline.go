// Package baseline implements the comparison algorithms the paper positions
// AEP against, plus exact solvers used as test oracles:
//
//   - FirstFit: assigns the job to the first set of slots matching the
//     request without any optimization (the backtrack / NorduGrid family).
//   - EarliestStartQuadratic: a backfilling-style earliest-start search that
//     probes every node's availability at every slot start event — the
//     quadratic-in-slots approach AMP's linear scan replaces.
//   - BruteForce: exhaustive enumeration of all feasible windows, optimal by
//     any criterion (small instances only; used as the oracle for AMP,
//     MinCost, MinRunTime and MinFinish).
//   - MinWeightSubset: exact branch-and-bound for the 0-1 selection problem
//     of §2.1 (minimize an additive weight subject to the cost budget), the
//     IP-style formulation of the related work.
package baseline

import (
	"math"
	"sort"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// FirstFit scans the ordered slot list and accepts the first n suitable
// slots (in list order, no cost optimization among candidates) whose total
// cost fits the budget. It models the first-fit selection of backtrack-like
// and NorduGrid brokers.
type FirstFit struct{}

// Name implements core.Algorithm.
func (FirstFit) Name() string { return "FirstFit" }

// Find implements core.Algorithm.
func (a FirstFit) Find(list slots.List, req *job.Request) (*core.Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements core.ObservedFinder.
func (FirstFit) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*core.Window, error) {
	var best *core.Window
	err := core.ScanObserved(list, req, func(start float64, cands []core.Candidate) bool {
		chosen := cands[:req.TaskCount]
		cost := 0.0
		for _, c := range chosen {
			cost += c.Cost
		}
		if req.MaxCost > 0 && cost > req.MaxCost {
			return false
		}
		best = core.NewWindow(start, append([]core.Candidate(nil), chosen...))
		return true
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, core.ErrNoWindow
	}
	return best, nil
}

// EarliestStartQuadratic finds the earliest-start feasible window by
// examining every candidate start time (every slot start) and, for each,
// re-scanning the whole slot list for slots covering it — the O(m^2)
// formulation that backfilling-style schedulers effectively perform when
// every CPU node has local jobs scheduled. Functionally it returns the same
// window start as AMP and serves as its oracle.
type EarliestStartQuadratic struct{}

// Name implements core.Algorithm.
func (EarliestStartQuadratic) Name() string { return "EarliestStartQuad" }

// Find implements core.Algorithm.
func (EarliestStartQuadratic) Find(list slots.List, req *job.Request) (*core.Window, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	starts := candidateStarts(list)
	for _, start := range starts {
		cands := suitableAt(list, req, start)
		if len(cands) < req.TaskCount {
			continue
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Cost < cands[j].Cost })
		chosen := cands[:req.TaskCount]
		cost := 0.0
		for _, c := range chosen {
			cost += c.Cost
		}
		if req.MaxCost > 0 && cost > req.MaxCost {
			continue
		}
		return core.NewWindow(start, chosen), nil
	}
	return nil, core.ErrNoWindow
}

// candidateStarts returns the sorted distinct slot start times. Any optimal
// window start coincides with some slot start: sliding a window earlier is
// possible until one of its slots begins.
func candidateStarts(list slots.List) []float64 {
	starts := make([]float64, 0, len(list))
	for _, s := range list {
		starts = append(starts, s.Start)
	}
	sort.Float64s(starts)
	out := starts[:0]
	for i, v := range starts {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// suitableAt collects the candidates able to host one task starting exactly
// at start.
func suitableAt(list slots.List, req *job.Request, start float64) []core.Candidate {
	var cands []core.Candidate
	for _, s := range list {
		if !req.Matches(s.Node) {
			continue
		}
		exec := req.ExecTime(s.Node)
		if !s.FitsAt(start, req.Volume) {
			continue
		}
		if req.Deadline > 0 && start+exec > req.Deadline {
			continue
		}
		cands = append(cands, core.Candidate{Slot: s, Exec: exec, Cost: exec * s.Node.Price})
	}
	return cands
}

// Objective scores a window for BruteForce; smaller is better.
type Objective func(w *core.Window) float64

// Objectives matching the paper's criteria.
var (
	ObjStart    Objective = func(w *core.Window) float64 { return w.Start }
	ObjFinish   Objective = func(w *core.Window) float64 { return w.Finish() }
	ObjCost     Objective = func(w *core.Window) float64 { return w.Cost }
	ObjRuntime  Objective = func(w *core.Window) float64 { return w.Runtime }
	ObjProcTime Objective = func(w *core.Window) float64 { return w.ProcTime }
)

// BruteForce exhaustively enumerates all feasible windows (every candidate
// start x every n-subset of the slots suitable there) and returns the one
// minimizing the objective. Exponential; only for small instances and tests.
type BruteForce struct {
	Obj Objective
}

// Name implements core.Algorithm.
func (BruteForce) Name() string { return "BruteForce" }

// Find implements core.Algorithm.
func (b BruteForce) Find(list slots.List, req *job.Request) (*core.Window, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	obj := b.Obj
	if obj == nil {
		obj = ObjStart
	}
	var best *core.Window
	bestVal := math.Inf(1)
	for _, start := range candidateStarts(list) {
		cands := suitableAt(list, req, start)
		if len(cands) < req.TaskCount {
			continue
		}
		forEachSubset(cands, req.TaskCount, func(chosen []core.Candidate) {
			cost := 0.0
			for _, c := range chosen {
				cost += c.Cost
			}
			if req.MaxCost > 0 && cost > req.MaxCost {
				return
			}
			w := core.NewWindow(start, append([]core.Candidate(nil), chosen...))
			if v := obj(w); v < bestVal {
				best, bestVal = w, v
			}
		})
	}
	if best == nil {
		return nil, core.ErrNoWindow
	}
	return best, nil
}

// forEachSubset invokes fn for every k-subset of cands. fn must not retain
// the slice.
func forEachSubset(cands []core.Candidate, k int, fn func([]core.Candidate)) {
	n := len(cands)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]core.Candidate, k)
	for {
		for i, j := range idx {
			buf[i] = cands[j]
		}
		fn(buf)
		// advance combination
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// MinWeightSubset solves the §2.1 0-1 selection problem exactly: choose
// exactly k of the candidates minimizing the total weight subject to the
// total cost budget (<= 0 means unconstrained). It is a depth-first branch
// and bound over candidates sorted by weight, with optimistic weight bounds
// and a cheapest-completion feasibility bound. Exponential in the worst
// case; intended for moderate candidate counts and as a test oracle for the
// additive-criterion heuristics.
func MinWeightSubset(cands []core.Candidate, k int, budget float64, weight func(core.Candidate) float64) ([]core.Candidate, float64, bool) {
	n := len(cands)
	if k <= 0 || k > n {
		return nil, 0, false
	}
	order := append([]core.Candidate(nil), cands...)
	sort.Slice(order, func(i, j int) bool { return weight(order[i]) < weight(order[j]) })

	// suffixMinCost[i][j]: the minimum cost of choosing j items from
	// order[i:], used to prune branches that cannot fit the budget.
	// Computed as a rolling DP to keep memory at O(n x k).
	suffixMinCost := make([][]float64, n+1)
	for i := range suffixMinCost {
		suffixMinCost[i] = make([]float64, k+1)
	}
	for j := 1; j <= k; j++ {
		suffixMinCost[n][j] = math.Inf(1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := 1; j <= k; j++ {
			skip := suffixMinCost[i+1][j]
			take := order[i].Cost + suffixMinCost[i+1][j-1]
			suffixMinCost[i][j] = math.Min(skip, take)
		}
	}

	bestWeight := math.Inf(1)
	var bestSet []core.Candidate
	cur := make([]core.Candidate, 0, k)

	var rec func(i, left int, curWeight, curCost float64)
	rec = func(i, left int, curWeight, curCost float64) {
		if left == 0 {
			if curWeight < bestWeight {
				bestWeight = curWeight
				bestSet = append(bestSet[:0], cur...)
			}
			return
		}
		if i >= n || n-i < left {
			return
		}
		// Optimistic weight bound: items are weight-sorted, so the best
		// possible completion uses the next `left` items.
		optimistic := curWeight
		for j := 0; j < left; j++ {
			optimistic += weight(order[i+j])
		}
		if optimistic >= bestWeight {
			return
		}
		// Feasibility bound: cheapest possible completion must fit budget.
		if budget > 0 && curCost+suffixMinCost[i][left] > budget {
			return
		}
		// Take order[i].
		if budget <= 0 || curCost+order[i].Cost+minCostAfter(suffixMinCost, i+1, left-1) <= budget {
			cur = append(cur, order[i])
			rec(i+1, left-1, curWeight+weight(order[i]), curCost+order[i].Cost)
			cur = cur[:len(cur)-1]
		}
		// Skip order[i].
		rec(i+1, left, curWeight, curCost)
	}
	rec(0, k, 0, 0)
	if bestSet == nil {
		return nil, 0, false
	}
	return bestSet, bestWeight, true
}

func minCostAfter(suffix [][]float64, i, j int) float64 {
	if j == 0 {
		return 0
	}
	return suffix[i][j]
}
