// Package strategy realizes the paper's §2.1 remark that "by combining the
// optimization criteria, VO administrators and users can form alternatives
// search strategies for every job in the batch": a strategy runs several
// AEP algorithms over the same slot list, collects their candidate windows,
// and selects the one minimizing a user-defined score — typically a
// weighted combination of the window characteristics.
package strategy

import (
	"errors"
	"fmt"
	"math"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/slots"
)

// Score maps a window to a figure of merit; lower is better.
type Score func(*core.Window) float64

// Weights is a linear scoring over the window characteristics. Zero-value
// fields contribute nothing; characteristics have different magnitudes, so
// callers normally normalize (e.g. divide cost weight by the budget).
type Weights struct {
	Start    float64
	Finish   float64
	Runtime  float64
	ProcTime float64
	Cost     float64
}

// Score builds the weighted-sum score.
func (w Weights) Score(win *core.Window) float64 {
	return w.Start*win.Start +
		w.Finish*win.Finish() +
		w.Runtime*win.Runtime +
		w.ProcTime*win.ProcTime +
		w.Cost*win.Cost
}

// Strategy is a composite search: every algorithm contributes its window
// and the best-scoring one wins. A typical instance combines MinFinish,
// MinCost and MinRunTime with user weights reflecting the job's priorities.
type Strategy struct {
	// Label names the strategy (for tables); default "Strategy".
	Label string

	// Algorithms are the candidate searches; at least one is required.
	Algorithms []core.Algorithm

	// Score ranks the candidates; nil defaults to earliest finish.
	Score Score
}

// Name implements core.Algorithm.
func (s Strategy) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "Strategy"
}

// Find implements core.Algorithm: it runs every component algorithm on the
// list and returns the best-scoring window. A component returning
// core.ErrNoWindow is skipped; any other error aborts the search. If every
// component finds nothing, ErrNoWindow is returned.
func (s Strategy) Find(list slots.List, req *job.Request) (*core.Window, error) {
	if len(s.Algorithms) == 0 {
		return nil, fmt.Errorf("strategy: %s has no component algorithms", s.Name())
	}
	score := s.Score
	if score == nil {
		score = func(w *core.Window) float64 { return w.Finish() }
	}
	var best *core.Window
	bestScore := math.Inf(1)
	for _, alg := range s.Algorithms {
		w, err := alg.Find(list, req)
		if errors.Is(err, core.ErrNoWindow) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("strategy: %s component %s: %w", s.Name(), alg.Name(), err)
		}
		if v := score(w); v < bestScore {
			best, bestScore = w, v
		}
	}
	if best == nil {
		return nil, core.ErrNoWindow
	}
	return best, nil
}

// Balanced returns a ready-made strategy trading completion time against
// cost: score = finish/horizon + cost/budget (both normalized to ~[0,1]).
// budget <= 0 or horizon <= 0 disables the respective term.
func Balanced(horizon, budget float64) Strategy {
	w := Weights{}
	if horizon > 0 {
		w.Finish = 1 / horizon
	}
	if budget > 0 {
		w.Cost = 1 / budget
	}
	return Strategy{
		Label:      "Balanced",
		Algorithms: []core.Algorithm{core.MinFinish{}, core.MinCost{}, core.MinRunTime{}},
		Score:      w.Score,
	}
}
