package strategy

import (
	"errors"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/testkit"
)

func TestStrategyPicksBestScore(t *testing.T) {
	e := testkit.SmallEnv(1, 20, 400)
	req := testkit.SmallRequest(3, 300)

	// Pure-cost score must reproduce MinCost's window cost; pure-finish
	// score must reproduce MinFinish's finish.
	minCost, err := (core.MinCost{}).Find(e.Slots, &req)
	if err != nil {
		t.Skip("no window on this seed")
	}
	minFin, err := (core.MinFinish{}).Find(e.Slots, &req)
	if err != nil {
		t.Fatal(err)
	}

	components := []core.Algorithm{core.MinFinish{}, core.MinCost{}, core.MinRunTime{}}
	costOnly := Strategy{Algorithms: components, Score: Weights{Cost: 1}.Score}
	w, err := costOnly.Find(e.Slots, &req)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cost != minCost.Cost {
		t.Errorf("cost-only strategy cost %g, want MinCost's %g", w.Cost, minCost.Cost)
	}

	finishOnly := Strategy{Algorithms: components, Score: Weights{Finish: 1}.Score}
	w, err = finishOnly.Find(e.Slots, &req)
	if err != nil {
		t.Fatal(err)
	}
	if w.Finish() != minFin.Finish() {
		t.Errorf("finish-only strategy finish %g, want MinFinish's %g", w.Finish(), minFin.Finish())
	}
}

func TestStrategyReturnsValidWindows(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		e := testkit.SmallEnv(seed, 15, 300)
		req := testkit.SmallRequest(3, 300)
		s := Balanced(300, req.MaxCost)
		w, err := s.Find(e.Slots, &req)
		if errors.Is(err, core.ErrNoWindow) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if verr := w.Validate(&req); verr != nil {
			t.Fatalf("seed %d: invalid window: %v", seed, verr)
		}
	}
}

func TestBalancedBetweenExtremes(t *testing.T) {
	// The balanced window can be neither cheaper than MinCost nor finish
	// earlier than MinFinish; it must land in the box they span.
	for seed := uint64(1); seed <= 15; seed++ {
		e := testkit.SmallEnv(seed, 20, 400)
		req := testkit.SmallRequest(3, 300)
		minCost, errC := (core.MinCost{}).Find(e.Slots, &req)
		minFin, errF := (core.MinFinish{}).Find(e.Slots, &req)
		if errC != nil || errF != nil {
			continue
		}
		w, err := Balanced(400, req.MaxCost).Find(e.Slots, &req)
		if err != nil {
			t.Fatal(err)
		}
		if w.Cost < minCost.Cost-1e-9 {
			t.Fatalf("seed %d: balanced cost %g below MinCost %g", seed, w.Cost, minCost.Cost)
		}
		if w.Finish() < minFin.Finish()-1e-9 {
			t.Fatalf("seed %d: balanced finish %g before MinFinish %g", seed, w.Finish(), minFin.Finish())
		}
	}
}

func TestStrategyErrors(t *testing.T) {
	req := testkit.SmallRequest(2, 100)
	if _, err := (Strategy{}).Find(nil, &req); err == nil || errors.Is(err, core.ErrNoWindow) {
		t.Error("empty strategy accepted")
	}
	s := Strategy{Algorithms: []core.Algorithm{core.AMP{}}}
	if _, err := s.Find(nil, &req); !errors.Is(err, core.ErrNoWindow) {
		t.Errorf("empty list: %v, want ErrNoWindow", err)
	}
	bad := job.Request{TaskCount: 0, Volume: 1}
	if _, err := s.Find(nil, &bad); err == nil || errors.Is(err, core.ErrNoWindow) {
		t.Error("invalid request accepted")
	}
}

func TestStrategyName(t *testing.T) {
	if (Strategy{}).Name() != "Strategy" {
		t.Error("default name wrong")
	}
	if (Strategy{Label: "x"}).Name() != "x" {
		t.Error("custom label lost")
	}
	if Balanced(1, 1).Name() != "Balanced" {
		t.Error("balanced label wrong")
	}
}

func TestWeightsScore(t *testing.T) {
	n := testkit.Node(1, 5, 2)
	w := core.NewWindow(10, []core.Candidate{{Slot: testkit.Slot(n, 0, 100), Exec: 30, Cost: 60}})
	// start 10, finish 40, runtime 30, proc 30, cost 60
	score := Weights{Start: 1, Finish: 2, Runtime: 3, ProcTime: 4, Cost: 5}.Score(w)
	want := 10.0 + 2*40 + 3*30 + 4*30 + 5*60
	if score != want {
		t.Errorf("score %g, want %g", score, want)
	}
}
