package generic

import (
	"errors"
	"math"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/testkit"
)

func TestExtremeReturnsValidWindows(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		e := testkit.SmallEnv(seed, 15, 300)
		req := testkit.SmallRequest(3, 300)
		for _, alg := range []Extreme{
			{Label: "greedy-proc", Weight: WeightProcTime},
			{Label: "exact-proc", Weight: WeightProcTime, Exact: true},
			{Label: "exact-energy", Weight: WeightEnergy(nil), Exact: true},
			{Label: "greedy-cost", Weight: WeightCost},
		} {
			w, err := alg.Find(e.Slots, &req)
			if errors.Is(err, core.ErrNoWindow) {
				continue
			}
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, alg.Name(), err)
			}
			if verr := w.Validate(&req); verr != nil {
				t.Fatalf("seed %d %s: invalid window: %v", seed, alg.Name(), verr)
			}
		}
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		e := testkit.SmallEnv(seed, 12, 300)
		req := testkit.SmallRequest(3, 250)
		greedy := Extreme{Weight: WeightProcTime}
		exact := Extreme{Weight: WeightProcTime, Exact: true}
		wg, errG := greedy.Find(e.Slots, &req)
		we, errE := exact.Find(e.Slots, &req)
		if errors.Is(errG, core.ErrNoWindow) != errors.Is(errE, core.ErrNoWindow) {
			t.Fatalf("seed %d: feasibility disagreement", seed)
		}
		if errG != nil {
			continue
		}
		if exact.TotalWeight(we) > greedy.TotalWeight(wg)+1e-9 {
			t.Fatalf("seed %d: exact weight %g above greedy %g",
				seed, exact.TotalWeight(we), greedy.TotalWeight(wg))
		}
	}
}

func TestExactProcTimeBeatsPerStepOracle(t *testing.T) {
	// The exact Extreme over WeightProcTime must equal the global optimum:
	// the minimum over scan positions of the exact per-step selection.
	for seed := uint64(1); seed <= 15; seed++ {
		e := testkit.SmallEnv(seed, 10, 250)
		req := testkit.SmallRequest(3, 250)
		exact := Extreme{Weight: WeightProcTime, Exact: true}
		w, err := exact.Find(e.Slots, &req)
		if errors.Is(err, core.ErrNoWindow) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		if err := core.Scan(e.Slots, &req, func(start float64, cands []core.Candidate) bool {
			// Exhaustive per-step optimum.
			var rec func(i int, left int, cost, weight float64)
			rec = func(i, left int, cost, weight float64) {
				if req.MaxCost > 0 && cost > req.MaxCost {
					return
				}
				if left == 0 {
					if weight < best {
						best = weight
					}
					return
				}
				if i >= len(cands) || len(cands)-i < left {
					return
				}
				rec(i+1, left-1, cost+cands[i].Cost, weight+cands[i].Exec)
				rec(i+1, left, cost, weight)
			}
			rec(0, req.TaskCount, 0, 0)
			return false
		}); err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.ProcTime-best) > 1e-9 {
			t.Fatalf("seed %d: exact Extreme %g, oracle %g", seed, w.ProcTime, best)
		}
	}
}

func TestExtremeDefaults(t *testing.T) {
	e := testkit.SmallEnv(1, 10, 250)
	req := testkit.SmallRequest(2, 200)
	var alg Extreme // zero value: proc-time weight, greedy
	if alg.Name() != "Extreme" {
		t.Errorf("default name %q", alg.Name())
	}
	w, err := alg.Find(e.Slots, &req)
	if errors.Is(err, core.ErrNoWindow) {
		t.Skip("no window on this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(&req); err != nil {
		t.Fatal(err)
	}
}

func TestExactCandidateCapFallsBackToGreedy(t *testing.T) {
	// With the cap at 1 every step exceeds it, so the exact variant must
	// behave exactly like the greedy one.
	e := testkit.SmallEnv(2, 12, 300)
	req := testkit.SmallRequest(3, 250)
	capped := Extreme{Weight: WeightProcTime, Exact: true, MaxExactCandidates: 1}
	greedy := Extreme{Weight: WeightProcTime}
	wc, errC := capped.Find(e.Slots, &req)
	wg, errG := greedy.Find(e.Slots, &req)
	if errors.Is(errC, core.ErrNoWindow) != errors.Is(errG, core.ErrNoWindow) {
		t.Fatal("feasibility disagreement")
	}
	if errC != nil {
		t.Skip("no window on this seed")
	}
	if wc.ProcTime != wg.ProcTime || wc.Start != wg.Start {
		t.Fatalf("capped exact differs from greedy: %v vs %v", wc, wg)
	}
}

func TestWeightEnergyDefaultsModel(t *testing.T) {
	w := WeightEnergy(nil)
	n := testkit.Node(1, 4, 1)
	c := core.Candidate{Slot: testkit.Slot(n, 0, 100), Exec: 10, Cost: 10}
	if got := w(c); got != 160 { // 4^2 * 10
		t.Errorf("default energy weight = %g, want 160", got)
	}
}
