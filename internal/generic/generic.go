// Package generic implements the general 0-1 formulation of §2.1: at every
// scan position of the AEP scheme, select the n-slot sub-window minimizing
// an arbitrary additive characteristic z under the cost budget
//
//	a1*z1 + ... + am*zm -> min
//	a1*c1 + ... + am*cm <= S,  a1 + ... + am = n,  ar in {0,1}
//
// solved exactly per step with the branch-and-bound solver of
// internal/baseline, or approximately with the additive-greedy substitution.
// This is the machinery behind the paper's statement that users and VO
// administrators can combine criteria into custom search strategies.
package generic

import (
	"math"

	"slotsel/internal/baseline"
	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// Weight assigns the per-slot characteristic z to a candidate. Weights must
// be non-negative for the exact solver's pruning bounds to hold.
type Weight func(core.Candidate) float64

// Common weights.
var (
	// WeightProcTime is the candidate's execution time (total CPU time
	// criterion).
	WeightProcTime Weight = func(c core.Candidate) float64 { return c.Exec }

	// WeightCost is the candidate's reservation cost.
	WeightCost Weight = func(c core.Candidate) float64 { return c.Cost }
)

// WeightEnergy builds a weight from an energy model.
func WeightEnergy(model core.EnergyModel) Weight {
	if model == nil {
		model = core.DefaultEnergyModel
	}
	return func(c core.Candidate) float64 { return model(c.Slot.Node.Perf, c.Exec) }
}

// Extreme is the generic AEP algorithm minimizing the total weight of the
// selected window over the whole scheduling interval.
type Extreme struct {
	// Label names the algorithm (for tables and errors); default
	// "Extreme".
	Label string

	// Weight is the per-slot characteristic; required.
	Weight Weight

	// Exact selects the exact branch-and-bound per-step solver; the default
	// is the greedy substitution, which matches the working-time profile of
	// the paper's special-case algorithms.
	Exact bool

	// MaxExactCandidates caps the candidate count handed to the exact
	// solver per step (0 = 64). Past the cap the step falls back to the
	// greedy selection, bounding the worst-case step cost on large
	// environments.
	MaxExactCandidates int
}

// Name implements core.Algorithm.
func (e Extreme) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return "Extreme"
}

// Find implements core.Algorithm.
func (e Extreme) Find(list slots.List, req *job.Request) (*core.Window, error) {
	return e.FindObserved(list, req, nil)
}

// FindObserved implements core.ObservedFinder.
func (e Extreme) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*core.Window, error) {
	if e.Weight == nil {
		e.Weight = WeightProcTime
	}
	capExact := e.MaxExactCandidates
	if capExact <= 0 {
		capExact = 64
	}
	var best *core.Window
	bestWeight := math.Inf(1)
	err := core.ScanIndexed(list, req, func(start float64, win *core.WindowIndex) bool {
		var chosen []core.Candidate
		var total float64
		var ok bool
		if e.Exact && win.Len() <= capExact {
			// The exact solver explores subsets of the raw window; it gains
			// nothing from the cost ordering, so it reads the append-order
			// view directly.
			chosen, total, ok = baseline.MinWeightSubset(win.Cands(), req.TaskCount, req.MaxCost, e.Weight)
		} else {
			chosen, total, ok = win.SelectMinAdditiveGreedy(req.TaskCount, req.MaxCost, e.Weight)
		}
		if !ok {
			return false
		}
		if total < bestWeight {
			bestWeight = total
			best = core.NewWindow(start, chosen)
		}
		return false
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, core.ErrNoWindow
	}
	return best, nil
}

// TotalWeight returns the window's total weight under the algorithm's
// characteristic.
func (e Extreme) TotalWeight(w *core.Window) float64 {
	weight := e.Weight
	if weight == nil {
		weight = WeightProcTime
	}
	total := 0.0
	for _, p := range w.Placements {
		total += weight(core.Candidate{Slot: p.Slot, Exec: p.Exec, Cost: p.Cost})
	}
	return total
}
