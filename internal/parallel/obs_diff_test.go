package parallel_test

import (
	"testing"

	"slotsel/internal/csa"
	"slotsel/internal/obs"
	"slotsel/internal/parallel"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

// TestFindAllCountersWorkerInvariant is the counter differential suite for
// the FindAll path: every algorithm runs exactly once against the shared
// list no matter how the work is pooled, so ALL scan counters and the
// per-algorithm search/found counts must be bit-identical across worker
// counts. (Only the timing fields may differ.)
func TestFindAllCountersWorkerInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, rng.IntRange(3, 10), 4, 200)
		req := randomRequest(rng)
		algs := findAllAlgs(seed)

		var refScan obs.ScanAgg
		refSel := make(map[string][2]int)
		for wi, workers := range workerCounts {
			var stats obs.Stats
			r := req
			results := parallel.FindAllObserved(list, &r, algs, workers, &stats)
			snap := stats.Snapshot()

			// One SelectDone per algorithm, Found consistent with the result.
			for _, res := range results {
				a, ok := snap.Selects[res.Algorithm.Name()]
				if !ok || a.Searches == 0 {
					t.Fatalf("seed=%d workers=%d: no selection stats for %s", seed, workers, res.Algorithm.Name())
				}
				wantFound := 0
				if res.Window != nil {
					wantFound = 1
				}
				if a.Found != wantFound {
					t.Errorf("seed=%d workers=%d %s: Found=%d, result window %v",
						seed, workers, res.Algorithm.Name(), a.Found, res.Window != nil)
				}
			}

			sel := make(map[string][2]int)
			for name, a := range snap.Selects {
				sel[name] = [2]int{a.Searches, a.Found}
			}
			if wi == 0 {
				refScan, refSel = snap.Scan, sel
				continue
			}
			if snap.Scan != refScan {
				t.Errorf("seed=%d workers=%d: scan counters diverged\n got: %+v\nwant: %+v",
					seed, workers, snap.Scan, refScan)
			}
			if len(sel) != len(refSel) {
				t.Fatalf("seed=%d workers=%d: %d algorithms with stats, want %d", seed, workers, len(sel), len(refSel))
			}
			for name, want := range refSel {
				if sel[name] != want {
					t.Errorf("seed=%d workers=%d %s: searches/found = %v, want %v", seed, workers, name, sel[name], want)
				}
			}
		}
	}
}

// TestAlternativesBatchCountersWorkerInvariant is the counter differential
// suite for the speculative engine. The committed quantities of BatchStats
// (Jobs, AltsFound, CutOps) describe the deterministic output and must be
// identical for every worker count; the speculation accounting describes
// work actually spent and is only required to satisfy its invariants:
// discards are impossible on the sequential path and non-negative on the
// speculative one, and executed = committed + discarded always.
func TestAlternativesBatchCountersWorkerInvariant(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, rng.IntRange(4, 12), 4, 300)
		batch := testkit.RandomBatch(rng, rng.IntRange(2, 8))
		ordered := batch.ByPriority()
		opts := csa.Options{MaxAlternatives: rng.Intn(4), MinSlotLength: 1}

		var ref obs.BatchAgg
		for wi, workers := range workerCounts {
			var stats obs.Stats
			if _, err := parallel.AlternativesObserved(list, ordered, opts, workers, &stats); err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			b := stats.Snapshot().Batch
			if b.Batches != 1 {
				t.Fatalf("seed=%d workers=%d: %d BatchDone events, want 1", seed, workers, b.Batches)
			}
			if b.Jobs != len(ordered) {
				t.Errorf("seed=%d workers=%d: Jobs=%d, want %d", seed, workers, b.Jobs, len(ordered))
			}
			if b.SpecRuns != b.SpecCommitted+b.SpecDiscarded {
				t.Errorf("seed=%d workers=%d: SpecRuns=%d != committed %d + discarded %d",
					seed, workers, b.SpecRuns, b.SpecCommitted, b.SpecDiscarded)
			}
			if b.SpecDiscarded < 0 || b.TasksCut < 0 {
				t.Errorf("seed=%d workers=%d: negative accounting: %+v", seed, workers, b)
			}
			if workers <= 1 {
				// Sequential path: one authoritative search per job, nothing
				// speculative to waste.
				if b.SpecDiscarded != 0 || b.Relaunches != 0 || b.InlineRecomputes != 0 || b.TasksCut != 0 {
					t.Errorf("seed=%d: sequential path reports speculative waste: %+v", seed, b)
				}
				if b.SpecRuns != len(ordered) {
					t.Errorf("seed=%d: sequential SpecRuns=%d, want %d", seed, b.SpecRuns, len(ordered))
				}
			} else if b.SpecCommitted != b.Jobs-b.InlineRecomputes {
				t.Errorf("seed=%d workers=%d: SpecCommitted=%d, want Jobs %d - inline %d",
					seed, workers, b.SpecCommitted, b.Jobs, b.InlineRecomputes)
			}
			if wi == 0 {
				ref = b
				continue
			}
			if b.Jobs != ref.Jobs || b.AltsFound != ref.AltsFound || b.CutOps != ref.CutOps {
				t.Errorf("seed=%d workers=%d: committed quantities diverged\n got: Jobs=%d Alts=%d Cuts=%d\nwant: Jobs=%d Alts=%d Cuts=%d",
					seed, workers, b.Jobs, b.AltsFound, b.CutOps, ref.Jobs, ref.AltsFound, ref.CutOps)
			}
		}
	}
}
