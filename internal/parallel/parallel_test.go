package parallel_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/job"
	"slotsel/internal/parallel"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
	"slotsel/internal/testkit"
)

// workerCounts is the sweep every differential test runs: the inline path,
// the smallest truly concurrent pool, and an oversubscribed pool (more
// workers than the single-CPU CI runner has cores — scheduling order is
// then maximally adversarial).
var workerCounts = []int{1, 2, 8}

// diffSeeds is the number of random instances per differential test. The
// ISSUE requires at least 100; failures print the seed so a divergence is
// reproducible with a one-line test filter.
const diffSeeds = 120

func TestWorkers(t *testing.T) {
	if got := parallel.Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := parallel.Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := parallel.Workers(-7); got < 1 {
		t.Fatalf("Workers(-7) = %d, want >= 1 (GOMAXPROCS)", got)
	}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			counts := make([]int32, n)
			parallel.ForEach(n, workers, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachWorkerRunsEachID(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		seen := make(map[int]bool)
		parallel.ForEachWorker(workers, func(wk int) {
			mu.Lock()
			seen[wk] = true
			mu.Unlock()
		})
		if len(seen) != workers {
			t.Fatalf("workers=%d: saw ids %v", workers, seen)
		}
	}
}

// randomRequest draws a request with occasional budget, deadline and
// heterogeneity constraints so the differential sweep covers feasible,
// infeasible and partially-constrained searches.
func randomRequest(rng *randx.Rand) job.Request {
	req := job.Request{
		TaskCount: rng.IntRange(1, 5),
		Volume:    float64(rng.IntRange(30, 150)),
	}
	if rng.Intn(2) == 0 {
		req.MaxCost = float64(rng.IntRange(100, 1500))
	}
	if rng.Intn(3) == 0 {
		req.Deadline = rng.FloatRange(20, 180)
	}
	if rng.Intn(4) == 0 {
		req.MinPerf = float64(rng.IntRange(3, 8))
	}
	return req
}

// findAllAlgs is the full shipped-algorithm catalogue; MinProcTime's seed is
// fixed per instance so the randomized selection is deterministic per Find.
func findAllAlgs(seed uint64) []core.Algorithm {
	return []core.Algorithm{
		core.AMP{},
		core.MinCost{},
		core.MinRunTime{},
		core.MinRunTime{Exact: true},
		core.MinFinish{},
		core.MinFinish{Exact: true},
		core.MinProcTime{Seed: seed},
		core.MinProcTimeGreedy{},
		core.MinEnergy{},
	}
}

// TestFindAllMatchesSequential is the FindAll differential suite: for every
// seed and every worker count, the parallel multi-algorithm search must be
// value-identical to the plain sequential loop over the same algorithms.
func TestFindAllMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= diffSeeds; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, rng.IntRange(3, 10), 4, 200)
		req := randomRequest(rng)
		algs := findAllAlgs(seed)

		// Sequential reference: one Find per algorithm, in order.
		type ref struct {
			sig string
			err error
		}
		want := make([]ref, len(algs))
		for i, alg := range algs {
			r := req
			w, err := alg.Find(list, &r)
			want[i] = ref{sig: testkit.WindowSignature(w), err: err}
		}

		for _, workers := range workerCounts {
			got := parallel.FindAll(list, &req, algs, workers)
			if len(got) != len(algs) {
				t.Fatalf("seed=%d workers=%d: FindAll returned %d results, want %d", seed, workers, len(got), len(algs))
			}
			for i, res := range got {
				if res.Algorithm.Name() != algs[i].Name() {
					t.Errorf("seed=%d workers=%d: result %d is %s, want %s", seed, workers, i, res.Algorithm.Name(), algs[i].Name())
				}
				if sig := testkit.WindowSignature(res.Window); sig != want[i].sig {
					t.Errorf("seed=%d workers=%d alg=%s: window diverged\n got: %s\nwant: %s",
						seed, workers, algs[i].Name(), sig, want[i].sig)
				}
				if !errors.Is(res.Err, want[i].err) && !errors.Is(want[i].err, res.Err) {
					t.Errorf("seed=%d workers=%d alg=%s: err = %v, want %v", seed, workers, algs[i].Name(), res.Err, want[i].err)
				}
			}
		}
	}
}

// TestAlternativesMatchesSequential is the speculative-engine differential
// suite: for every seed and worker count, the parallel stage-1 alternative
// search must be value-identical — per job, per alternative, per placement
// field — to the sequential CSA-and-cut loop.
func TestAlternativesMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= diffSeeds; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, rng.IntRange(4, 12), 4, 300)
		batch := testkit.RandomBatch(rng, rng.IntRange(2, 8))
		ordered := batch.ByPriority()
		opts := csa.Options{MaxAlternatives: rng.Intn(4), MinSlotLength: 1}

		want, wantErr := parallel.Alternatives(list, ordered, opts, 1)
		if wantErr != nil {
			t.Fatalf("seed=%d: sequential Alternatives failed: %v", seed, wantErr)
		}

		for _, workers := range workerCounts[1:] {
			got, err := parallel.Alternatives(list, ordered, opts, workers)
			if err != nil {
				t.Fatalf("seed=%d workers=%d: Alternatives failed: %v", seed, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d workers=%d: %d jobs, want %d", seed, workers, len(got), len(want))
			}
			for j := range want {
				gs, ws := testkit.WindowsSignature(got[j]), testkit.WindowsSignature(want[j])
				if gs != ws {
					t.Errorf("seed=%d workers=%d job=%v: alternatives diverged\n got: %s\nwant: %s",
						seed, workers, ordered[j], gs, ws)
				}
			}
		}
	}
}

// TestAlternativesDisjoint checks the cross-job invariant the cutting loop
// exists for: every alternative of every job is pairwise slot-disjoint with
// every other, under the parallel engine too.
func TestAlternativesDisjoint(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, 8, 4, 300)
		batch := testkit.RandomBatch(rng, 5)
		ordered := batch.ByPriority()
		opts := csa.Options{MaxAlternatives: 3, MinSlotLength: 1}

		alts, err := parallel.Alternatives(list, ordered, opts, 8)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		var all []*core.Window
		for _, ja := range alts {
			all = append(all, ja...)
		}
		if !csa.Disjoint(all) {
			t.Errorf("seed=%d: parallel alternatives are not pairwise disjoint", seed)
		}
	}
}

// TestAlternativesEmptyAndSingle pins the degenerate shapes: no jobs, one
// job, and an empty slot list must behave like the sequential loop.
func TestAlternativesEmptyAndSingle(t *testing.T) {
	rng := randx.New(7)
	list := testkit.RandomList(rng, 4, 3, 100)
	opts := csa.Options{MaxAlternatives: 2, MinSlotLength: 1}

	if got, err := parallel.Alternatives(list, nil, opts, 8); err != nil || len(got) != 0 {
		t.Fatalf("no jobs: got %v, %v", got, err)
	}

	batch := testkit.RandomBatch(rng, 1)
	ordered := batch.ByPriority()
	want, _ := parallel.Alternatives(list, ordered, opts, 1)
	got, err := parallel.Alternatives(list, ordered, opts, 8)
	if err != nil {
		t.Fatalf("single job: %v", err)
	}
	if testkit.WindowsSignature(got[0]) != testkit.WindowsSignature(want[0]) {
		t.Fatalf("single job diverged")
	}

	got, err = parallel.Alternatives(slots.List{}, ordered, opts, 8)
	if err != nil {
		t.Fatalf("empty list: %v", err)
	}
	if len(got) != 1 || got[0] != nil {
		t.Fatalf("empty list: got %v, want one nil alternative set", got)
	}
}

// TestFindAllIncrementalMatchesOracle runs the kernel differential under
// the parallel engine: FindAll over the shipped (incremental WindowIndex)
// algorithms must be value-identical to FindAll over their copy+sort oracle
// twins, for every seed and worker count. Concurrent scans share the slot
// list but each owns its index, so worker count must never leak into the
// selected windows.
func TestFindAllIncrementalMatchesOracle(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, rng.IntRange(3, 10), 4, 200)
		req := randomRequest(rng)
		algs := findAllAlgs(seed)

		oracles := make([]core.Algorithm, len(algs))
		for i, alg := range algs {
			twin, ok := core.Oracle(alg)
			if !ok {
				t.Fatalf("no oracle twin for %s", alg.Name())
			}
			oracles[i] = twin
		}

		for _, workers := range workerCounts {
			inc := parallel.FindAll(list, &req, algs, workers)
			orc := parallel.FindAll(list, &req, oracles, workers)
			for i := range algs {
				if (inc[i].Err == nil) != (orc[i].Err == nil) {
					t.Fatalf("seed=%d workers=%d alg=%s: feasibility diverged: incremental err=%v, oracle err=%v",
						seed, workers, algs[i].Name(), inc[i].Err, orc[i].Err)
				}
				is, os := testkit.WindowSignature(inc[i].Window), testkit.WindowSignature(orc[i].Window)
				if is != os {
					t.Errorf("seed=%d workers=%d alg=%s: incremental and oracle windows diverged\nincremental: %s\noracle:      %s",
						seed, workers, algs[i].Name(), is, os)
				}
			}
		}
	}
}
