// Package parallel is the concurrent scheduling engine: worker-pool
// primitives shared by every fan-out layer of the library, a deterministic
// multi-algorithm search over one shared slot list (FindAll), and a
// speculative, determinism-preserving parallel CSA alternative search used
// by the two-stage batch scheduler (Alternatives).
//
// Everything in this package preserves the sequential semantics bit for
// bit: for any worker count the merged output is identical (by value) to
// the corresponding sequential loop. Parallelism changes wall-clock time
// only, never results — the property the differential test suite enforces
// seed by seed.
//
// The engine relies on the immutability contract documented on slots.List:
// slot lists and the slots and nodes they reference are never mutated
// during a search, and the cutting operation (slots.Cut) is persistent —
// it returns a new list and leaves its input intact. Snapshots of a slot
// list are therefore plain slice references, free to share across
// goroutines.
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count option: values <= 0 select
// GOMAXPROCS(0), so "-workers 0" on the CLI means "use every core the
// runtime was given".
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across up to workers goroutines
// and waits for completion. Iterations are distributed in round-robin
// strides, so the index->worker assignment is a pure function of (n,
// workers) — schedulers above rely on that to keep per-index work
// deterministic. With workers <= 1 (after normalization against n) the
// loop runs inline with no goroutine overhead.
//
// fn must confine its writes to per-index state (e.g. out[i]); ForEach
// provides the happens-before edge between all fn calls and its return.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < n; i += workers {
				fn(i)
			}
		}(wk)
	}
	wg.Wait()
}

// ForEachWorker launches fn(wk) once per worker id in [0, workers) and
// waits. It is the sharded-accumulator shape: each worker owns private
// state keyed by its id, and the caller merges the shards after return in
// worker-id order so the merged result does not depend on scheduling.
// With workers <= 1 fn(0) runs inline.
func ForEachWorker(workers int, fn func(wk int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			fn(wk)
		}(wk)
	}
	wg.Wait()
}
