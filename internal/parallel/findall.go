package parallel

import (
	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// Result is the outcome of one algorithm's search within FindAll, in the
// same position as the algorithm held in the input slice.
type Result struct {
	// Algorithm is the algorithm that produced this result.
	Algorithm core.Algorithm

	// Window is the found window; nil when Err is non-nil.
	Window *core.Window

	// Err is the search error: core.ErrNoWindow when no feasible window
	// exists, another error for invalid input.
	Err error
}

// FindAll runs every algorithm concurrently over one shared immutable slot
// list and returns the per-algorithm results merged in input order.
//
// Determinism: each algorithm's Find is a pure function of (list, req) —
// the list is never written during a search (see the slots.List contract)
// and every algorithm receives a private copy of the request — so out[i]
// does not depend on scheduling, and the merged slice is identical to the
// sequential loop
//
//	for i, a := range algs { out[i].Window, out[i].Err = a.Find(list, req) }
//
// for any worker count. workers <= 0 selects GOMAXPROCS.
func FindAll(list slots.List, req *job.Request, algs []core.Algorithm, workers int) []Result {
	return FindAllObserved(list, req, algs, workers, nil)
}

// FindAllObserved is FindAll with instrumentation: every algorithm's search
// emits its selection stats, span and scan counters to col. Because the
// same searches run regardless of the worker count, every counter delivered
// through this path is worker-count-invariant (the differential tests
// enforce this). col == nil behaves exactly like FindAll.
func FindAllObserved(list slots.List, req *job.Request, algs []core.Algorithm, workers int, col obs.Collector) []Result {
	out := make([]Result, len(algs))
	workers = Workers(workers)
	if workers > len(algs) {
		workers = len(algs)
	}
	// One scanner per worker, never shared across goroutines: each worker
	// amortizes its searches onto its own recycled state, and the
	// index-to-worker assignment is ForEach's round-robin stride, so the
	// merged slice is position-identical to the sequential loop.
	ForEachWorker(workers, func(wk int) {
		sc := core.AcquireScanner()
		defer core.ReleaseScanner(sc)
		r := *req // private copy: keep concurrent searches free of shared request state
		for i := wk; i < len(algs); i += workers {
			w, err := core.FindObservedScanner(sc, algs[i], list, &r, col)
			if w != nil {
				w = w.Detach() // scanner-owned result; out lives past the scanner
			}
			out[i] = Result{Algorithm: algs[i], Window: w, Err: err}
		}
	})
	return out
}
