package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// JobError attributes a stage-1 search failure to the job whose CSA search
// produced it, so callers can reproduce the sequential error message: the
// reported job is always the FIRST failing job in priority order, no
// matter which speculation failed first in wall-clock time.
type JobError struct {
	Job *job.Job
	Err error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("job %v: %v", e.Job, e.Err) }

// Unwrap exposes the underlying search error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Alternatives runs the stage-1 CSA alternative search for the given jobs
// (already in priority order) over a shared slot list, cutting every found
// alternative so all alternatives of all jobs are pairwise disjoint by
// slots — the exact semantics of the sequential loop
//
//	work := list.Clone()
//	for i, j := range ordered {
//	        out[i], _ = csa.Search(work, &j.Request, opts)
//	        for _, w := range out[i] { work = slots.Cut(work, w.UsedIntervals(), opts.MinSlotLength) }
//	}
//
// parallelized by speculation with a deterministic commit order (see
// alternativesSpec). Jobs for which no window exists get a nil alternative
// slice. For any worker count the output is identical, by value, to the
// sequential path; workers <= 1 runs the sequential loop itself.
func Alternatives(list slots.List, ordered []*job.Job, opts csa.Options, workers int) ([][]*core.Window, error) {
	return AlternativesObserved(list, ordered, opts, workers, nil)
}

// AlternativesObserved is Alternatives with instrumentation: on success it
// publishes one obs.BatchStats to col describing both the committed output
// (Jobs, AltsFound, CutOps — worker-count-invariant by the determinism
// guarantee) and the speculative work spent producing it (SpecRuns,
// SpecCommitted, SpecDiscarded, Relaunches, TasksCut, per-worker busy
// time — wall-clock work accounting that may vary run to run when
// workers > 1). Worker task executions and master commits are additionally
// recorded as "spec"/"commit" spans. Scan-level counters emitted through
// col describe the work actually performed, speculative re-runs included,
// so they are NOT worker-count-invariant on this path; the committed
// quantities in BatchStats are. col == nil behaves exactly like
// Alternatives.
func AlternativesObserved(list slots.List, ordered []*job.Job, opts csa.Options, workers int, col obs.Collector) ([][]*core.Window, error) {
	if workers = Workers(workers); workers <= 1 || len(ordered) <= 1 {
		return alternativesSeq(list, ordered, opts, col)
	}
	return alternativesSpec(list, ordered, opts, workers, col)
}

// alternativesSeq is the reference sequential implementation; the
// speculative engine must match it bit for bit.
func alternativesSeq(list slots.List, ordered []*job.Job, opts csa.Options, col obs.Collector) ([][]*core.Window, error) {
	var begin time.Duration
	if col != nil {
		begin = obs.Now()
	}
	var st obs.BatchStats
	work := list.Clone()
	out := make([][]*core.Window, len(ordered))
	// One scanner for the whole sequential pass: every per-job CSA search
	// reuses the same recycled working copy.
	sc := core.AcquireScanner()
	defer core.ReleaseScanner(sc)
	for i, j := range ordered {
		alts, err := csa.SearchScanner(sc, work, &j.Request, opts, col)
		if err != nil && !errors.Is(err, core.ErrNoWindow) {
			return nil, &JobError{Job: j, Err: err}
		}
		out[i] = alts
		st.AltsFound += len(alts)
		for _, w := range alts {
			work = slots.Cut(work, w.UsedIntervals(), opts.MinSlotLength)
			st.CutOps++
		}
	}
	if col != nil {
		elapsed := obs.Now() - begin
		st.Jobs = len(ordered)
		st.Workers = 1
		st.SpecRuns = len(ordered)      // one authoritative search per job
		st.SpecCommitted = len(ordered) // nothing speculative to discard
		st.WorkerBusy = []time.Duration{elapsed}
		st.Elapsed = elapsed
		col.BatchDone(st)
	}
	return out, nil
}

// specTask asks a worker to search job jobIdx's alternatives on snapshot,
// a slot list that reflects the cuts of the first gen committed jobs.
type specTask struct {
	jobIdx   int
	gen      int
	snapshot slots.List
}

// specResult is a completed speculation for one job.
type specResult struct {
	gen  int
	alts []*core.Window
	err  error
}

// alternativesSpec is the speculative parallel engine. Shape:
//
//   - A master goroutine owns the authoritative work list and commits jobs
//     strictly in input (priority) order; generation g means "the cuts of
//     jobs 0..g-1 are applied".
//   - Workers execute csa.Search speculatively: initially every job is
//     searched against the generation-0 snapshot; whenever a commit cuts a
//     node that a pending job's request matches, that job is relaunched
//     against the newest snapshot.
//   - At commit time the master takes the job's most recent speculation and
//     validates it: a result computed at generation g is accepted at
//     generation j iff no job committed in [g, j) cut a slot on a node the
//     request matches. Otherwise the master recomputes inline on the
//     authoritative list (a belt-and-braces path; the relaunch rule above
//     already guarantees the newest speculation is valid).
//
// DETERMINISM PROOF. The sequential result for job j is F(L_j) where
// F = csa.Search with the job's request and L_j is the authoritative list
// after the cuts of jobs 0..j-1, and where every operation (search, cut,
// sort) is deterministic. The engine returns either F(L_j) computed inline
// (trivially identical) or a speculation F(L_g), g <= j, accepted under
// the validation rule. Acceptance soundness rests on two facts:
//
//  1. F depends only on the sublist of slots whose node matches the
//     request: core.Scan skips non-matching slots before they contribute a
//     candidate or a scan position, and the cuts csa.Search applies
//     internally derive from windows placed on matching nodes only.
//     Ordering of the matching sublist is preserved because SortByStart's
//     comparator (start, node ID, end) is a total order on valid lists
//     (per-node slots cannot share a start), so equal slot multisets sort
//     identically regardless of surrounding slots.
//  2. If every cut committed in [g, j) lies on nodes the request does NOT
//     match, then L_g and L_j contain the very same matching slots: cuts
//     replace slots of non-matching nodes by shorter remainders on those
//     same nodes and never touch a matching slot.
//
// Together: validation passing implies the matching sublists of L_g and
// L_j are equal, hence F(L_g) = F(L_j) by value. The committed cuts are
// then applied to the authoritative list in the same job order and the
// same within-job discovery order as the sequential loop, so L_{j+1} is
// value-identical to its sequential counterpart by induction. Window
// placements reference slots of different clones across the two paths but
// are equal in every field value, which is what "identical results" means
// for windows everywhere in this library (and what the differential suite
// compares).
//
// LIVENESS. Every pushed task sends exactly one result on its job's
// channel; channels are buffered to the worst-case task count per job
// (1 initial + at most one relaunch per earlier commit), so workers never
// block on delivery and the master's receive always terminates. Stale
// results (an older generation than the job's newest speculation) are
// discarded on receipt; the queue also drops superseded and
// already-committed tasks at pop time to keep workers off dead work.
func alternativesSpec(list slots.List, ordered []*job.Job, opts csa.Options, workers int, col obs.Collector) ([][]*core.Window, error) {
	k := len(ordered)
	if workers > k {
		workers = k
	}
	var begin time.Duration
	if col != nil {
		begin = obs.Now()
	}

	results := make([]chan specResult, k)
	for j := range results {
		results[j] = make(chan specResult, k)
	}

	q := newSpecQueue(k)
	// Searches run on a caller-provided scanner so each worker goroutine
	// (and the master's inline path) reuses its own recycled state; scanners
	// are never shared across goroutines. CSA copies the snapshot's slot
	// values into the scanner before cutting, so the shared immutable
	// snapshots are never mutated.
	search := func(sc *core.Scanner, snapshot slots.List, j int) ([]*core.Window, error) {
		alts, err := csa.SearchScanner(sc, snapshot, &ordered[j].Request, opts, col)
		if errors.Is(err, core.ErrNoWindow) {
			return nil, nil // no window is a valid empty alternative set
		}
		return alts, err
	}

	// Per-worker work accounting, indexed by worker id. Each slot is written
	// only by its own goroutine and read by the master after wg.Wait, so no
	// further synchronization is needed.
	busy := make([]time.Duration, workers)
	runs := make([]int, workers)

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			sc := core.AcquireScanner()
			defer core.ReleaseScanner(sc)
			for {
				tk, ok := q.pop()
				if !ok {
					return
				}
				var t0 time.Duration
				if col != nil {
					t0 = obs.Now()
				}
				alts, err := search(sc, tk.snapshot, tk.jobIdx)
				runs[wk]++
				if col != nil {
					d := obs.Now() - t0
					busy[wk] += d
					col.Span(obs.Span{
						Name:  fmt.Sprintf("speculate job %d", tk.jobIdx),
						Cat:   "spec",
						Tid:   wk + 1,
						Start: t0,
						Dur:   d,
						Arg:   fmt.Sprintf("gen=%d", tk.gen),
					})
				}
				results[tk.jobIdx] <- specResult{gen: tk.gen, alts: alts, err: err}
			}
		}(wk)
	}
	var shutdownOnce sync.Once
	shutdown := func() {
		shutdownOnce.Do(func() {
			q.close()
			wg.Wait()
		})
	}
	defer shutdown() // error paths; the success path shuts down explicitly

	work := list.Clone()
	cutNodes := make([][]*nodes.Node, 0, k) // per committed job: distinct nodes its cuts touched
	out := make([][]*core.Window, k)
	var st obs.BatchStats

	for j := 0; j < k; j++ {
		q.push(specTask{jobIdx: j, gen: 0, snapshot: work})
	}

	for j := 0; j < k; j++ {
		res := <-results[j]
		for res.gen < q.newestGen(j) {
			res = <-results[j] // discard speculations superseded by a relaunch
		}
		if !specValid(res.gen, &ordered[j].Request, cutNodes) {
			// Authoritative inline recomputation on the current list. The
			// relaunch rule makes this unreachable, but correctness must
			// not depend on that optimization.
			msc := core.AcquireScanner()
			alts, err := search(msc, work, j)
			core.ReleaseScanner(msc)
			st.InlineRecomputes++
			res = specResult{gen: len(cutNodes), alts: alts, err: err}
		}
		if res.err != nil {
			return nil, &JobError{Job: ordered[j], Err: res.err}
		}
		out[j] = res.alts
		q.markCommitted(j + 1)

		var commitStart time.Duration
		if col != nil {
			commitStart = obs.Now()
		}

		// Commit: apply the cuts in discovery order (matching the
		// sequential loop exactly) and record the touched nodes.
		var cut []*nodes.Node
		seen := make(map[int]bool)
		for _, w := range res.alts {
			work = slots.Cut(work, w.UsedIntervals(), opts.MinSlotLength)
			st.CutOps++
			for _, p := range w.Placements {
				if n := p.Node(); !seen[n.ID] {
					seen[n.ID] = true
					cut = append(cut, n)
				}
			}
		}
		cutNodes = append(cutNodes, cut)
		st.AltsFound += len(res.alts)

		// Relaunch every pending job whose newest speculation these cuts
		// invalidate, against the new authoritative snapshot.
		if len(cut) > 0 {
			gen := len(cutNodes)
			for t := j + 1; t < k; t++ {
				if reqMatchesAny(&ordered[t].Request, cut) {
					q.relaunch(specTask{jobIdx: t, gen: gen, snapshot: work})
					st.Relaunches++
				}
			}
		}
		if col != nil {
			col.Span(obs.Span{
				Name:  fmt.Sprintf("commit job %d", j),
				Cat:   "commit",
				Start: commitStart,
				Dur:   obs.Now() - commitStart,
				Arg:   fmt.Sprintf("alts=%d", len(res.alts)),
			})
		}
	}

	// Shut the pool down before reading the per-worker accounting: the
	// slices are complete only once every worker has returned, and the
	// total-executed count must include speculations still in flight at the
	// last commit (their results are simply never received).
	shutdown()
	if col != nil {
		st.Jobs = k
		st.Workers = workers
		for _, r := range runs {
			st.SpecRuns += r
		}
		st.SpecCommitted = k - st.InlineRecomputes
		st.SpecDiscarded = st.SpecRuns - st.SpecCommitted
		st.TasksCut = q.droppedCount()
		st.WorkerBusy = busy
		st.Elapsed = obs.Now() - begin
		col.BatchDone(st)
	}
	return out, nil
}

// specValid reports whether a speculation computed at generation gen is
// exact at commit time: no later-committed job may have cut a node the
// request matches (see the proof on alternativesSpec).
func specValid(gen int, req *job.Request, cutNodes [][]*nodes.Node) bool {
	for g := gen; g < len(cutNodes); g++ {
		if reqMatchesAny(req, cutNodes[g]) {
			return false
		}
	}
	return true
}

func reqMatchesAny(req *job.Request, ns []*nodes.Node) bool {
	for _, n := range ns {
		if req.Matches(n) {
			return true
		}
	}
	return false
}

// specQueue is the engine's priority task queue. pop prefers the pending
// task with the smallest job index (the next commit blocks on it) and,
// within a job, the newest generation; superseded and already-committed
// tasks are dropped unexecuted.
type specQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	tasks     []specTask
	closed    bool
	committed int
	newest    []int // newest pushed generation per job
	dropped   int   // tasks dropped unexecuted (superseded or committed)
}

func newSpecQueue(jobs int) *specQueue {
	q := &specQueue{newest: make([]int, jobs)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *specQueue) push(t specTask) {
	q.mu.Lock()
	if t.gen > q.newest[t.jobIdx] {
		q.newest[t.jobIdx] = t.gen
	}
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
	q.cond.Signal()
}

// relaunch pushes a replacement speculation; identical to push but named
// for the call sites where a commit invalidated the previous one.
func (q *specQueue) relaunch(t specTask) { q.push(t) }

// newestGen returns the generation of the newest speculation requested for
// the job. Only the master calls it, after all relaunches for that job
// have been issued, so the value is final.
func (q *specQueue) newestGen(jobIdx int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.newest[jobIdx]
}

// markCommitted lets pop drop tasks for jobs at index < n.
func (q *specQueue) markCommitted(n int) {
	q.mu.Lock()
	q.committed = n
	q.mu.Unlock()
}

func (q *specQueue) pop() (specTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		best := -1
		kept := q.tasks[:0]
		for _, t := range q.tasks {
			if t.jobIdx < q.committed || t.gen < q.newest[t.jobIdx] {
				q.dropped++
				continue // committed or superseded: drop unexecuted
			}
			kept = append(kept, t)
			i := len(kept) - 1
			if best < 0 || kept[i].jobIdx < kept[best].jobIdx ||
				(kept[i].jobIdx == kept[best].jobIdx && kept[i].gen > kept[best].gen) {
				best = i
			}
		}
		q.tasks = kept
		if best >= 0 {
			t := q.tasks[best]
			q.tasks[best] = q.tasks[len(q.tasks)-1]
			q.tasks = q.tasks[:len(q.tasks)-1]
			return t, true
		}
		if q.closed {
			return specTask{}, false
		}
		q.cond.Wait()
	}
}

// droppedCount returns how many queued tasks were dropped unexecuted.
// Note: tasks still queued when the pool shuts down are not counted —
// after the final commit markCommitted has made every remaining task
// droppable, and the drained workers pop (and count) them on their way
// out only if they get one more pop in before close.
func (q *specQueue) droppedCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

func (q *specQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
