package csa

import (
	"errors"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
	"slotsel/internal/testkit"
)

// TestSearchScannerMatchesCloneCut is the in-place-cutting differential:
// the scanner path (one mutable working copy, CutWindow interval edits)
// must produce window-for-window identical alternatives to the reference
// clone-and-rebuild loop the pre-scanner implementation ran, across many
// random instances, budgets and minimum slot lengths.
func TestSearchScannerMatchesCloneCut(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		rng := randx.New(seed)
		list := testkit.RandomList(rng, 8, 4, 300)
		req := job.Request{
			TaskCount: rng.IntRange(1, 4),
			Volume:    float64(rng.IntRange(40, 120)),
			MaxCost:   float64(rng.IntRange(100, 900)),
		}
		opts := Options{
			MaxAlternatives: rng.Intn(4), // 0 = unbounded
			MinSlotLength:   float64(rng.Intn(3)) * 5,
		}

		// Reference: the pre-scanner semantics, spelled out.
		refAlts, refErr := func() ([]*core.Window, error) {
			work := list.Clone()
			amp := core.AMP{}
			var alts []*core.Window
			for opts.MaxAlternatives <= 0 || len(alts) < opts.MaxAlternatives {
				w, err := amp.Find(work, &req)
				if errors.Is(err, core.ErrNoWindow) {
					break
				}
				if err != nil {
					return nil, err
				}
				alts = append(alts, w)
				work = slots.Cut(work, w.UsedIntervals(), opts.MinSlotLength)
			}
			if len(alts) == 0 {
				return nil, core.ErrNoWindow
			}
			return alts, nil
		}()

		sc := core.AcquireScanner()
		gotAlts, gotErr := SearchScanner(sc, list, &req, opts, nil)
		core.ReleaseScanner(sc)

		if (refErr == nil) != (gotErr == nil) || (refErr != nil && !errors.Is(gotErr, refErr)) {
			t.Fatalf("seed %d: errors diverged: ref=%v scanner=%v", seed, refErr, gotErr)
		}
		ref, got := testkit.WindowsSignature(refAlts), testkit.WindowsSignature(gotAlts)
		if ref != got {
			t.Errorf("seed %d: alternative sets diverged\nref:\n%s\nscanner:\n%s", seed, ref, got)
		}
	}
}

// TestSearchScannerRepeatedReuse runs many CSA searches on one scanner
// back to back and checks each against a throwaway-scanner run: the
// working copy, arena and result state must fully recycle between
// searches.
func TestSearchScannerRepeatedReuse(t *testing.T) {
	shared := core.AcquireScanner()
	defer core.ReleaseScanner(shared)
	for seed := uint64(1); seed <= 30; seed++ {
		rng := randx.New(seed)
		list := testkit.RandomList(rng, 8, 4, 300)
		req := job.Request{TaskCount: 2, Volume: 60, MaxCost: 500}
		opts := Options{MinSlotLength: 5}

		wantAlts, wantErr := Search(list, &req, opts)
		gotAlts, gotErr := SearchScanner(shared, list, &req, opts, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: errors diverged: %v vs %v", seed, wantErr, gotErr)
		}
		if w, g := testkit.WindowsSignature(wantAlts), testkit.WindowsSignature(gotAlts); w != g {
			t.Errorf("seed %d: reused scanner diverged\nwant:\n%s\ngot:\n%s", seed, w, g)
		}
	}
}

// TestSearchValidatesBeforeWork pins the validation hoist: an invalid
// request is rejected by every CSA entry point before any search state is
// touched — same error as the request's own Validate, no panic, no
// partial result.
func TestSearchValidatesBeforeWork(t *testing.T) {
	list := testkit.SmallEnv(1, 10, 300).Slots
	bad := []job.Request{
		{TaskCount: 0, Volume: 60},
		{TaskCount: -1, Volume: 60},
		{TaskCount: 2, Volume: 0},
		{TaskCount: 2, Volume: -5},
	}
	sc := core.AcquireScanner()
	defer core.ReleaseScanner(sc)
	for i, req := range bad {
		r := req
		wantErr := r.Validate()
		if wantErr == nil {
			t.Fatalf("case %d: fixture request unexpectedly valid", i)
		}
		if _, err := Search(list, &r, Options{}); err == nil || err.Error() != wantErr.Error() {
			t.Errorf("case %d: Search error = %v, want %v", i, err, wantErr)
		}
		if _, err := SearchScanner(sc, list, &r, Options{}, nil); err == nil || err.Error() != wantErr.Error() {
			t.Errorf("case %d: SearchScanner error = %v, want %v", i, err, wantErr)
		}
	}
}

// TestSearchScannerAllocs gates the clone-free loop: on a warmed-up
// scanner the only steady-state allocations are the detached alternatives
// themselves (per alternative: a Window struct, its placements array and
// one slot struct per placement) plus the growth of the returned slice —
// the per-search O(m) list clone is gone.
func TestSearchScannerAllocs(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	rng := randx.New(5)
	list := testkit.RandomList(rng, 12, 4, 400)
	req := job.Request{TaskCount: 2, Volume: 60, MaxCost: 1000}
	opts := Options{MinSlotLength: 5}
	sc := core.AcquireScanner()
	defer core.ReleaseScanner(sc)
	r := req
	alts, err := SearchScanner(sc, list, &r, opts, nil)
	if err != nil {
		t.Fatalf("warm-up search failed: %v", err)
	}
	nAlts := len(alts)
	// Per alternative: Window struct + placements array + TaskCount slot
	// structs (DetachDeep). Plus ~log2 slice growth for the result slice.
	budget := float64(nAlts*(2+req.TaskCount) + 8)
	got := testing.AllocsPerRun(30, func() {
		_, _ = SearchScanner(sc, list, &r, opts, nil)
	})
	if got > budget {
		t.Errorf("SearchScanner: %v allocs/op for %d alternatives, budget %v", got, nAlts, budget)
	}
}
