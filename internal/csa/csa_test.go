package csa

import (
	"errors"
	"math"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

func smallRequest() job.Request {
	return job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}
}

func TestSearchFindsDisjointAlternatives(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		e := testkit.SmallEnv(seed, 15, 300)
		req := smallRequest()
		alts, err := Search(e.Slots, &req, Options{MinSlotLength: 10})
		if errors.Is(err, core.ErrNoWindow) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(alts) == 0 {
			t.Fatal("empty alternative set without ErrNoWindow")
		}
		if !Disjoint(alts) {
			t.Fatalf("seed %d: alternatives overlap", seed)
		}
		for i, w := range alts {
			if verr := w.Validate(&req); verr != nil {
				t.Fatalf("seed %d: alternative %d invalid: %v", seed, i, verr)
			}
		}
	}
}

func TestSearchDoesNotMutateInput(t *testing.T) {
	e := testkit.SmallEnv(3, 15, 300)
	req := smallRequest()
	before := make([]struct {
		start, end float64
	}, len(e.Slots))
	for i, s := range e.Slots {
		before[i].start, before[i].end = s.Start, s.End
	}
	if _, err := Search(e.Slots, &req, Options{MinSlotLength: 10}); err != nil && !errors.Is(err, core.ErrNoWindow) {
		t.Fatal(err)
	}
	for i, s := range e.Slots {
		if s.Start != before[i].start || s.End != before[i].end {
			t.Fatalf("slot %d mutated by Search", i)
		}
	}
}

func TestFirstAlternativeEqualsAMP(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		e := testkit.SmallEnv(seed, 15, 300)
		req := smallRequest()
		alts, errC := Search(e.Slots, &req, Options{MinSlotLength: 10})
		w, errA := (core.AMP{}).Find(e.Slots, &req)
		if errors.Is(errC, core.ErrNoWindow) != errors.Is(errA, core.ErrNoWindow) {
			t.Fatalf("seed %d: CSA and AMP disagree on feasibility", seed)
		}
		if errC != nil {
			continue
		}
		if alts[0].Start != w.Start || math.Abs(alts[0].Cost-w.Cost) > 1e-9 {
			t.Fatalf("seed %d: first CSA alternative %v != AMP window %v", seed, alts[0], w)
		}
	}
}

func TestAlternativeStartsNonDecreasing(t *testing.T) {
	e := testkit.SmallEnv(7, 20, 400)
	req := smallRequest()
	alts, err := Search(e.Slots, &req, Options{MinSlotLength: 10})
	if err != nil {
		t.Skip("no alternatives on this seed")
	}
	for i := 1; i < len(alts); i++ {
		if alts[i].Start < alts[i-1].Start {
			t.Fatalf("alternative %d starts at %g before previous %g", i, alts[i].Start, alts[i-1].Start)
		}
	}
}

func TestMaxAlternativesBound(t *testing.T) {
	e := testkit.SmallEnv(9, 25, 500)
	req := smallRequest()
	all, err := Search(e.Slots, &req, Options{MinSlotLength: 10})
	if err != nil {
		t.Skip("no alternatives on this seed")
	}
	if len(all) < 3 {
		t.Skip("not enough alternatives to test the bound")
	}
	bounded, err := Search(e.Slots, &req, Options{MinSlotLength: 10, MaxAlternatives: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) != 2 {
		t.Fatalf("bound 2 returned %d alternatives", len(bounded))
	}
}

func TestSearchErrNoWindow(t *testing.T) {
	req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}
	if _, err := Search(nil, &req, Options{}); !errors.Is(err, core.ErrNoWindow) {
		t.Fatalf("empty list: %v, want ErrNoWindow", err)
	}
}

func TestSearchInvalidRequest(t *testing.T) {
	req := job.Request{TaskCount: 0, Volume: 60}
	if _, err := Search(nil, &req, Options{}); err == nil || errors.Is(err, core.ErrNoWindow) {
		t.Fatalf("invalid request: %v", err)
	}
}

func TestCriterionValues(t *testing.T) {
	n := testkit.Node(1, 5, 2)
	s := testkit.Slot(n, 0, 100)
	w := core.NewWindow(10, []core.Candidate{{Slot: s, Exec: 30, Cost: 60}})
	cases := []struct {
		c    Criterion
		want float64
	}{
		{ByStart, 10},
		{ByFinish, 40},
		{ByCost, 60},
		{ByRuntime, 30},
		{ByProcTime, 30},
	}
	for _, tc := range cases {
		if got := tc.c.Value(w); got != tc.want {
			t.Errorf("%s value = %g, want %g", tc.c, got, tc.want)
		}
	}
	if !math.IsNaN(Criterion(99).Value(w)) {
		t.Error("unknown criterion should yield NaN")
	}
}

func TestCriterionString(t *testing.T) {
	names := map[Criterion]string{
		ByStart: "start", ByFinish: "finish", ByCost: "cost",
		ByRuntime: "runtime", ByProcTime: "proctime", Criterion(99): "unknown",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
}

func TestBestSelection(t *testing.T) {
	n1, n2 := testkit.Node(1, 5, 2), testkit.Node(2, 5, 2)
	mk := func(start, exec, cost float64) *core.Window {
		s := testkit.Slot(n1, 0, 1000)
		s2 := testkit.Slot(n2, 0, 1000)
		return core.NewWindow(start, []core.Candidate{
			{Slot: s, Exec: exec, Cost: cost},
			{Slot: s2, Exec: exec / 2, Cost: cost / 2},
		})
	}
	a := mk(0, 40, 100) // start 0, finish 40, cost 150
	b := mk(10, 10, 80) // start 10, finish 20, cost 120
	c := mk(30, 20, 60) // start 30, finish 50, cost 90
	alts := []*core.Window{a, b, c}
	if got := Best(alts, ByStart); got != a {
		t.Errorf("Best by start picked %v", got)
	}
	if got := Best(alts, ByFinish); got != b {
		t.Errorf("Best by finish picked %v", got)
	}
	if got := Best(alts, ByCost); got != c {
		t.Errorf("Best by cost picked %v", got)
	}
	if got := Best(nil, ByCost); got != nil {
		t.Errorf("Best of empty set = %v", got)
	}
}

func TestBestTieResolvesToEarliest(t *testing.T) {
	n1, n2 := testkit.Node(1, 5, 2), testkit.Node(2, 5, 2)
	mk := func(start float64) *core.Window {
		return core.NewWindow(start, []core.Candidate{
			{Slot: testkit.Slot(n1, 0, 1000), Exec: 10, Cost: 50},
		})
	}
	a, b := mk(0), mk(5)
	// Same cost: the earliest-found must win.
	if got := Best([]*core.Window{a, b}, ByCost); got != a {
		t.Errorf("tie not resolved to first alternative")
	}
	_ = n2
}

func TestDisjointDetectsOverlap(t *testing.T) {
	n := testkit.Node(1, 5, 2)
	s := testkit.Slot(n, 0, 1000)
	w1 := core.NewWindow(0, []core.Candidate{{Slot: s, Exec: 30, Cost: 60}})
	w2 := core.NewWindow(20, []core.Candidate{{Slot: s, Exec: 30, Cost: 60}})
	if Disjoint([]*core.Window{w1, w2}) {
		t.Error("overlapping windows reported disjoint")
	}
	w3 := core.NewWindow(30, []core.Candidate{{Slot: s, Exec: 30, Cost: 60}})
	if !Disjoint([]*core.Window{w1, w3}) {
		t.Error("touching windows reported overlapping")
	}
}

func TestAlternativeCountGrowsWithResources(t *testing.T) {
	req := smallRequest()
	count := func(nodes int) int {
		total := 0
		for seed := uint64(1); seed <= 5; seed++ {
			e := testkit.SmallEnv(seed, nodes, 300)
			alts, err := Search(e.Slots, &req, Options{MinSlotLength: 10})
			if err == nil {
				total += len(alts)
			}
		}
		return total
	}
	small, big := count(10), count(30)
	if big <= small {
		t.Errorf("alternatives did not grow with node count: %d (10 nodes) vs %d (30 nodes)", small, big)
	}
}

func TestSearchDeterministic(t *testing.T) {
	e := testkit.SmallEnv(11, 15, 300)
	req := smallRequest()
	a, errA := Search(e.Slots, &req, Options{MinSlotLength: 10})
	b, errB := Search(e.Slots, &req, Options{MinSlotLength: 10})
	if (errA == nil) != (errB == nil) {
		t.Fatal("determinism broken on feasibility")
	}
	if errA != nil {
		return
	}
	if len(a) != len(b) {
		t.Fatalf("alternative counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Cost != b[i].Cost {
			t.Fatalf("alternative %d differs between runs", i)
		}
	}
	_ = randx.New(0)
}
