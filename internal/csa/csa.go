// Package csa implements the "Common Stats, AMP" scheme (CSA): the search
// for multiple alternative windows for one job, obtained by repeated runs of
// the AMP earliest-start procedure, cutting every allocated window out of
// the slot list so that successive alternatives are pairwise disjoint by
// slots.
//
// The alternatives are the raw material of the two-stage batch scheduling
// scheme: optimization happens at the *selection* phase, by picking the
// alternative that is extreme by the criterion of interest.
package csa

import (
	"errors"
	"fmt"
	"math"
	"time"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// Options configures the CSA search.
type Options struct {
	// MaxAlternatives bounds the number of alternatives found; 0 means
	// unbounded (search until AMP finds no further window).
	MaxAlternatives int

	// MinSlotLength suppresses slot remainders shorter than this when
	// cutting allocated windows out of the list; it should match the
	// environment's published minimum slot length.
	MinSlotLength float64
}

// Search runs AMP repeatedly over a working copy of the slot list, cutting
// each found window's reserved spans before the next run, and returns all
// alternatives found in discovery order (non-decreasing start time). The
// input list is not modified.
//
// An empty result (no feasible window at all) is reported as
// core.ErrNoWindow to match the single-window algorithms.
func Search(list slots.List, req *job.Request, opts Options) ([]*core.Window, error) {
	return SearchObserved(list, req, opts, nil)
}

// SearchObserved is Search with instrumentation: the repeated AMP runs emit
// their scan counters to col, and the whole alternative search is recorded
// as one "csa" span carrying the alternative count. col == nil behaves
// exactly like Search.
func SearchObserved(list slots.List, req *job.Request, opts Options, col obs.Collector) ([]*core.Window, error) {
	// Validate before borrowing any search state so rejecting an invalid
	// request performs no allocation work at all.
	if err := req.Validate(); err != nil {
		return nil, err
	}
	sc := core.AcquireScanner()
	defer core.ReleaseScanner(sc)
	return searchScanner(sc, list, req, opts, col)
}

// SearchScanner is SearchObserved on a caller-provided Scanner: the search
// runs entirely on sc's recycled working copy, so a long-lived caller (a
// parallel speculation worker, the inventory's ReserveBest) amortizes the
// per-search slot-list clone away. The returned alternatives are detached
// copies — caller-owned, unaffected by sc's reuse.
func SearchScanner(sc *core.Scanner, list slots.List, req *job.Request, opts Options, col obs.Collector) ([]*core.Window, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return searchScanner(sc, list, req, opts, col)
}

// searchScanner is the CSA loop on scanner-owned state: instead of cloning
// the slot list per search and rebuilding it per cut, the scanner holds
// one mutable working copy (BeginWork) and each found window's spans are
// cut out of it in place (CutWindow). Each alternative is deep-detached
// BEFORE cutting, because the scanner-owned result window aliases the very
// working slots the cut mutates.
func searchScanner(sc *core.Scanner, list slots.List, req *job.Request, opts Options, col obs.Collector) ([]*core.Window, error) {
	var begin time.Duration
	if col != nil {
		begin = obs.Now()
	}
	sc.BeginWork(list)
	amp := core.AMP{}
	var alts []*core.Window
	for opts.MaxAlternatives <= 0 || len(alts) < opts.MaxAlternatives {
		w, err := sc.FindObserved(amp, sc.Work(), req, col)
		if errors.Is(err, core.ErrNoWindow) {
			break
		}
		if err != nil {
			return nil, err
		}
		alts = append(alts, w.DetachDeep())
		sc.CutWindow(w, opts.MinSlotLength)
	}
	if col != nil {
		col.Span(obs.Span{
			Name:  "csa.Search",
			Cat:   "csa",
			Start: begin,
			Dur:   obs.Now() - begin,
			Arg:   fmt.Sprintf("alts=%d", len(alts)),
		})
	}
	if len(alts) == 0 {
		return nil, core.ErrNoWindow
	}
	return alts, nil
}

// Criterion identifies the window characteristic by which the best
// alternative is selected; the optimization takes place at the selection
// phase, not during the search.
type Criterion int

// The selection criteria of the paper's experimental study.
const (
	ByStart Criterion = iota
	ByFinish
	ByCost
	ByRuntime
	ByProcTime
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case ByStart:
		return "start"
	case ByFinish:
		return "finish"
	case ByCost:
		return "cost"
	case ByRuntime:
		return "runtime"
	case ByProcTime:
		return "proctime"
	}
	return "unknown"
}

// Value extracts the criterion value from a window.
func (c Criterion) Value(w *core.Window) float64 {
	switch c {
	case ByStart:
		return w.Start
	case ByFinish:
		return w.Finish()
	case ByCost:
		return w.Cost
	case ByRuntime:
		return w.Runtime
	case ByProcTime:
		return w.ProcTime
	}
	return math.NaN()
}

// Best returns the alternative with the minimum criterion value, or nil for
// an empty set. Ties resolve to the earliest-found alternative, matching
// the sequential selection process.
func Best(alts []*core.Window, c Criterion) *core.Window {
	var best *core.Window
	bestVal := math.Inf(1)
	for _, w := range alts {
		if v := c.Value(w); v < bestVal {
			best, bestVal = w, v
		}
	}
	return best
}

// Disjoint reports whether the alternatives are pairwise non-overlapping in
// their node-time usage — the defining property of the CSA alternative set.
func Disjoint(alts []*core.Window) bool {
	type usage struct {
		node int
		iv   slots.Interval
	}
	var all []usage
	for _, w := range alts {
		for _, p := range w.Placements {
			u := usage{node: p.Node().ID, iv: p.Used()}
			for _, prev := range all {
				if prev.node == u.node && prev.iv.Overlaps(u.iv) {
					return false
				}
			}
			all = append(all, u)
		}
	}
	return true
}
