// Package telemetry is the production metrics layer of the scheduling
// service: a zero-dependency (stdlib-only) registry of counters, gauges and
// fixed-bucket histograms exposed in the Prometheus text exposition format
// (the `GET /metricsz` endpoint of cmd/slotserve).
//
// The package complements internal/obs rather than replacing it: obs
// defines the event seam the scheduling kernels emit into (per-scan and
// per-search event structs, nil-collector = off), while telemetry is a
// *sink* — Collector in this package adapts obs events into registry
// metrics, so scan/select/CSA counters surface on /metricsz without the
// kernels knowing metrics exist. /v1/statusz (point-in-time JSON for
// humans and the slotlab oracle) and /metricsz (scrapeable time series for
// monitoring) deliberately coexist; internal/slotlab cross-checks that the
// two surfaces agree after every scenario.
//
// # Hot-path discipline
//
// Read-modify-write operations never take a lock: Counter.Add and
// Gauge.Set are single atomic operations, Histogram.Observe is one atomic
// bucket increment plus a CAS loop on the float sum, and vector lookups
// (CounterVec.With / HistogramVec.With) are an RLock-guarded map hit with
// a fixed-size array key — no allocation on the hit path. Registration
// (the only write-locked path) happens once at wiring time. The whole
// package is safe for concurrent use.
//
// # Naming
//
// Metric names follow the Prometheus conventions: `snake_case`, a
// `slotsel_` prefix for everything this repo exports, `_total` suffix on
// counters, base units (seconds, bytes) for histograms.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType is the exposition TYPE of one metric family.
type MetricType string

// The exposition types used by this package.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// maxLabels is the label-arity bound of vector metrics. Two labels cover
// every vector in the stack (endpoint x status, algorithm x found) and a
// fixed-size array key keeps the hot-path map lookup allocation-free.
const maxLabels = 2

// labelKey is the child key of a vector metric: unused positions stay "".
type labelKey [maxLabels]string

// family is one registered metric family: a name, its metadata, and either
// direct children (counters/gauges/histograms keyed by label values) or a
// sample function evaluated at scrape time.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string // label names; empty for unlabelled metrics

	mu       sync.RWMutex
	counters map[labelKey]*Counter
	gauges   map[labelKey]*Gauge
	hists    map[labelKey]*Histogram
	bounds   []float64 // histogram bucket upper bounds

	// sampled, when non-nil, is evaluated at scrape time — the bridge for
	// values owned elsewhere (inventory.Status fields, queue depths).
	sampled func() float64
}

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is not usable; construct with NewRegistry.
// All methods are safe for concurrent use, but registration methods
// (Counter, Gauge, ...) panic on a name registered twice with a different
// shape — duplicate registration is a wiring bug, not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a new family or returns the existing one when the
// shape matches exactly (same type, labels and histogram bounds) —
// re-registration with an identical shape is idempotent so independent
// subsystems can share a registry without coordinating.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l, f.name))
		}
	}
	if len(f.labels) > maxLabels {
		panic(fmt.Sprintf("telemetry: %s: at most %d labels supported", f.name, maxLabels))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.families[f.name]; ok {
		if prev.typ != f.typ || !equalStrings(prev.labels, f.labels) || !equalFloats(prev.bounds, f.bounds) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with a different shape", f.name))
		}
		return prev
	}
	r.families[f.name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: TypeCounter,
		counters: make(map[labelKey]*Counter)})
	return f.counter(labelKey{})
}

// CounterVec registers a labelled counter family (1 or 2 labels).
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("telemetry: CounterVec needs at least one label (use Counter)")
	}
	f := r.register(&family{name: name, help: help, typ: TypeCounter,
		labels: labels, counters: make(map[labelKey]*Counter)})
	return &CounterVec{f: f}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: TypeGauge,
		gauges: make(map[labelKey]*Gauge)})
	return f.gauge(labelKey{})
}

// Histogram registers an unlabelled fixed-bucket histogram. bounds are the
// bucket upper limits in increasing order (the implicit +Inf bucket is
// always added).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: TypeHistogram,
		bounds: checkBounds(bounds), hists: make(map[labelKey]*Histogram)})
	return f.histogram(labelKey{})
}

// HistogramVec registers a labelled histogram family (1 or 2 labels).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("telemetry: HistogramVec needs at least one label (use Histogram)")
	}
	f := r.register(&family{name: name, help: help, typ: TypeHistogram,
		labels: labels, bounds: checkBounds(bounds), hists: make(map[labelKey]*Histogram)})
	return &HistogramVec{f: f}
}

// SampledCounter registers a counter whose value is read from fn at scrape
// time — for monotonic totals owned elsewhere (inventory lifecycle
// counters). fn must be safe for concurrent use.
func (r *Registry) SampledCounter(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeCounter, sampled: fn})
}

// SampledGauge registers a gauge whose value is read from fn at scrape
// time — for instantaneous values owned elsewhere (free slots, queue
// depth). fn must be safe for concurrent use.
func (r *Registry) SampledGauge(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: TypeGauge, sampled: fn})
}

// ---- family child access ----

func (f *family) counter(k labelKey) *Counter {
	f.mu.RLock()
	c := f.counters[k]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.counters[k]; c == nil {
		c = &Counter{}
		f.counters[k] = c
	}
	return c
}

func (f *family) gauge(k labelKey) *Gauge {
	f.mu.RLock()
	g := f.gauges[k]
	f.mu.RUnlock()
	if g != nil {
		return g
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if g = f.gauges[k]; g == nil {
		g = &Gauge{}
		f.gauges[k] = g
	}
	return g
}

func (f *family) histogram(k labelKey) *Histogram {
	f.mu.RLock()
	h := f.hists[k]
	f.mu.RUnlock()
	if h != nil {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h = f.hists[k]; h == nil {
		h = NewHistogram(f.bounds)
		f.hists[k] = h
	}
	return h
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values (one per
// declared label). Children are created on first use. The variadic form
// may allocate its argument slice; hot paths with a known arity use
// With1/With2, whose hit path is one RLock-guarded map lookup with no
// allocation.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.counter(keyFor(v.f, values))
}

// With1 is the allocation-free fast path for one-label vectors.
func (v *CounterVec) With1(a string) *Counter {
	v.f.checkArity(1)
	return v.f.counter(labelKey{a})
}

// With2 is the allocation-free fast path for two-label vectors.
func (v *CounterVec) With2(a, b string) *Counter {
	v.f.checkArity(2)
	return v.f.counter(labelKey{a, b})
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.histogram(keyFor(v.f, values))
}

// With1 is the allocation-free fast path for one-label vectors.
func (v *HistogramVec) With1(a string) *Histogram {
	v.f.checkArity(1)
	return v.f.histogram(labelKey{a})
}

// With2 is the allocation-free fast path for two-label vectors.
func (v *HistogramVec) With2(a, b string) *Histogram {
	v.f.checkArity(2)
	return v.f.histogram(labelKey{a, b})
}

func (f *family) checkArity(n int) {
	if len(f.labels) != n {
		panic(fmt.Sprintf("telemetry: %s: got %d label values, want %d", f.name, n, len(f.labels)))
	}
}

func keyFor(f *family, values []string) labelKey {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s: got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	var k labelKey
	copy(k[:], values)
	return k
}

// ---- exposition ----

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): `# HELP` and `# TYPE` comment lines
// followed by the samples, families sorted by name and children by label
// values, histograms rendered as cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.writeText(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if f.sampled != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.sampled()))
		return
	}
	f.mu.RLock()
	keys := f.sortedKeysLocked()
	switch f.typ {
	case TypeCounter:
		for _, k := range keys {
			fmt.Fprintf(b, "%s%s %d\n", f.name, f.labelString(k, "", 0), f.counters[k].Value())
		}
	case TypeGauge:
		for _, k := range keys {
			fmt.Fprintf(b, "%s%s %d\n", f.name, f.labelString(k, "", 0), f.gauges[k].Value())
		}
	case TypeHistogram:
		for _, k := range keys {
			h := f.hists[k]
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labelString(k, "le", bound), cum)
			}
			cum += h.buckets[len(h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labelStringInf(k), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, f.labelString(k, "", 0), formatFloat(h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, f.labelString(k, "", 0), h.Count())
		}
	}
	f.mu.RUnlock()
}

// sortedKeysLocked returns the child keys in label-value order. Requires
// f.mu held (read or write).
func (f *family) sortedKeysLocked() []labelKey {
	var keys []labelKey
	switch f.typ {
	case TypeCounter:
		for k := range f.counters {
			keys = append(keys, k)
		}
	case TypeGauge:
		for k := range f.gauges {
			keys = append(keys, k)
		}
	case TypeHistogram:
		for k := range f.hists {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		for p := 0; p < maxLabels; p++ {
			if keys[i][p] != keys[j][p] {
				return keys[i][p] < keys[j][p]
			}
		}
		return false
	})
	return keys
}

// labelString renders the label block for one child, optionally appending
// an le label (histogram buckets). Empty for unlabelled children with no le.
func (f *family) labelString(k labelKey, leName string, le float64) string {
	if len(f.labels) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(k[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(f.labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (f *family) labelStringInf(k labelKey) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(k[i]))
		b.WriteByte('"')
	}
	if len(f.labels) > 0 {
		b.WriteByte(',')
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

// ---- helpers ----

// validName checks the Prometheus metric/label name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, integral values without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkBounds(bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	out := make([]float64, len(bounds))
	copy(out, bounds)
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return out
}
