package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "Ops.")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("test_depth", "Depth.")
	g.Set(7)
	g.Add(-2)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Ops.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 42\n",
		"# TYPE test_depth gauge\n",
		"test_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecExpositionSortedAndEscaped(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("test_req_total", "Requests.", "path", "status")
	v.With("/v1/find", "200").Add(3)
	v.With("/v1/find", "404").Inc()
	v.With(`/odd"path`, "200").Inc()

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantOrder := []string{
		`test_req_total{path="/odd\"path",status="200"} 1`,
		`test_req_total{path="/v1/find",status="200"} 3`,
		`test_req_total{path="/v1/find",status="404"} 1`,
	}
	last := -1
	for _, w := range wantOrder {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
		if i < last {
			t.Errorf("series %q out of sorted order", w)
		}
		last = i
	}
}

func TestHistogramSemantics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	// le is inclusive: 1 lands in the le=1 bucket, 2 in le=2.
	want := []uint64{2, 2, 1, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count: got %d want 6", h.Count())
	}
	if h.Sum() != 108 {
		t.Errorf("sum: got %g want 108", h.Sum())
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_lat_seconds", "Latency.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 1`,
		`test_lat_seconds_bucket{le="0.5"} 2`,
		`test_lat_seconds_bucket{le="+Inf"} 3`,
		`test_lat_seconds_sum 2.35`,
		`test_lat_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSampledMetrics(t *testing.T) {
	reg := NewRegistry()
	v := 3.0
	reg.SampledGauge("test_free", "Free.", func() float64 { return v })
	reg.SampledCounter("test_commits_total", "Commits.", func() float64 { return 9 })

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_free 3\n") || !strings.Contains(b.String(), "test_commits_total 9\n") {
		t.Fatalf("sampled metrics missing:\n%s", b.String())
	}
	v = 4
	b.Reset()
	reg.WriteText(&b)
	if !strings.Contains(b.String(), "test_free 4\n") {
		t.Fatalf("sampled gauge not re-evaluated at scrape time:\n%s", b.String())
	}
}

func TestDuplicateRegistration(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("test_total", "x")
	c2 := reg.Counter("test_total", "x") // identical shape: idempotent
	if c1 != c2 {
		t.Error("identical re-registration should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registration with a different shape should panic")
		}
	}()
	reg.Gauge("test_total", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	reg.Counter("bad-name", "x")
}

// TestExpositionParsesRoundTrip holds the writer to its own parser — the
// well-formedness contract the slotlab gate and the CI scrape rely on.
func TestExpositionParsesRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_a_total", "A.").Add(5)
	reg.Gauge("test_b", "B.").Set(-3)
	v := reg.CounterVec("test_c_total", "C.", "path", "status")
	v.With("/v1/find", "200").Add(2)
	h := reg.HistogramVec("test_d_seconds", "D.", LatencyBucketsSeconds(), "path")
	h.With("/v1/reserve").Observe(0.04)
	reg.SampledGauge("test_e", "E.", func() float64 { return 1.5 })

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition failed to parse: %v\n%s", err, b.String())
	}
	for key, want := range map[string]float64{
		"test_a_total": 5,
		"test_b":       -3,
		`test_c_total{path="/v1/find",status="200"}`:      2,
		`test_d_seconds_bucket{le="0.05",path="/v1/reserve"}`: 1,
		`test_d_seconds_count{path="/v1/reserve"}`:        1,
		"test_e": 1.5,
	} {
		if got[key] != want {
			t.Errorf("%s: got %g want %g", key, got[key], want)
		}
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"bad-name 1\n",
		"dup 1\ndup 2\n",
		`unbalanced{a="b" 1` + "\n",
		`badlabel{a=b} 1` + "\n",
		"name 1 2 3\n",
		"name abc\n",
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseExposition accepted malformed input %q", bad)
		}
	}
}

func TestLatencyBucketLayoutsAgree(t *testing.T) {
	sec, ms := LatencyBucketsSeconds(), LatencyBucketsMs()
	if len(sec) != len(ms) {
		t.Fatalf("layouts differ in length: %d vs %d", len(sec), len(ms))
	}
	for i := range sec {
		if diff := sec[i]*1000 - ms[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("bucket %d: %g s vs %g ms", i, sec[i], ms[i])
		}
	}
	if ms[len(ms)-1] != 1000 {
		t.Errorf("last bucket: got %g ms, want 1000", ms[len(ms)-1])
	}
}

// TestConcurrentUse exercises every mutation path against concurrent
// scrapes; run under -race this is the registry's thread-safety proof.
func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "x")
	g := reg.Gauge("test_gauge", "x")
	vec := reg.CounterVec("test_vec_total", "x", "k")
	h := reg.Histogram("test_hist", "x", []float64{1, 2, 3})
	reg.SampledGauge("test_sampled", "x", func() float64 { return 1 })

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			keys := []string{"a", "b", "c"}
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(i))
				vec.With(keys[i%3]).Inc()
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := reg.WriteText(&b); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
					t.Errorf("mid-flight exposition malformed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("counter: got %d want 16000", c.Value())
	}
	if h.Count() != 16000 {
		t.Errorf("histogram count: got %d want 16000", h.Count())
	}
}
