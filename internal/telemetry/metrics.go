package telemetry

import (
	"math"
	"net/http"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; all methods are lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value. The zero value is ready to use;
// all methods are lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v when v exceeds the current value — a
// high-watermark tracker (peak window size, peak queue depth).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets: bounds[i] is the
// inclusive upper limit of bucket i (the Prometheus `le` convention), and
// one extra bucket catches everything above the last bound (`+Inf`).
// Observe is lock-free: one atomic bucket increment plus a CAS loop on the
// float sum. Construct with NewHistogram (or through a Registry); the zero
// value is not usable.
//
// The same type backs both the /metricsz exposition (rendered cumulative,
// per the format) and the slotlab report histograms (rendered
// non-cumulative) — one bucket layout, two renderings, so the surfaces
// cannot drift.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given strictly increasing
// bucket upper bounds. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	bs := checkBounds(bounds)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (not including +Inf). The
// returned slice is shared and must not be mutated.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts,
// NON-cumulative: element i counts observations in (bounds[i-1],
// bounds[i]], and the final element counts observations above the last
// bound (the +Inf bucket). Concurrent Observes may land between element
// reads; callers wanting exact totals read at quiescence.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LinearBuckets returns n strictly increasing bounds width, 2*width, ...,
// n*width — the shape of the slotlab latency histograms.
func LinearBuckets(width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("telemetry: LinearBuckets needs positive width and count")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = width * float64(i+1)
	}
	return out
}

// Latency-bucket layout shared by every HTTP latency histogram in the
// repo: 40 linear 25ms buckets over (0, 1s], overflow in +Inf. The
// slotlab report histograms use the same layout in milliseconds
// (LatencyBucketsMs), so the /metricsz buckets and the report buckets are
// two renderings of one definition and cannot drift.
const (
	latencyBucketWidthSeconds = 0.025
	latencyBucketCount        = 40
)

// LatencyBucketsSeconds returns the shared HTTP latency bucket bounds in
// seconds (the /metricsz unit).
func LatencyBucketsSeconds() []float64 {
	return LinearBuckets(latencyBucketWidthSeconds, latencyBucketCount)
}

// LatencyBucketsMs returns the same bounds in milliseconds (the slotlab
// report unit).
func LatencyBucketsMs() []float64 {
	return LinearBuckets(latencyBucketWidthSeconds*1000, latencyBucketCount)
}

// Handler returns an http.Handler serving the registry's text exposition —
// mount it wherever the service exposes /metricsz.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
