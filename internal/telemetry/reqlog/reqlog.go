// Package reqlog emits structured request logs: one self-contained JSON
// line per HTTP request, carrying the trace ID that the server also returns
// in the X-Trace-Id response header and attaches to the request's obs span.
// The shared ID is the correlation key of the telemetry tentpole: given a
// slow span in a trace export, grep the log for its trace_id and the full
// request context (method, path, status, queue wait, algorithm) is one line
// away — and vice versa.
//
// The encoder is hand-rolled rather than encoding/json: field order is
// fixed (logs diff and grep cleanly), the per-entry buffer is reused, and
// the package stays inside the repo's zero-dependency rule. Lines are
// written with a single w.Write call under a mutex, so concurrent handlers
// never interleave bytes within a line.
package reqlog

import (
	"io"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// Entry is one request record. Durations are reported in milliseconds with
// microsecond resolution — the scale queue waits and handler latencies
// actually live at.
type Entry struct {
	// Time is the wall-clock completion time of the request.
	Time time.Time

	// TraceID is the request's trace ID (see NewTraceID). The server sends
	// the same value in the X-Trace-Id response header and on the request's
	// obs span.
	TraceID string

	// Method and Path identify the endpoint.
	Method string
	Path   string

	// Status is the HTTP status code sent to the client.
	Status int

	// QueueWait is the time spent in the admission queue before the
	// handler ran (zero when an execution slot was free immediately, and
	// for shed requests the time until the shed decision).
	QueueWait time.Duration

	// Duration is the handler wall time (zero for shed and
	// deadline-expired requests — no handler ran).
	Duration time.Duration

	// Alg is the selection algorithm or CSA criterion the request named,
	// when the endpoint has one ("amp", "csa:cost", ...). Empty for
	// non-search endpoints; omitted from the line when empty.
	Alg string
}

// Logger serializes entries as JSON lines onto one writer.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// New returns a Logger writing to w. A nil writer yields a nil Logger,
// which is the universal "logging off" value: every method on a nil Logger
// is a no-op, mirroring the nil-Collector convention of the obs layer.
func New(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Log writes one entry as a single JSON line. Safe for concurrent use; a
// nil receiver is a no-op.
func (l *Logger) Log(e Entry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"ts":"`...)
	b = e.Time.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","trace_id":"`...)
	b = appendEscaped(b, e.TraceID)
	b = append(b, `","method":"`...)
	b = appendEscaped(b, e.Method)
	b = append(b, `","path":"`...)
	b = appendEscaped(b, e.Path)
	b = append(b, `","status":`...)
	b = strconv.AppendInt(b, int64(e.Status), 10)
	b = append(b, `,"queue_ms":`...)
	b = appendMillis(b, e.QueueWait)
	b = append(b, `,"dur_ms":`...)
	b = appendMillis(b, e.Duration)
	if e.Alg != "" {
		b = append(b, `,"alg":"`...)
		b = appendEscaped(b, e.Alg)
		b = append(b, '"')
	}
	b = append(b, '}', '\n')
	l.buf = b
	_, _ = l.w.Write(b)
}

// appendMillis renders a duration as milliseconds with 3 decimal places
// (microsecond resolution).
func appendMillis(b []byte, d time.Duration) []byte {
	return strconv.AppendFloat(b, float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

// appendEscaped appends s as JSON string content: quotes and backslashes
// are escaped, control characters become \u00XX. Request paths and
// algorithm names are ASCII in practice, but the log must stay valid JSON
// for any input.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hexdigits = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hexdigits[c>>4], hexdigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return b
}

// NewTraceID returns a fresh 16-hex-character trace ID. IDs come from the
// runtime's ChaCha8 generator (math/rand/v2's global source, seeded from
// the OS entropy pool), so they are unpredictable across processes without
// paying a crypto/rand syscall per request.
func NewTraceID() string {
	var b [16]byte
	v := rand.Uint64()
	const hexdigits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
