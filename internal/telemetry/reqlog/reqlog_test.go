package reqlog

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogLineShape(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Log(Entry{
		Time:      time.Date(2026, 8, 8, 12, 0, 0, 500000, time.UTC),
		TraceID:   "00f1e2d3c4b5a697",
		Method:    "POST",
		Path:      "/v1/find",
		Status:    200,
		QueueWait: 1500 * time.Microsecond,
		Duration:  2 * time.Millisecond,
		Alg:       "amp",
	})
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one newline-terminated line, got %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	for k, want := range map[string]any{
		"ts":       "2026-08-08T12:00:00.0005Z",
		"trace_id": "00f1e2d3c4b5a697",
		"method":   "POST",
		"path":     "/v1/find",
		"status":   float64(200),
		"queue_ms": 1.5,
		"dur_ms":   2.0,
		"alg":      "amp",
	} {
		if m[k] != want {
			t.Errorf("%s: got %v (%T) want %v", k, m[k], m[k], want)
		}
	}
	// Fixed field order: grep/diff-friendly logs.
	if !strings.HasPrefix(line, `{"ts":`) {
		t.Errorf("line does not start with ts field: %s", line)
	}
}

func TestLogOmitsEmptyAlg(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Log(Entry{Time: time.Unix(0, 0), Method: "GET", Path: "/v1/statusz", Status: 200})
	if strings.Contains(buf.String(), `"alg"`) {
		t.Errorf("alg should be omitted when empty: %s", buf.String())
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLogEscapesStrings(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Log(Entry{Time: time.Unix(0, 0), Path: `/odd"path\` + "\x01", Method: "GET"})
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("escaped line is not valid JSON: %v\n%s", err, buf.String())
	}
	if got := m["path"]; got != `/odd"path\`+"\x01" {
		t.Errorf("path round trip: got %q", got)
	}
}

func TestNilLoggerIsOff(t *testing.T) {
	var l *Logger
	l.Log(Entry{}) // must not panic
	if New(nil) != nil {
		t.Error("New(nil) should return the nil no-op logger")
	}
}

// TestConcurrentLogsDoNotInterleave drives the logger from many goroutines
// and asserts every emitted line is independently valid JSON — the
// single-Write-under-mutex guarantee.
func TestConcurrentLogsDoNotInterleave(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := New(w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Log(Entry{Time: time.Unix(int64(i), 0), TraceID: NewTraceID(), Method: "POST", Path: "/v1/find", Status: 200, Alg: "amp"})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 1600 {
		t.Fatalf("got %d lines, want 1600", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved or corrupt line: %v\n%s", err, line)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestNewTraceID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		for _, c := range id {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				t.Fatalf("trace ID %q contains non-hex %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q within 1000 draws", id)
		}
		seen[id] = true
	}
}
