package telemetry

import (
	"time"

	"slotsel/internal/obs"
)

// Collector adapts the obs event seam onto a metrics Registry: plug one
// into any Options.Collector field (inventory, server, the CLI obs flags)
// and the kernel counters the obs layer already emits — scan passes,
// per-algorithm searches, CSA/batch stage-1 accounting — surface as
// /metricsz series without the kernels changing at all.
//
// The event handlers are allocation-free and lock-free on the hot path
// (the per-algorithm children are resolved through the vector fast path:
// an RLock map hit keyed by a fixed-size array). That keeps the adapter
// inside the same overhead budget as the obs layer itself: enabling it
// adds a handful of atomic adds per *scan*, not per slot.
type Collector struct {
	scans          *Counter
	scanSlots      *Counter
	scanMatched    *Counter
	scanCandidates *Counter
	scanVisits     *Counter
	scanEarlyStops *Counter
	scanPeakWindow *Gauge

	selects    *CounterVec   // labels: alg, found
	selectSecs *HistogramVec // label: alg

	batches       *Counter
	batchJobs     *Counter
	batchAlts     *Counter
	batchCuts     *Counter
	specRuns      *Counter
	specCommitted *Counter
	specDiscarded *Counter
	relaunches    *Counter
	spans         *CounterVec // label: cat
}

// selectBucketsSeconds are the per-search latency bounds: searches run
// from sub-microsecond (small lists) to tens of milliseconds (the 8000-node
// flash-crowd environment), so the buckets are exponential.
func selectBucketsSeconds() []float64 {
	return []float64{
		1e-6, 1e-5, 1e-4, 2.5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 1,
	}
}

// NewCollector registers the kernel metric families on reg and returns the
// adapter. Safe to call once per registry; the families carry the
// `slotsel_` prefix.
func NewCollector(reg *Registry) *Collector {
	return &Collector{
		scans:          reg.Counter("slotsel_scans_total", "Completed core.Scan passes."),
		scanSlots:      reg.Counter("slotsel_scan_slots_total", "Slots examined across all scan passes."),
		scanMatched:    reg.Counter("slotsel_scan_matched_total", "Slots passing the resource-requirement match."),
		scanCandidates: reg.Counter("slotsel_scan_candidates_total", "Slots retained as window candidates."),
		scanVisits:     reg.Counter("slotsel_scan_visits_total", "Scan positions where per-criterion selection ran."),
		scanEarlyStops: reg.Counter("slotsel_scan_early_stops_total", "Scans ended by the visitor before list exhaustion."),
		scanPeakWindow: reg.Gauge("slotsel_scan_peak_window", "Largest extended-window size seen by any scan (high watermark)."),

		selects: reg.CounterVec("slotsel_select_total",
			"Algorithm-level searches by algorithm and outcome.", "alg", "found"),
		selectSecs: reg.HistogramVec("slotsel_select_duration_seconds",
			"Algorithm-level search latency.", selectBucketsSeconds(), "alg"),

		batches:       reg.Counter("slotsel_batches_total", "Stage-1 batch alternative searches."),
		batchJobs:     reg.Counter("slotsel_batch_jobs_total", "Jobs across all stage-1 batches."),
		batchAlts:     reg.Counter("slotsel_batch_alternatives_total", "Committed alternatives across all stage-1 batches."),
		batchCuts:     reg.Counter("slotsel_batch_cut_ops_total", "Slot-cut operations applied to authoritative lists."),
		specRuns:      reg.Counter("slotsel_spec_runs_total", "Speculative csa.Search executions."),
		specCommitted: reg.Counter("slotsel_spec_committed_total", "Speculative searches accepted at commit time."),
		specDiscarded: reg.Counter("slotsel_spec_discarded_total", "Speculative searches superseded or left unconsumed."),
		relaunches:    reg.Counter("slotsel_spec_relaunches_total", "Speculations re-issued after a conflicting commit."),
		spans:         reg.CounterVec("slotsel_spans_total", "Trace spans by category.", "cat"),
	}
}

// ScanDone implements obs.Collector.
func (c *Collector) ScanDone(s obs.ScanStats) {
	c.scans.Inc()
	c.scanSlots.Add(uint64(s.Slots))
	c.scanMatched.Add(uint64(s.Matched))
	c.scanCandidates.Add(uint64(s.Candidates))
	c.scanVisits.Add(uint64(s.Visits))
	if s.EarlyStop {
		c.scanEarlyStops.Inc()
	}
	c.scanPeakWindow.SetMax(int64(s.PeakWindow))
}

// SelectDone implements obs.Collector.
func (c *Collector) SelectDone(s obs.SelectStats) {
	found := "false"
	if s.Found {
		found = "true"
	}
	c.selects.With2(s.Alg, found).Inc()
	c.selectSecs.With1(s.Alg).Observe(float64(s.Elapsed) / float64(time.Second))
}

// BatchDone implements obs.Collector.
func (c *Collector) BatchDone(s obs.BatchStats) {
	c.batches.Inc()
	c.batchJobs.Add(uint64(s.Jobs))
	c.batchAlts.Add(uint64(s.AltsFound))
	c.batchCuts.Add(uint64(s.CutOps))
	c.specRuns.Add(uint64(s.SpecRuns))
	c.specCommitted.Add(uint64(s.SpecCommitted))
	c.specDiscarded.Add(uint64(s.SpecDiscarded))
	c.relaunches.Add(uint64(s.Relaunches))
}

// Span implements obs.Collector: spans are counted per category (the
// timeline itself belongs to obs.Trace, not a metrics registry).
func (c *Collector) Span(sp obs.Span) {
	c.spans.With1(sp.Cat).Inc()
}
