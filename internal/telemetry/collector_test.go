package telemetry_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/randx"
	"slotsel/internal/telemetry"
	"slotsel/internal/testkit"
)

func TestCollectorMapsEvents(t *testing.T) {
	reg := telemetry.NewRegistry()
	col := telemetry.NewCollector(reg)

	col.ScanDone(obs.ScanStats{Slots: 10, Matched: 6, Candidates: 4, PeakWindow: 3, Visits: 2, EarlyStop: true})
	col.ScanDone(obs.ScanStats{Slots: 5, Matched: 5, Candidates: 5, PeakWindow: 2, Visits: 1})
	col.SelectDone(obs.SelectStats{Alg: "amp", Found: true, Elapsed: 2 * time.Millisecond})
	col.SelectDone(obs.SelectStats{Alg: "amp", Found: false, Elapsed: time.Millisecond})
	col.BatchDone(obs.BatchStats{Jobs: 3, AltsFound: 7, CutOps: 7, SpecRuns: 5, SpecCommitted: 4, SpecDiscarded: 1, Relaunches: 2})
	col.Span(obs.Span{Cat: "http"})
	col.Span(obs.Span{Cat: "http"})

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition malformed: %v", err)
	}
	for key, want := range map[string]float64{
		"slotsel_scans_total":                              2,
		"slotsel_scan_slots_total":                         15,
		"slotsel_scan_matched_total":                       11,
		"slotsel_scan_candidates_total":                    9,
		"slotsel_scan_visits_total":                        3,
		"slotsel_scan_early_stops_total":                   1,
		"slotsel_scan_peak_window":                         3, // high watermark, not last value
		`slotsel_select_total{alg="amp",found="true"}`:     1,
		`slotsel_select_total{alg="amp",found="false"}`:    1,
		`slotsel_select_duration_seconds_count{alg="amp"}`: 2,
		"slotsel_batches_total":                            1,
		"slotsel_batch_jobs_total":                         3,
		"slotsel_batch_alternatives_total":                 7,
		"slotsel_spec_runs_total":                          5,
		"slotsel_spec_committed_total":                     4,
		"slotsel_spec_discarded_total":                     1,
		"slotsel_spec_relaunches_total":                    2,
		`slotsel_spans_total{cat="http"}`:                  2,
	} {
		if got[key] != want {
			t.Errorf("%s: got %g want %g", key, got[key], want)
		}
	}
}

// TestCollectorIdempotentWiring proves two NewCollector calls on one
// registry are legal (identical shapes are idempotent), so independent
// subsystems can each build their adapter.
func TestCollectorIdempotentWiring(t *testing.T) {
	reg := telemetry.NewRegistry()
	a, b := telemetry.NewCollector(reg), telemetry.NewCollector(reg)
	a.ScanDone(obs.ScanStats{Slots: 1})
	b.ScanDone(obs.ScanStats{Slots: 2})
	var sb strings.Builder
	reg.WriteText(&sb)
	if !strings.Contains(sb.String(), "slotsel_scan_slots_total 3") {
		t.Fatalf("adapters did not share families:\n%s", sb.String())
	}
}

// TestFindWithCollectorAllocs is the tentpole's hot-path acceptance gate:
// enabling the metrics adapter must add ZERO allocations per Find on a
// warmed-up Scanner — the same budget the obs layer itself is held to.
func TestFindWithCollectorAllocs(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	reg := telemetry.NewRegistry()
	col := telemetry.NewCollector(reg)

	rng := randx.New(3)
	list := testkit.RandomList(rng, 16, 4, 400)
	req := job.Request{TaskCount: 3, Volume: 80, MaxCost: 5000}
	for _, alg := range []core.Algorithm{core.AMP{}, core.MinCost{}, core.MinFinish{}} {
		sc := core.NewScanner()
		r := req
		if _, err := sc.FindObserved(alg, list, &r, col); err != nil {
			t.Fatalf("%s: warm-up find failed: %v", alg.Name(), err)
		}
		got := testing.AllocsPerRun(50, func() {
			_, _ = sc.FindObserved(alg, list, &r, col)
		})
		if got > 0 {
			t.Errorf("%s: %v allocs/op on a warmed scanner with the telemetry collector, want 0", alg.Name(), got)
		}
	}
}

// BenchmarkFindWithCollector measures the steady-state overhead of the
// metrics adapter on the find hot path. Compare against
// BenchmarkFindNilCollector: the acceptance budget is <=2% at the
// production instance size (the same budget PR 2 set for the obs seam) —
// the adapter's cost is a fixed ~150ns of atomic adds per *search*, so
// its relative overhead shrinks with instance size. EXPERIMENTS.md
// records reference numbers for both sizes.
func BenchmarkFindWithCollector(b *testing.B) {
	reg := telemetry.NewRegistry()
	col := telemetry.NewCollector(reg)
	for _, n := range []int{64, 1024, 8192} {
		b.Run(benchSizeName(n), func(b *testing.B) { benchFind(b, n, col) })
	}
}

// BenchmarkFindNilCollector is the control: the identical search with the
// collector seam disabled.
func BenchmarkFindNilCollector(b *testing.B) {
	for _, n := range []int{64, 1024, 8192} {
		b.Run(benchSizeName(n), func(b *testing.B) { benchFind(b, n, nil) })
	}
}

func benchSizeName(n int) string {
	return "nodes=" + strconv.Itoa(n)
}

func benchFind(b *testing.B, nodes int, col obs.Collector) {
	rng := randx.New(3)
	list := testkit.RandomList(rng, nodes, 4, 400)
	req := job.Request{TaskCount: 3, Volume: 80, MaxCost: 5000}
	sc := core.NewScanner()
	r := req
	if _, err := sc.FindObserved(core.AMP{}, list, &r, col); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sc.FindObserved(core.AMP{}, list, &r, col)
	}
}
