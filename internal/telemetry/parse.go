package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseExposition reads a Prometheus text exposition stream and returns
// its samples keyed by series identity — the metric name plus its
// normalized label block, e.g.
//
//	slotsel_http_requests_total{path="/v1/find",status="200"}
//
// Labels are re-rendered sorted by name so the key is stable regardless of
// emission order. Malformed lines (bad name grammar, unbalanced label
// block, non-numeric value) are errors: the parser doubles as the
// well-formedness check the slotlab conformance gate and the CI scrape
// assert.
func ParseExposition(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample splits one sample line into its normalized series key and
// value. Grammar: name[{label="value",...}] value [timestamp].
func parseSample(line string) (string, float64, error) {
	name := line
	labels := ""
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", 0, fmt.Errorf("unbalanced label block in %q", line)
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", 0, fmt.Errorf("missing value in %q", line)
		}
		name, rest = fields[0], strings.Join(fields[1:], " ")
	}
	if !validName(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	norm, err := normalizeLabels(labels)
	if err != nil {
		return "", 0, fmt.Errorf("%w in %q", err, line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", 0, fmt.Errorf("expected value [timestamp] after series in %q", line)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name + norm, val, nil
}

// normalizeLabels parses a label block body (without braces) and renders
// it back sorted by label name. An empty body yields an empty string.
func normalizeLabels(body string) (string, error) {
	body = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(body), ","))
	if body == "" {
		return "", nil
	}
	type pair struct{ name, value string }
	var pairs []pair
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("missing '=' in label block")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		rest = strings.TrimSpace(rest[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return "", fmt.Errorf("label value must be quoted")
		}
		// Scan the quoted value honoring backslash escapes.
		i := 1
		var val strings.Builder
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(c)
					val.WriteByte(rest[i+1])
				}
				i++
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return "", fmt.Errorf("unterminated label value")
		}
		pairs = append(pairs, pair{name, val.String()})
		rest = strings.TrimSpace(rest[i+1:])
		if rest != "" {
			if rest[0] != ',' {
				return "", fmt.Errorf("expected ',' between labels")
			}
			rest = strings.TrimSpace(rest[1:])
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), nil
}
