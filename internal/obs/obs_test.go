package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStatsAggregation(t *testing.T) {
	var st Stats
	st.ScanDone(ScanStats{Slots: 10, Matched: 6, Candidates: 4, PeakWindow: 3, Visits: 2})
	st.ScanDone(ScanStats{Slots: 7, Matched: 5, Candidates: 5, PeakWindow: 5, Visits: 1, EarlyStop: true})
	st.SelectDone(SelectStats{Alg: "AMP", Found: true, Elapsed: 10 * time.Microsecond})
	st.SelectDone(SelectStats{Alg: "AMP", Found: false, Elapsed: 30 * time.Microsecond})
	st.SelectDone(SelectStats{Alg: "MinCost", Found: true, Elapsed: 5 * time.Microsecond})
	st.BatchDone(BatchStats{
		Jobs: 3, AltsFound: 9, CutOps: 9, Workers: 2,
		SpecRuns: 12, SpecCommitted: 9, SpecDiscarded: 3,
		Relaunches: 2, TasksCut: 1,
		WorkerBusy: []time.Duration{time.Millisecond, 2 * time.Millisecond},
		Elapsed:    3 * time.Millisecond,
	})

	snap := st.Snapshot()
	if snap.Scan.Scans != 2 || snap.Scan.Slots != 17 || snap.Scan.Matched != 11 {
		t.Errorf("scan agg = %+v", snap.Scan)
	}
	if snap.Scan.PeakWindow != 5 {
		t.Errorf("PeakWindow = %d, want max 5", snap.Scan.PeakWindow)
	}
	if snap.Scan.EarlyStops != 1 {
		t.Errorf("EarlyStops = %d, want 1", snap.Scan.EarlyStops)
	}
	amp := snap.Selects["AMP"]
	if amp.Searches != 2 || amp.Found != 1 || amp.Min != 10*time.Microsecond || amp.Max != 30*time.Microsecond {
		t.Errorf("AMP agg = %+v", amp)
	}
	if snap.Batch.SpecRuns != 12 || snap.Batch.SpecCommitted != 9 || snap.Batch.SpecDiscarded != 3 {
		t.Errorf("batch agg = %+v", snap.Batch)
	}
	if snap.Batch.Busy != 3*time.Millisecond {
		t.Errorf("Busy = %v, want 3ms", snap.Batch.Busy)
	}

	var buf bytes.Buffer
	snap.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"slots examined:   17",
		"candidates kept:  9",
		"peak window size: 5",
		"early stops:      1",
		"AMP",
		"MinCost",
		"speculative runs:   12 (committed 9, discarded 3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, out)
		}
	}
}

func TestStatsConcurrent(t *testing.T) {
	var st Stats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				st.ScanDone(ScanStats{Slots: 1})
				st.SelectDone(SelectStats{Alg: "A", Elapsed: time.Nanosecond})
			}
		}()
	}
	wg.Wait()
	snap := st.Snapshot()
	if snap.Scan.Scans != 800 || snap.Scan.Slots != 800 {
		t.Errorf("scan agg after concurrent adds = %+v", snap.Scan)
	}
	if snap.Selects["A"].Searches != 800 {
		t.Errorf("select agg = %+v", snap.Selects["A"])
	}
}

func TestCombine(t *testing.T) {
	if got := Combine(); got != nil {
		t.Errorf("Combine() = %v, want nil", got)
	}
	if got := Combine(nil, nil); got != nil {
		t.Errorf("Combine(nil, nil) = %v, want nil", got)
	}
	st := &Stats{}
	if got := Combine(nil, st); got != Collector(st) {
		t.Errorf("Combine(nil, st) = %v, want the single collector itself", got)
	}
	tr := NewTrace(4)
	combined := Combine(st, tr)
	m, ok := combined.(Multi)
	if !ok || len(m) != 2 {
		t.Fatalf("Combine(st, tr) = %T %v, want Multi of 2", combined, combined)
	}
	combined.ScanDone(ScanStats{Slots: 3})
	combined.Span(Span{Name: "x"})
	if st.Snapshot().Scan.Slots != 3 {
		t.Error("fan-out did not reach Stats")
	}
	if len(tr.Spans()) != 1 {
		t.Error("fan-out did not reach Trace")
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Span(Span{Name: fmt.Sprintf("s%d", i), Start: time.Duration(i)})
	}
	if tr.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	for i, want := range []string{"s2", "s3", "s4"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %q, want %q (oldest evicted first)", i, spans[i].Name, want)
		}
	}
}

func TestTraceSpanOrdering(t *testing.T) {
	tr := NewTrace(8)
	tr.Span(Span{Name: "late", Start: 30})
	tr.Span(Span{Name: "early", Start: 10})
	tr.Span(Span{Name: "mid", Start: 20})
	spans := tr.Spans()
	if spans[0].Name != "early" || spans[1].Name != "mid" || spans[2].Name != "late" {
		t.Errorf("spans not ordered by start: %v", spans)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace(8)
	tr.Span(Span{Name: "scan", Cat: "scan", Start: 2 * time.Microsecond, Dur: 5 * time.Microsecond, Arg: "slots=10"})
	tr.Span(Span{Name: "AMP", Cat: "select", Tid: 1, Start: 8 * time.Microsecond, Dur: time.Microsecond})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	ev := events[0]
	if ev["name"] != "scan" || ev["cat"] != "scan" || ev["ph"] != "X" {
		t.Errorf("event 0 = %v", ev)
	}
	if ev["ts"].(float64) != 2 || ev["dur"].(float64) != 5 {
		t.Errorf("timestamps not in microseconds: ts=%v dur=%v", ev["ts"], ev["dur"])
	}
	args, _ := ev["args"].(map[string]any)
	if args["detail"] != "slots=10" {
		t.Errorf("args = %v", ev["args"])
	}
	if _, hasArgs := events[1]["args"]; hasArgs {
		t.Error("event without Arg should omit args")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTrace(4).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace must still encode a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 0 {
		t.Errorf("got %d events, want 0", len(events))
	}
}

func TestWriteSummary(t *testing.T) {
	tr := NewTrace(8)
	tr.Span(Span{Name: "scan", Cat: "scan", Dur: 4 * time.Microsecond})
	tr.Span(Span{Name: "scan", Cat: "scan", Dur: 6 * time.Microsecond})
	tr.Span(Span{Name: "AMP", Cat: "select", Dur: time.Microsecond})
	var buf bytes.Buffer
	tr.WriteSummary(&buf)
	out := buf.String()
	if !strings.Contains(out, "3 spans retained, 0 dropped") {
		t.Errorf("summary header wrong:\n%s", out)
	}
	if !strings.Contains(out, "count=2") || !strings.Contains(out, "mean=5µs") {
		t.Errorf("scan aggregate wrong:\n%s", out)
	}
}

func TestNewTracePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTrace(0) did not panic")
		}
	}()
	NewTrace(0)
}

func TestServePprof(t *testing.T) {
	addr, stop, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Errorf("stop: %v", err)
	}
}

func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Errorf("Now went backwards: %v then %v", a, b)
	}
}
