package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// ServePprof starts an HTTP server exposing the net/http/pprof endpoints
// (/debug/pprof/...) on addr and returns the bound address (useful with a
// ":0" port) plus a stop function. The handlers are registered on a
// private mux, so importing this package does not pollute
// http.DefaultServeMux.
func ServePprof(addr string) (bound string, stop func() error, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) // Serve returns when Close is called; error is expected then
	return ln.Addr().String(), srv.Close, nil
}
