//go:build race

package obs

// raceEnabled mirrors testkit.RaceEnabled (which cannot be imported here:
// testkit depends on core, which depends on obs). The allocation gates
// skip under the race detector; see testkit/race_on.go for why.
const raceEnabled = true
