package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceCapacity is the span capacity of traces created by the CLI
// flags: large enough for tens of thousands of scan/select/commit spans,
// bounded so a long experiment cannot grow memory without limit.
const DefaultTraceCapacity = 1 << 16

// Trace is a Collector recording spans into a bounded ring buffer: when
// the buffer is full the oldest span is overwritten and counted as
// dropped. The zero value is NOT usable — construct with NewTrace, which
// fixes the capacity. Safe for concurrent use.
//
// Trace ignores counter events (ScanDone/SelectDone/BatchDone); combine
// with a Stats collector for those.
type Trace struct {
	mu      sync.Mutex
	buf     []Span
	next    int // ring write position once full
	full    bool
	dropped int
}

// NewTrace returns a trace sink holding at most capacity spans; capacity
// must be positive.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		panic("obs: NewTrace capacity must be positive")
	}
	return &Trace{buf: make([]Span, 0, capacity)}
}

// ScanDone implements Collector (ignored).
func (*Trace) ScanDone(ScanStats) {}

// SelectDone implements Collector (ignored).
func (*Trace) SelectDone(SelectStats) {}

// BatchDone implements Collector (ignored).
func (*Trace) BatchDone(BatchStats) {}

// Span implements Collector: record the span, evicting the oldest when the
// ring is full.
func (t *Trace) Span(sp Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full && len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, sp)
		return
	}
	t.full = true
	t.buf[t.next] = sp
	t.next = (t.next + 1) % cap(t.buf)
	t.dropped++
}

// Dropped returns the number of spans evicted by the ring.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained spans ordered by start time (spans
// arrive out of order when emitted from concurrent goroutines).
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// chromeEvent is one Chrome trace_event object ("X" complete events; see
// the Trace Event Format documentation — the JSON-array form loads
// directly in chrome://tracing and Perfetto).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the retained spans as a Chrome trace_event JSON
// array. Timestamps are microseconds on the process-monotonic clock.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			Ts:   float64(sp.Start) / float64(time.Microsecond),
			Dur:  float64(sp.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  sp.Tid,
		}
		if sp.Arg != "" || sp.Trace != "" {
			ev.Args = make(map[string]string, 2)
			if sp.Arg != "" {
				ev.Args["detail"] = sp.Arg
			}
			if sp.Trace != "" {
				ev.Args["trace_id"] = sp.Trace
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteSummary renders a plain-text per-(category, name) aggregate of the
// retained spans: count, total and mean duration.
func (t *Trace) WriteSummary(w io.Writer) {
	type key struct{ cat, name string }
	type agg struct {
		count int
		total time.Duration
	}
	sums := make(map[key]*agg)
	for _, sp := range t.Spans() {
		k := key{sp.Cat, sp.Name}
		a := sums[k]
		if a == nil {
			a = &agg{}
			sums[k] = a
		}
		a.count++
		a.total += sp.Dur
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cat != keys[j].cat {
			return keys[i].cat < keys[j].cat
		}
		return keys[i].name < keys[j].name
	})
	fmt.Fprintf(w, "trace summary: %d spans retained, %d dropped\n", len(t.Spans()), t.Dropped())
	for _, k := range keys {
		a := sums[k]
		fmt.Fprintf(w, "  %-8s %-20s count=%-6d total=%-12v mean=%v\n",
			k.cat, k.name, a.count, a.total, a.total/time.Duration(a.count))
	}
}
