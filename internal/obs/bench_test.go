package obs

import "testing"

// sinkStats keeps the compiler from proving the benchmark loop dead.
var sinkStats ScanStats

// BenchmarkNilCollector measures the disabled-observability hot path: the
// nil check emitters perform before touching a collector. This is the cost
// every scan step pays when no -stats/-trace flag is set; it must stay at
// or below the 1–2 ns bar from the issue (in practice it is a fraction of
// a nanosecond — a predictable branch).
func BenchmarkNilCollector(b *testing.B) {
	var col Collector // nil: observability off
	st := ScanStats{Slots: 1}
	for i := 0; i < b.N; i++ {
		if col != nil {
			col.ScanDone(st)
		}
		st.Slots++
	}
	sinkStats = st
}

// BenchmarkNopDispatch measures a dynamic interface call into the Nop
// collector — the worst case for an enabled-but-ignoring collector.
func BenchmarkNopDispatch(b *testing.B) {
	var col Collector = Nop{}
	st := ScanStats{Slots: 1}
	for i := 0; i < b.N; i++ {
		col.ScanDone(st)
		st.Slots++
	}
	sinkStats = st
}

// BenchmarkStatsScanDone measures the enabled counter path (mutex +
// aggregation). Emitters call this once per scan, not per slot, so this
// cost is amortized over the whole pass.
func BenchmarkStatsScanDone(b *testing.B) {
	var stats Stats
	var col Collector = &stats
	st := ScanStats{Slots: 100, Matched: 60, Candidates: 40, PeakWindow: 8, Visits: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.ScanDone(st)
	}
}

// BenchmarkTraceSpan measures recording one span into the ring buffer.
func BenchmarkTraceSpan(b *testing.B) {
	tr := NewTrace(1024)
	var col Collector = tr
	sp := Span{Name: "scan", Cat: "scan", Dur: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.Span(sp)
	}
}
