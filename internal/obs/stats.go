package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Stats is a Collector accumulating counters: per-scan totals, per-
// algorithm search statistics and batch/speculation work accounting. The
// zero value is ready to use, and all methods are safe for concurrent use
// (events are pre-aggregated per scan/search/batch, so the mutex is far
// off the hot path).
//
// Stats ignores Span events; combine it with a Trace (obs.Combine) when
// both counters and a timeline are wanted.
type Stats struct {
	mu      sync.Mutex
	scan    ScanAgg
	selects map[string]*SelectAgg
	batch   BatchAgg
}

// ScanAgg aggregates ScanStats over many scans.
type ScanAgg struct {
	Scans      int
	Slots      int64
	Matched    int64
	Candidates int64
	Visits     int64
	PeakWindow int // maximum over all scans
	EarlyStops int
}

// SelectAgg aggregates SelectStats for one algorithm.
type SelectAgg struct {
	Searches int
	Found    int
	Total    time.Duration
	Min, Max time.Duration
}

// BatchAgg aggregates BatchStats over many stage-1 searches.
type BatchAgg struct {
	Batches          int
	Jobs             int
	AltsFound        int
	CutOps           int
	SpecRuns         int
	SpecCommitted    int
	SpecDiscarded    int
	Relaunches       int
	InlineRecomputes int
	TasksCut         int
	Busy             time.Duration // summed worker busy time
	Elapsed          time.Duration // summed wall-clock stage-1 time
}

// ScanDone implements Collector.
func (st *Stats) ScanDone(s ScanStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a := &st.scan
	a.Scans++
	a.Slots += int64(s.Slots)
	a.Matched += int64(s.Matched)
	a.Candidates += int64(s.Candidates)
	a.Visits += int64(s.Visits)
	if s.PeakWindow > a.PeakWindow {
		a.PeakWindow = s.PeakWindow
	}
	if s.EarlyStop {
		a.EarlyStops++
	}
}

// SelectDone implements Collector.
func (st *Stats) SelectDone(s SelectStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.selects == nil {
		st.selects = make(map[string]*SelectAgg)
	}
	a := st.selects[s.Alg]
	if a == nil {
		a = &SelectAgg{Min: s.Elapsed, Max: s.Elapsed}
		st.selects[s.Alg] = a
	}
	a.Searches++
	if s.Found {
		a.Found++
	}
	a.Total += s.Elapsed
	if s.Elapsed < a.Min {
		a.Min = s.Elapsed
	}
	if s.Elapsed > a.Max {
		a.Max = s.Elapsed
	}
}

// BatchDone implements Collector.
func (st *Stats) BatchDone(s BatchStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a := &st.batch
	a.Batches++
	a.Jobs += s.Jobs
	a.AltsFound += s.AltsFound
	a.CutOps += s.CutOps
	a.SpecRuns += s.SpecRuns
	a.SpecCommitted += s.SpecCommitted
	a.SpecDiscarded += s.SpecDiscarded
	a.Relaunches += s.Relaunches
	a.InlineRecomputes += s.InlineRecomputes
	a.TasksCut += s.TasksCut
	a.Elapsed += s.Elapsed
	for _, d := range s.WorkerBusy {
		a.Busy += d
	}
}

// Span implements Collector (ignored; see Trace).
func (*Stats) Span(Span) {}

// StatsSnapshot is a point-in-time copy of a Stats collector.
type StatsSnapshot struct {
	Scan    ScanAgg
	Selects map[string]SelectAgg
	Batch   BatchAgg
}

// Snapshot returns a consistent copy of the accumulated statistics.
func (st *Stats) Snapshot() StatsSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := StatsSnapshot{Scan: st.scan, Batch: st.batch}
	if len(st.selects) > 0 {
		snap.Selects = make(map[string]SelectAgg, len(st.selects))
		for name, a := range st.selects {
			snap.Selects[name] = *a
		}
	}
	return snap
}

// WriteText renders the snapshot as a plain-text report. Counter lines are
// deterministic for deterministic workloads (they carry no timings); the
// selection section carries wall-clock times and is inherently run-to-run
// variable.
func (s StatsSnapshot) WriteText(w io.Writer) {
	fmt.Fprintln(w, "scan counters")
	fmt.Fprintf(w, "  scans:            %d\n", s.Scan.Scans)
	fmt.Fprintf(w, "  slots examined:   %d\n", s.Scan.Slots)
	fmt.Fprintf(w, "  slots matched:    %d\n", s.Scan.Matched)
	fmt.Fprintf(w, "  candidates kept:  %d\n", s.Scan.Candidates)
	fmt.Fprintf(w, "  peak window size: %d\n", s.Scan.PeakWindow)
	fmt.Fprintf(w, "  visits:           %d\n", s.Scan.Visits)
	fmt.Fprintf(w, "  early stops:      %d\n", s.Scan.EarlyStops)
	if len(s.Selects) > 0 {
		fmt.Fprintln(w, "selection")
		names := make([]string, 0, len(s.Selects))
		for name := range s.Selects {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			a := s.Selects[name]
			mean := time.Duration(0)
			if a.Searches > 0 {
				mean = a.Total / time.Duration(a.Searches)
			}
			fmt.Fprintf(w, "  %-18s searches=%d found=%d mean=%v min=%v max=%v\n",
				name, a.Searches, a.Found, mean, a.Min, a.Max)
		}
	}
	if s.Batch.Batches > 0 {
		b := s.Batch
		fmt.Fprintln(w, "batch stage-1")
		fmt.Fprintf(w, "  batches:            %d\n", b.Batches)
		fmt.Fprintf(w, "  jobs:               %d\n", b.Jobs)
		fmt.Fprintf(w, "  alternatives found: %d\n", b.AltsFound)
		fmt.Fprintf(w, "  cut operations:     %d\n", b.CutOps)
		fmt.Fprintf(w, "  speculative runs:   %d (committed %d, discarded %d)\n",
			b.SpecRuns, b.SpecCommitted, b.SpecDiscarded)
		fmt.Fprintf(w, "  relaunches:         %d\n", b.Relaunches)
		fmt.Fprintf(w, "  inline recomputes:  %d\n", b.InlineRecomputes)
		fmt.Fprintf(w, "  tasks cut unrun:    %d\n", b.TasksCut)
		fmt.Fprintf(w, "  worker busy time:   %v (wall %v)\n", b.Busy, b.Elapsed)
	}
}
