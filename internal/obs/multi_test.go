package obs

import (
	"fmt"
	"testing"
)

// logCollector records every event it receives as "id:event" strings into
// a shared log, so fan-out order across Multi elements is observable.
type logCollector struct {
	id  string
	log *[]string
}

func (l logCollector) ScanDone(ScanStats)     { *l.log = append(*l.log, l.id+":scan") }
func (l logCollector) SelectDone(SelectStats) { *l.log = append(*l.log, l.id+":select") }
func (l logCollector) BatchDone(BatchStats)   { *l.log = append(*l.log, l.id+":batch") }
func (l logCollector) Span(Span)              { *l.log = append(*l.log, l.id+":span") }

// TestMultiFanOutOrdering: every event type reaches each element in slice
// order. Order matters — a Stats element ahead of a Trace element means a
// span's counters are aggregated before the timeline records it, and
// collectors built on that assumption must not be reshuffled.
func TestMultiFanOutOrdering(t *testing.T) {
	var log []string
	m := Multi{
		logCollector{"a", &log},
		logCollector{"b", &log},
		logCollector{"c", &log},
	}
	m.ScanDone(ScanStats{})
	m.SelectDone(SelectStats{})
	m.BatchDone(BatchStats{})
	m.Span(Span{})

	want := []string{
		"a:scan", "b:scan", "c:scan",
		"a:select", "b:select", "c:select",
		"a:batch", "b:batch", "c:batch",
		"a:span", "b:span", "c:span",
	}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("fan-out order:\n got %v\nwant %v", log, want)
	}
}

// TestCombineSkipsNils: interleaved nils vanish and the survivors keep
// their relative order.
func TestCombineSkipsNils(t *testing.T) {
	var log []string
	a := logCollector{"a", &log}
	b := logCollector{"b", &log}
	got := Combine(nil, a, nil, b, nil)
	m, ok := got.(Multi)
	if !ok || len(m) != 2 {
		t.Fatalf("Combine(nil,a,nil,b,nil) = %T of len %d, want Multi of 2", got, len(m))
	}
	m.Span(Span{})
	if fmt.Sprint(log) != fmt.Sprint([]string{"a:span", "b:span"}) {
		t.Errorf("survivor order: %v", log)
	}
	// A typed-nil pointer inside an interface is NOT skipped (it is not
	// the nil interface); Combine's contract is interface-nil only. Pin
	// that boundary so callers don't grow to depend on the opposite.
	var st *Stats
	if got := Combine(Collector(st)); got == nil {
		t.Error("typed nil was treated as interface nil")
	}
}

// TestNopAndMultiDispatchAllocs is the satellite's allocation gate: the
// Nop collector and a warm Multi fan-out must dispatch every event type
// without heap allocation — these sit on the scan hot path, where one
// alloc per event would show up in the kernel budgets.
func TestNopAndMultiDispatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	scan := ScanStats{Slots: 64, Matched: 32, Candidates: 16, Visits: 8}
	sel := SelectStats{Alg: "AMP", Found: true}
	batch := BatchStats{Jobs: 4}
	span := Span{Name: "scan", Cat: "scan"}

	var nop Nop
	if n := testing.AllocsPerRun(200, func() {
		nop.ScanDone(scan)
		nop.SelectDone(sel)
		nop.BatchDone(batch)
		nop.Span(span)
	}); n != 0 {
		t.Errorf("Nop dispatch: %v allocs/run, want 0", n)
	}

	m := Multi{Nop{}, Nop{}, Nop{}}
	if n := testing.AllocsPerRun(200, func() {
		m.ScanDone(scan)
		m.SelectDone(sel)
		m.BatchDone(batch)
		m.Span(span)
	}); n != 0 {
		t.Errorf("Multi-of-Nop dispatch: %v allocs/run, want 0", n)
	}

	// The nil-collector guard used by every emitting package: checking and
	// skipping must be free.
	var nilCol Collector
	if n := testing.AllocsPerRun(200, func() {
		if nilCol != nil {
			nilCol.ScanDone(scan)
		}
	}); n != 0 {
		t.Errorf("nil-collector guard: %v allocs/run, want 0", n)
	}
}
