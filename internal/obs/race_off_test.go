//go:build !race

package obs

// raceEnabled mirrors testkit.RaceEnabled; see race_on_test.go.
const raceEnabled = false
