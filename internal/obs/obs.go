// Package obs is the observability layer of the scheduler: counters,
// timers and trace events describing what a search actually did — how many
// slots a scan examined, how large the candidate window grew, how much
// speculative work the parallel batch engine committed versus discarded.
//
// The package is deliberately zero-dependency (stdlib only) and decoupled
// from the scheduling packages: it defines plain event structs and the
// Collector interface that receives them; internal/core, internal/csa and
// internal/parallel emit events into whatever Collector the caller threads
// in. A nil Collector is valid everywhere and means "observability off" —
// emitters guard every event behind a single nil check, so the disabled
// hot path costs one predictable branch (benchmark-verified at well under
// 2 ns per event; see BenchmarkNilCollector and, for the end-to-end
// number, BenchmarkScanObservedOverhead in internal/core).
//
// Three shipped Collector implementations cover the common needs:
//
//   - Stats accumulates counters (per-scan, per-algorithm, per-batch) and
//     renders a plain-text summary — the `-stats` flag of the CLIs;
//   - Trace records spans into a bounded ring buffer and exports Chrome
//     trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev)
//     — the `-trace` flag;
//   - Multi fans events out to several collectors at once.
//
// All shipped collectors are safe for concurrent use, which the emitters
// require: the parallel engine delivers events from many goroutines.
package obs

import "time"

// processStart anchors the monotonic clock every event timestamp is
// relative to. Using one process-wide origin keeps spans from different
// goroutines and packages on a single comparable timeline.
var processStart = time.Now()

// Now returns the monotonic time since process start. All Span timestamps
// are expressed on this clock.
func Now() time.Duration { return time.Since(processStart) }

// ScanStats are the counters of one core.Scan pass — the per-event cost
// the AEP scheme's linearity claim (§2.1 of the paper) is about. The scan
// accumulates them in locals and publishes the struct once per pass, so
// enabling a collector adds one interface call per scan, not per slot.
type ScanStats struct {
	// Slots is the length of the scanned list (every slot is examined
	// once — the linear pass).
	Slots int

	// Matched counts slots that passed the request's resource-requirement
	// match (the properHardwareAndSoftware predicate).
	Matched int

	// Candidates counts slots retained as window candidates (long enough,
	// inside the deadline).
	Candidates int

	// PeakWindow is the largest extended-window size reached after
	// filtering — the empirical bound on the per-step subroutine cost.
	PeakWindow int

	// Visits counts scan positions where a full-size window existed and
	// the per-criterion selection ran.
	Visits int

	// EarlyStop reports that the visitor ended the scan before the list
	// was exhausted (AMP and MinFinish{EarlyStop} do this).
	EarlyStop bool
}

// SelectStats describe one algorithm-level search (one Algorithm.Find).
type SelectStats struct {
	// Alg is the algorithm name as reported by Algorithm.Name.
	Alg string

	// Found reports whether the search returned a window.
	Found bool

	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// BatchStats describe one stage-1 batch alternative search
// (parallel.Alternatives): the committed output plus the speculative work
// spent producing it. Committed quantities (Jobs, AltsFound, CutOps) are
// identical for every worker count — they describe the deterministic
// result; the speculation quantities describe wall-clock work and may vary
// run to run when Workers > 1.
type BatchStats struct {
	// Jobs is the number of jobs in the batch.
	Jobs int

	// AltsFound is the total number of committed alternatives across all
	// jobs. Worker-count-invariant.
	AltsFound int

	// CutOps is the number of slot-cut operations applied to the
	// authoritative list (one per committed alternative).
	// Worker-count-invariant.
	CutOps int

	// Workers is the worker-pool size actually used (after clamping to
	// the job count); 1 for the sequential path.
	Workers int

	// SpecRuns counts csa.Search executions performed by workers
	// (sequential path: one per job).
	SpecRuns int

	// SpecCommitted counts executed searches whose result was accepted at
	// commit time.
	SpecCommitted int

	// SpecDiscarded counts executed searches whose result was wasted —
	// superseded by a relaunch or left unconsumed at shutdown. Always 0 on
	// the sequential path.
	SpecDiscarded int

	// Relaunches counts speculations re-issued because a commit cut a node
	// the pending request matches.
	Relaunches int

	// InlineRecomputes counts commits that fell back to an authoritative
	// inline search (the relaunch rule makes this 0 in practice).
	InlineRecomputes int

	// TasksCut counts queued tasks dropped unexecuted (superseded or
	// already committed before a worker picked them up).
	TasksCut int

	// WorkerBusy is the per-worker time spent inside csa.Search, indexed
	// by worker id.
	WorkerBusy []time.Duration

	// Elapsed is the wall-clock duration of the whole stage-1 search.
	Elapsed time.Duration
}

// Span is one trace interval on the process-wide monotonic clock.
type Span struct {
	// Name labels the span (algorithm name, "scan", "commit job 3", ...).
	Name string

	// Cat is the span category ("scan", "select", "csa", "spec",
	// "commit"); trace viewers group and color by it.
	Cat string

	// Tid is the logical thread lane for trace rendering: 0 for the
	// caller/master, 1+n for worker n.
	Tid int

	// Start is the span start on the obs.Now clock.
	Start time.Duration

	// Dur is the span length.
	Dur time.Duration

	// Arg is an optional human-readable detail ("alts=7").
	Arg string

	// Trace is an optional correlation ID. The HTTP server stamps each
	// request span with the same trace ID it returns in the X-Trace-Id
	// response header and writes to the structured request log, so a span
	// in a trace export, a log line and a client-observed response are
	// joinable on one key. Empty for spans with no request context.
	Trace string
}

// Collector receives instrumentation events. Implementations must be safe
// for concurrent use: the parallel engine emits from many goroutines.
//
// A nil Collector is the universal "off" value — emitting packages guard
// events with a nil check and never require a non-nil collector. Embed Nop
// to implement only the events a collector cares about.
type Collector interface {
	// ScanDone reports the counters of one completed core.Scan pass.
	ScanDone(ScanStats)

	// SelectDone reports one completed algorithm-level search.
	SelectDone(SelectStats)

	// BatchDone reports one completed stage-1 batch alternative search.
	BatchDone(BatchStats)

	// Span reports one trace interval.
	Span(Span)
}

// Nop is a Collector that ignores every event. Useful for embedding (to
// implement a subset of the interface) and as the benchmark baseline for
// the no-op dispatch cost.
type Nop struct{}

// ScanDone implements Collector.
func (Nop) ScanDone(ScanStats) {}

// SelectDone implements Collector.
func (Nop) SelectDone(SelectStats) {}

// BatchDone implements Collector.
func (Nop) BatchDone(BatchStats) {}

// Span implements Collector.
func (Nop) Span(Span) {}

// Multi fans every event out to each collector in order.
type Multi []Collector

// ScanDone implements Collector.
func (m Multi) ScanDone(s ScanStats) {
	for _, c := range m {
		c.ScanDone(s)
	}
}

// SelectDone implements Collector.
func (m Multi) SelectDone(s SelectStats) {
	for _, c := range m {
		c.SelectDone(s)
	}
}

// BatchDone implements Collector.
func (m Multi) BatchDone(s BatchStats) {
	for _, c := range m {
		c.BatchDone(s)
	}
}

// Span implements Collector.
func (m Multi) Span(s Span) {
	for _, c := range m {
		c.Span(s)
	}
}

// Combine builds a Collector fanning out to the given collectors, skipping
// nils. It returns nil when nothing remains (so the result plugs directly
// into the nil-means-off convention) and avoids the Multi indirection for
// a single collector.
func Combine(cs ...Collector) Collector {
	var kept Multi
	for _, c := range cs {
		if c != nil {
			kept = append(kept, c)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}
