// Package testkit provides the shared fixtures of the test suite: compact
// random environments, hand-built slot lists and requests sized so that the
// exhaustive oracles in internal/baseline stay fast.
package testkit

import (
	"fmt"
	"math"
	"strings"

	"slotsel/internal/core"
	"slotsel/internal/env"
	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// SmallEnvConfig returns an environment configuration scaled down for
// oracle-checked tests: few nodes, a short interval, homogeneous software
// (so requirement filtering does not starve the tiny instance).
func SmallEnvConfig(nodeCount int, horizon float64) env.Config {
	cfg := env.DefaultConfig()
	cfg.Nodes.Count = nodeCount
	cfg.Nodes.OSOptions = []nodes.OS{nodes.Linux}
	cfg.Nodes.ArchOptions = []nodes.Arch{nodes.AMD64}
	cfg.Horizon = horizon
	return cfg
}

// SmallEnv generates a compact environment for the given seed.
func SmallEnv(seed uint64, nodeCount int, horizon float64) *env.Environment {
	return env.Generate(SmallEnvConfig(nodeCount, horizon), randx.New(seed))
}

// SmallRequest returns a request scaled to small environments: taskCount
// tasks of volume 60 with the given budget (0 = unconstrained).
func SmallRequest(taskCount int, budget float64) job.Request {
	return job.Request{TaskCount: taskCount, Volume: 60, MaxCost: budget}
}

// Node builds a standalone test node.
func Node(id int, perf, price float64) *nodes.Node {
	return &nodes.Node{
		ID:     id,
		Perf:   perf,
		Price:  price,
		RAMMB:  4096,
		DiskGB: 100,
		OS:     nodes.Linux,
		Arch:   nodes.AMD64,
	}
}

// Slot builds a standalone test slot on the given node.
func Slot(n *nodes.Node, start, end float64) *slots.Slot {
	return &slots.Slot{Node: n, Interval: slots.Interval{Start: start, End: end}}
}

// SlotList builds a sorted list from the given slots.
func SlotList(ss ...*slots.Slot) slots.List {
	l := slots.List(ss)
	l.SortByStart()
	return l
}

// poisonedNode backs the slot PoisonVisit writes into released candidate
// slices: any algorithm that reads it produces NaN-tainted, node -1
// windows that the aliasing regression tests cannot miss.
var poisonedNode = &nodes.Node{ID: -1, Perf: math.NaN(), Price: math.NaN()}

// PoisonVisit is the aliasing detector for core.Scan's candidate-reuse
// contract: it wraps a visit function so that every call receives a
// private copy of the candidates, and poisons that copy (NaN exec/cost,
// a node -1 slot) the moment the inner visit returns. A selection
// procedure that keeps the slice it was handed — instead of copying what
// it keeps, as the VisitFunc contract demands — ends up building its
// window from poisoned candidates, so comparing a poisoned run against a
// clean run exposes the aliasing. Install it with
// core.SetVisitWrapForTest(testkit.PoisonVisit).
func PoisonVisit(visit core.VisitFunc) core.VisitFunc {
	return func(start float64, cands []core.Candidate) bool {
		private := append([]core.Candidate(nil), cands...)
		stop := visit(start, private)
		for i := range private {
			private[i] = core.Candidate{
				Slot: &slots.Slot{Node: poisonedNode, Interval: slots.Interval{Start: math.NaN(), End: math.NaN()}},
				Exec: math.NaN(),
				Cost: math.NaN(),
			}
		}
		return stop
	}
}

// PoisonIndexedVisit is PoisonVisit's twin for the indexed scan path: every
// call receives a private rebuild of the scan's WindowIndex (same candidate
// set, and therefore — the mirror orders are total — the same mirror
// contents), and the private index's live views are poisoned the moment the
// inner visit returns. A selection kernel that retains a live view instead
// of copying what it keeps builds its window from poisoned candidates.
// Install it with core.SetIndexedVisitWrapForTest(testkit.PoisonIndexedVisit).
func PoisonIndexedVisit(visit core.IndexedVisitFunc) core.IndexedVisitFunc {
	return func(start float64, win *core.WindowIndex) bool {
		private := core.NewWindowIndex(win.Cands())
		stop := visit(start, private)
		for _, view := range [][]core.Candidate{private.Cands(), private.ByCost(), private.ByExec()} {
			for i := range view {
				view[i] = core.Candidate{
					Slot: &slots.Slot{Node: poisonedNode, Interval: slots.Interval{Start: math.NaN(), End: math.NaN()}},
					Exec: math.NaN(),
					Cost: math.NaN(),
				}
			}
		}
		return stop
	}
}

// WindowSignature renders every field of a window (including each
// placement's node and exact slot interval) into a canonical string, so
// two windows are value-identical iff their signatures are equal. The
// %g/%x formatting is exact for float64, making the differential tests a
// bit-identity check, not an approximate one.
func WindowSignature(w *core.Window) string {
	if w == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "start=%x runtime=%x cost=%x proc=%x n=%d", w.Start, w.Runtime, w.Cost, w.ProcTime, len(w.Placements))
	for _, p := range w.Placements {
		fmt.Fprintf(&b, " [node=%d slot=%x..%x start=%x exec=%x cost=%x]",
			p.Node().ID, p.Slot.Start, p.Slot.End, p.Start, p.Exec, p.Cost)
	}
	return b.String()
}

// WindowsSignature concatenates the signatures of an alternative set in
// order; discovery order is part of the sequential semantics, so it is
// part of the identity check too.
func WindowsSignature(ws []*core.Window) string {
	var b strings.Builder
	for i, w := range ws {
		fmt.Fprintf(&b, "#%d %s\n", i, WindowSignature(w))
	}
	return b.String()
}

// HeteroList generates a random sorted slot list over nodes with mixed
// operating systems, architectures and performance — the resource-type
// diversity the speculative batch engine exploits. Node i cycles through
// the OS/arch combinations so every list contains several requirement
// classes.
func HeteroList(rng *randx.Rand, nodeCount, maxSlotsPerNode int, horizon float64) slots.List {
	oses := []nodes.OS{nodes.Linux, nodes.Windows}
	arches := []nodes.Arch{nodes.AMD64, nodes.ARM64}
	l := RandomList(rng, nodeCount, maxSlotsPerNode, horizon)
	seen := make(map[int]bool)
	for _, s := range l {
		if seen[s.Node.ID] {
			continue
		}
		seen[s.Node.ID] = true
		s.Node.OS = oses[s.Node.ID%len(oses)]
		s.Node.Arch = arches[(s.Node.ID/len(oses))%len(arches)]
	}
	return l
}

// RandomBatch draws a batch of count jobs with randomized parallelism,
// volume, budget and priority, plus randomized node requirements (OS,
// architecture, minimum performance) drawn to sometimes overlap and
// sometimes be disjoint — exercising both the commit and the re-run paths
// of the speculative engine.
func RandomBatch(rng *randx.Rand, count int) *job.Batch {
	b := &job.Batch{}
	for i := 0; i < count; i++ {
		req := job.Request{
			TaskCount: rng.IntRange(1, 4),
			Volume:    float64(rng.IntRange(30, 120)),
			MaxCost:   float64(rng.IntRange(200, 2000)),
		}
		switch rng.Intn(4) {
		case 0:
			req.OS = []nodes.OS{nodes.Linux}
		case 1:
			req.OS = []nodes.OS{nodes.Windows}
		case 2:
			req.Arch = []nodes.Arch{nodes.ARM64}
		}
		if rng.Intn(3) == 0 {
			req.MinPerf = float64(rng.IntRange(4, 8))
		}
		b.Add(&job.Job{ID: i + 1, Priority: rng.IntRange(1, 3), Request: req})
	}
	return b
}

// RandomList generates an arbitrary (but valid and sorted) slot list:
// nodeCount nodes with random performance/price, each publishing up to
// maxSlotsPerNode disjoint random slots within [0, horizon). Used by
// property-based tests that want denser or weirder lists than the full
// environment generator produces.
func RandomList(rng *randx.Rand, nodeCount, maxSlotsPerNode int, horizon float64) slots.List {
	var l slots.List
	for id := 0; id < nodeCount; id++ {
		n := Node(id, float64(rng.IntRange(2, 10)), 0.3+3*rng.Float64())
		cursor := 0.0
		k := rng.Intn(maxSlotsPerNode + 1)
		for s := 0; s < k && cursor < horizon-1; s++ {
			gap := rng.FloatRange(0, horizon/4)
			length := rng.FloatRange(1, horizon/2)
			start := cursor + gap
			end := start + length
			if end > horizon {
				end = horizon
			}
			if end-start >= 1 {
				l = append(l, Slot(n, start, end))
			}
			cursor = end + 0.5
		}
	}
	l.SortByStart()
	return l
}
