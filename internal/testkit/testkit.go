// Package testkit provides the shared fixtures of the test suite: compact
// random environments, hand-built slot lists and requests sized so that the
// exhaustive oracles in internal/baseline stay fast.
package testkit

import (
	"slotsel/internal/env"
	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// SmallEnvConfig returns an environment configuration scaled down for
// oracle-checked tests: few nodes, a short interval, homogeneous software
// (so requirement filtering does not starve the tiny instance).
func SmallEnvConfig(nodeCount int, horizon float64) env.Config {
	cfg := env.DefaultConfig()
	cfg.Nodes.Count = nodeCount
	cfg.Nodes.OSOptions = []nodes.OS{nodes.Linux}
	cfg.Nodes.ArchOptions = []nodes.Arch{nodes.AMD64}
	cfg.Horizon = horizon
	return cfg
}

// SmallEnv generates a compact environment for the given seed.
func SmallEnv(seed uint64, nodeCount int, horizon float64) *env.Environment {
	return env.Generate(SmallEnvConfig(nodeCount, horizon), randx.New(seed))
}

// SmallRequest returns a request scaled to small environments: taskCount
// tasks of volume 60 with the given budget (0 = unconstrained).
func SmallRequest(taskCount int, budget float64) job.Request {
	return job.Request{TaskCount: taskCount, Volume: 60, MaxCost: budget}
}

// Node builds a standalone test node.
func Node(id int, perf, price float64) *nodes.Node {
	return &nodes.Node{
		ID:     id,
		Perf:   perf,
		Price:  price,
		RAMMB:  4096,
		DiskGB: 100,
		OS:     nodes.Linux,
		Arch:   nodes.AMD64,
	}
}

// Slot builds a standalone test slot on the given node.
func Slot(n *nodes.Node, start, end float64) *slots.Slot {
	return &slots.Slot{Node: n, Interval: slots.Interval{Start: start, End: end}}
}

// SlotList builds a sorted list from the given slots.
func SlotList(ss ...*slots.Slot) slots.List {
	l := slots.List(ss)
	l.SortByStart()
	return l
}

// RandomList generates an arbitrary (but valid and sorted) slot list:
// nodeCount nodes with random performance/price, each publishing up to
// maxSlotsPerNode disjoint random slots within [0, horizon). Used by
// property-based tests that want denser or weirder lists than the full
// environment generator produces.
func RandomList(rng *randx.Rand, nodeCount, maxSlotsPerNode int, horizon float64) slots.List {
	var l slots.List
	for id := 0; id < nodeCount; id++ {
		n := Node(id, float64(rng.IntRange(2, 10)), 0.3+3*rng.Float64())
		cursor := 0.0
		k := rng.Intn(maxSlotsPerNode + 1)
		for s := 0; s < k && cursor < horizon-1; s++ {
			gap := rng.FloatRange(0, horizon/4)
			length := rng.FloatRange(1, horizon/2)
			start := cursor + gap
			end := start + length
			if end > horizon {
				end = horizon
			}
			if end-start >= 1 {
				l = append(l, Slot(n, start, end))
			}
			cursor = end + 0.5
		}
	}
	l.SortByStart()
	return l
}
