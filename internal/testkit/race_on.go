//go:build race

package testkit

// RaceEnabled reports whether the race detector is compiled in. The
// allocation-budget regression tests skip under it: race instrumentation
// adds its own allocations, so testing.AllocsPerRun counts are meaningless
// there (the alloc gate in CI runs the suite without -race).
const RaceEnabled = true
