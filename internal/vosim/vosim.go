// Package vosim simulates a virtual organization's metascheduler operating
// over many consecutive scheduling cycles — the operational context the
// paper's slot selection algorithms are designed for: during every cycle
// the set of available slots is updated from the local resource managers,
// the batch of pending jobs is scheduled (two-stage scheme), and accepted
// co-allocations become reservations that constrain the following cycles.
//
// The simulation uses a rolling horizon: each cycle looks ahead a fixed
// window, jobs arrive continuously (Poisson), rejected jobs stay in the
// queue and retry, and reservations that extend past the cycle boundary are
// carried into the next cycle's busy timetable.
package vosim

import (
	"fmt"

	"slotsel/internal/batchsched"
	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/job"
	"slotsel/internal/load"
	"slotsel/internal/metrics"
	"slotsel/internal/nodes"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
	"slotsel/internal/workload"
)

// Config parametrizes the long-run simulation.
type Config struct {
	// Seed drives all randomness.
	Seed uint64

	// Nodes configures the fixed node population.
	Nodes nodes.GenConfig

	// Load configures the local (non-broker) load; local busy intervals are
	// drawn once over the whole simulated timeline.
	Load load.Config

	// Cycles is the number of scheduling cycles to simulate.
	Cycles int

	// CycleAdvance is the wall-clock distance between consecutive cycles.
	CycleAdvance float64

	// Horizon is the lookahead window of each cycle; must be >= CycleAdvance.
	Horizon float64

	// MinSlotLength suppresses uselessly short published slots.
	MinSlotLength float64

	// ArrivalRate is the mean number of jobs arriving per cycle (Poisson).
	ArrivalRate float64

	// MaxRetries drops a job after this many unsuccessful cycles (0 = drop
	// immediately after the first failure).
	MaxRetries int

	// VOBudgetPerCycle caps the total cost of windows accepted in one
	// cycle; <= 0 means unconstrained.
	VOBudgetPerCycle float64

	// MaxAlternatives bounds the per-job CSA search of stage 1.
	MaxAlternatives int

	// Criterion drives the stage-2 combination selection.
	Criterion csa.Criterion

	// Policy selects the per-cycle scheduling pipeline.
	Policy Policy
}

// Policy is the per-cycle scheduling pipeline of the metascheduler.
type Policy int

// The available policies.
const (
	// PolicyTwoStage is the paper's context: CSA alternatives per job plus
	// combination selection by dynamic programming (default).
	PolicyTwoStage Policy = iota

	// PolicyFCFS schedules each job's earliest-start window in priority
	// order — the backfilling-like policy of classic schedulers.
	PolicyFCFS

	// PolicyMinCost schedules each job's cheapest window in priority order.
	PolicyMinCost
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyTwoStage:
		return "two-stage"
	case PolicyFCFS:
		return "fcfs"
	case PolicyMinCost:
		return "mincost"
	}
	return "unknown"
}

// DefaultConfig returns a medium long-run workload on the §3.1 node
// population.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Nodes:            nodes.DefaultGenConfig(),
		Load:             load.DefaultConfig(),
		Cycles:           20,
		CycleAdvance:     300,
		Horizon:          600,
		MinSlotLength:    10,
		ArrivalRate:      4,
		MaxRetries:       3,
		VOBudgetPerCycle: 5000,
		MaxAlternatives:  10,
		Criterion:        csa.ByFinish,
	}
}

func (c Config) validate() error {
	if c.Cycles <= 0 {
		return fmt.Errorf("vosim: need positive cycles, got %d", c.Cycles)
	}
	if c.CycleAdvance <= 0 || c.Horizon < c.CycleAdvance {
		return fmt.Errorf("vosim: need 0 < CycleAdvance <= Horizon, got %g / %g", c.CycleAdvance, c.Horizon)
	}
	if c.ArrivalRate < 0 {
		return fmt.Errorf("vosim: negative arrival rate %g", c.ArrivalRate)
	}
	return nil
}

// pendingJob is a queued job with its arrival bookkeeping.
type pendingJob struct {
	job          *job.Job
	arrivalCycle int
	attempts     int
}

// Result aggregates the long-run outcomes.
type Result struct {
	Config Config

	// Submitted, Scheduled and Dropped count jobs over the whole run.
	Submitted, Scheduled, Dropped int

	// QueueLength samples the pending-queue length at each cycle start.
	QueueLength metrics.Accumulator

	// WaitCycles samples, per scheduled job, the number of cycles between
	// arrival and scheduling.
	WaitCycles metrics.Accumulator

	// WindowCost and WindowFinish sample the accepted windows (finish
	// relative to the cycle start).
	WindowCost   metrics.Accumulator
	WindowFinish metrics.Accumulator

	// BrokerUtilization is the fraction of total node-time occupied by
	// broker reservations over the simulated timeline.
	BrokerUtilization float64
}

// AcceptanceRate returns scheduled/submitted (1 for an idle run).
func (r *Result) AcceptanceRate() float64 {
	if r.Submitted == 0 {
		return 1
	}
	return float64(r.Scheduled) / float64(r.Submitted)
}

// Run executes the long-run simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	ns := nodes.Generate(cfg.Nodes, rng)
	totalSpan := float64(cfg.Cycles)*cfg.CycleAdvance + cfg.Horizon

	// One timetable carries both the local load (drawn once over the whole
	// timeline) and the broker reservations committed cycle by cycle.
	timetable := slots.NewTimetable()
	for _, n := range ns {
		for _, iv := range cfg.Load.BusyIntervals(totalSpan, rng) {
			timetable.Reserve(n.ID, iv)
		}
	}
	brokerTime := 0.0

	res := &Result{Config: cfg}
	mix := workload.DefaultMix()
	var queue []*pendingJob
	nextID := 1

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		t0 := float64(cycle) * cfg.CycleAdvance
		t1 := t0 + cfg.Horizon

		// Job arrivals for this cycle.
		for i := rng.Poisson(cfg.ArrivalRate); i > 0; i-- {
			queue = append(queue, &pendingJob{job: mix.Job(rng, nextID), arrivalCycle: cycle})
			nextID++
			res.Submitted++
		}
		res.QueueLength.Add(float64(len(queue)))
		if len(queue) == 0 {
			continue
		}

		// Publish the cycle's slot list: free time within [t0, t1) after
		// local load and broker reservations.
		list := timetable.FreeSlots(ns, t0, t1, cfg.MinSlotLength)

		// Schedule the pending batch with the two-stage scheme.
		batch := &job.Batch{}
		byID := make(map[int]*pendingJob, len(queue))
		for _, p := range queue {
			batch.Add(p.job)
			byID[p.job.ID] = p
		}
		var plan *batchsched.Plan
		var err error
		switch cfg.Policy {
		case PolicyFCFS:
			plan, err = batchsched.ScheduleDirected(list, batch, cfg.VOBudgetPerCycle, core.AMP{}, cfg.MinSlotLength)
		case PolicyMinCost:
			plan, err = batchsched.ScheduleDirected(list, batch, cfg.VOBudgetPerCycle, core.MinCost{}, cfg.MinSlotLength)
		default:
			plan, err = batchsched.Schedule(list, batch,
				csa.Options{MinSlotLength: cfg.MinSlotLength, MaxAlternatives: cfg.MaxAlternatives},
				batchsched.SelectConfig{Budget: cfg.VOBudgetPerCycle, Criterion: cfg.Criterion})
		}
		if err != nil {
			return nil, fmt.Errorf("vosim: cycle %d (%s policy): %w", cycle, cfg.Policy, err)
		}

		// Commit accepted windows; retry or drop the rest.
		scheduled := make(map[int]bool)
		for _, a := range plan.Assignments {
			if a.Chosen == nil {
				continue
			}
			scheduled[a.Job.ID] = true
			res.Scheduled++
			res.WaitCycles.Add(float64(cycle - byID[a.Job.ID].arrivalCycle))
			res.WindowCost.Add(a.Chosen.Cost)
			res.WindowFinish.Add(a.Chosen.Finish() - t0)
			used := a.Chosen.UsedIntervals()
			timetable.ReserveAll(used)
			for _, ivs := range used {
				for _, iv := range ivs {
					brokerTime += iv.Length()
				}
			}
		}
		var remaining []*pendingJob
		for _, p := range queue {
			if scheduled[p.job.ID] {
				continue
			}
			p.attempts++
			if p.attempts > cfg.MaxRetries {
				res.Dropped++
				continue
			}
			remaining = append(remaining, p)
		}
		queue = remaining
	}
	res.Dropped += len(queue) // still pending at shutdown
	if capacity := float64(len(ns)) * totalSpan; capacity > 0 {
		res.BrokerUtilization = brokerTime / capacity
	}
	return res, nil
}
