package vosim

import (
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes.Count = 40
	cfg.Cycles = 8
	cfg.ArrivalRate = 3
	return cfg
}

func TestRunBasic(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted == 0 {
		t.Fatal("no jobs arrived over 8 cycles at rate 3")
	}
	if res.Scheduled == 0 {
		t.Fatal("nothing scheduled on a lightly loaded environment")
	}
	if res.Scheduled+res.Dropped > res.Submitted {
		t.Fatalf("accounting broken: %d scheduled + %d dropped > %d submitted",
			res.Scheduled, res.Dropped, res.Submitted)
	}
	if rate := res.AcceptanceRate(); rate < 0 || rate > 1 {
		t.Fatalf("acceptance rate %g", rate)
	}
	if res.BrokerUtilization < 0 || res.BrokerUtilization > 1 {
		t.Fatalf("broker utilization %g", res.BrokerUtilization)
	}
	if res.QueueLength.Count() != 8 {
		t.Fatalf("queue sampled %d times, want 8", res.QueueLength.Count())
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Submitted != b.Submitted || a.Scheduled != b.Scheduled || a.Dropped != b.Dropped {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestRunValidation(t *testing.T) {
	bad := smallConfig()
	bad.Cycles = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero cycles accepted")
	}
	bad = smallConfig()
	bad.Horizon = 100
	bad.CycleAdvance = 200
	if _, err := Run(bad); err == nil {
		t.Error("horizon < advance accepted")
	}
	bad = smallConfig()
	bad.ArrivalRate = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative arrival rate accepted")
	}
}

func TestHigherLoadLowersAcceptance(t *testing.T) {
	light := smallConfig()
	light.ArrivalRate = 1
	heavy := smallConfig()
	heavy.ArrivalRate = 20
	heavy.VOBudgetPerCycle = 3000

	lr, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hr.AcceptanceRate() > lr.AcceptanceRate() {
		t.Errorf("heavier load increased acceptance: %g vs %g", hr.AcceptanceRate(), lr.AcceptanceRate())
	}
	if hr.BrokerUtilization < lr.BrokerUtilization {
		t.Errorf("heavier load lowered utilization: %g vs %g", hr.BrokerUtilization, lr.BrokerUtilization)
	}
}

func TestIdleRun(t *testing.T) {
	cfg := smallConfig()
	cfg.ArrivalRate = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 0 || res.Scheduled != 0 {
		t.Fatalf("idle run scheduled jobs: %+v", res)
	}
	if res.AcceptanceRate() != 1 {
		t.Errorf("idle acceptance rate %g, want 1", res.AcceptanceRate())
	}
}

func TestPoliciesRunAndDiffer(t *testing.T) {
	base := smallConfig()
	base.ArrivalRate = 6
	results := map[Policy]*Result{}
	for _, p := range []Policy{PolicyTwoStage, PolicyFCFS, PolicyMinCost} {
		cfg := base
		cfg.Policy = p
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if res.Scheduled == 0 {
			t.Fatalf("policy %v scheduled nothing", p)
		}
		results[p] = res
	}
	// All policies see the same arrivals (the job stream is drawn from the
	// same seed before any policy-dependent choice).
	if results[PolicyFCFS].Submitted != results[PolicyMinCost].Submitted {
		t.Errorf("policies saw different arrivals: %d vs %d",
			results[PolicyFCFS].Submitted, results[PolicyMinCost].Submitted)
	}
	// The MinCost policy cannot pay more per window on average than FCFS.
	if results[PolicyMinCost].WindowCost.Mean() > results[PolicyFCFS].WindowCost.Mean() {
		t.Errorf("mincost policy paid more (%g) than fcfs (%g)",
			results[PolicyMinCost].WindowCost.Mean(), results[PolicyFCFS].WindowCost.Mean())
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		PolicyTwoStage: "two-stage", PolicyFCFS: "fcfs", PolicyMinCost: "mincost", Policy(9): "unknown",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestQueueDrainsUnderLightLoad(t *testing.T) {
	cfg := smallConfig()
	cfg.ArrivalRate = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WaitCycles.Count() > 0 && res.WaitCycles.Mean() > 1 {
		t.Errorf("light load should schedule quickly, mean wait %.2f cycles", res.WaitCycles.Mean())
	}
}
