package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSeedResets(t *testing.T) {
	r := New(5)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(5)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream diverges at %d: %d != %d", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(9)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent: %d/100 identical", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d observations, want about %d", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(2, 10)
		if v < 2 || v > 10 {
			t.Fatalf("IntRange(2,10) = %d", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 10; v++ {
		if !seen[v] {
			t.Errorf("IntRange(2,10) never produced %d in 1000 draws", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Errorf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestFloatRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.FloatRange(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("FloatRange(-3,7) = %g", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(19)
	const trials = 200000
	mean, m2 := 0.0, 0.0
	for i := 1; i <= trials; i++ {
		x := r.Normal(10, 3)
		d := x - mean
		mean += d / float64(i)
		m2 += d * (x - mean)
	}
	sd := math.Sqrt(m2 / float64(trials-1))
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %g, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Errorf("normal sd = %g, want ~3", sd)
	}
}

func TestNormalClamped(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		x := r.NormalClamped(0, 1, -0.5, 0.5)
		if x < -0.5 || x > 0.5 {
			t.Fatalf("NormalClamped out of range: %g", x)
		}
	}
}

func TestExpMoments(t *testing.T) {
	r := New(29)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		x := r.Exp(2)
		if x < 0 {
			t.Fatalf("Exp produced negative %g", x)
		}
		sum += x
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %g, want ~0.5", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestHypergeometricSupport(t *testing.T) {
	r := New(31)
	const pop, succ, draws = 40, 20, 20
	for i := 0; i < 5000; i++ {
		k := r.Hypergeometric(pop, succ, draws)
		if k < 0 || k > draws || k > succ {
			t.Fatalf("hypergeometric out of support: %d", k)
		}
		// At least draws - (pop - succ) successes must be drawn.
		if min := draws - (pop - succ); k < min {
			t.Fatalf("hypergeometric below support: %d < %d", k, min)
		}
	}
}

func TestHypergeometricMean(t *testing.T) {
	r := New(37)
	const pop, succ, draws, trials = 40, 20, 20, 100000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Hypergeometric(pop, succ, draws)
	}
	mean := float64(sum) / trials
	want := float64(draws) * float64(succ) / float64(pop)
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("hypergeometric mean = %g, want ~%g", mean, want)
	}
}

func TestHypergeometricDegenerate(t *testing.T) {
	r := New(41)
	if got := r.Hypergeometric(10, 10, 5); got != 5 {
		t.Errorf("all-success population: got %d, want 5", got)
	}
	if got := r.Hypergeometric(10, 0, 5); got != 0 {
		t.Errorf("no-success population: got %d, want 0", got)
	}
	if got := r.Hypergeometric(10, 4, 0); got != 0 {
		t.Errorf("zero draws: got %d, want 0", got)
	}
}

func TestHypergeometricPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid hypergeometric parameters did not panic")
		}
	}()
	New(1).Hypergeometric(10, 11, 5)
}

func TestPoissonMoments(t *testing.T) {
	r := New(59)
	for _, mean := range []float64{0.5, 4, 40} {
		const trials = 50000
		sum := 0
		for i := 0; i < trials; i++ {
			k := r.Poisson(mean)
			if k < 0 {
				t.Fatalf("negative Poisson draw %d", k)
			}
			sum += k
		}
		got := float64(sum) / trials
		if math.Abs(got-mean) > mean*0.05+0.02 {
			t.Errorf("Poisson(%g) mean = %g", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestBernoulli(t *testing.T) {
	r := New(43)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / trials; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %g", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(47)
	check := func(seed uint64, n uint8) bool {
		rr := New(seed)
		p := rr.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestSampleDistinct(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		r := New(seed)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSampleIntoMatchesSample pins the stream-equality contract SampleInto
// documents: for equal seeds and equal (n, k) the buffered variant must
// return the exact indices Sample does — whether the destination is nil,
// undersized, oversized, or dirty from a previous draw. Recycled search
// state relies on this to replay the windows a fresh search would pick.
func TestSampleIntoMatchesSample(t *testing.T) {
	shapes := []struct{ n, k int }{
		{1, 0}, {1, 1}, {5, 3}, {8, 8}, {40, 1}, {40, 17}, {200, 64},
	}
	equal := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for seed := uint64(1); seed <= 10; seed++ {
		var dirty []int
		for _, sh := range shapes {
			want := New(seed).Sample(sh.n, sh.k)

			if got := New(seed).SampleInto(nil, sh.n, sh.k); !equal(got, want) {
				t.Errorf("seed=%d n=%d k=%d: nil dst diverged: got %v, want %v", seed, sh.n, sh.k, got, want)
			}
			small := make([]int, 0, sh.n/2)
			if got := New(seed).SampleInto(small, sh.n, sh.k); !equal(got, want) {
				t.Errorf("seed=%d n=%d k=%d: undersized dst diverged: got %v, want %v", seed, sh.n, sh.k, got, want)
			}
			big := make([]int, 0, sh.n*2+4)
			for i := 0; i < cap(big); i++ {
				big = append(big, -99)
			}
			if got := New(seed).SampleInto(big[:0], sh.n, sh.k); !equal(got, want) {
				t.Errorf("seed=%d n=%d k=%d: oversized dirty dst diverged: got %v, want %v", seed, sh.n, sh.k, got, want)
			}
			// Reuse one buffer across the whole shape table, as the scanner does.
			dirty = New(seed).SampleInto(dirty[:0], sh.n, sh.k)
			if !equal(dirty, want) {
				t.Errorf("seed=%d n=%d k=%d: recycled dst diverged: got %v, want %v", seed, sh.n, sh.k, dirty, want)
			}
		}
	}
}

func TestSamplePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestShuffle(t *testing.T) {
	r := New(53)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("shuffle lost element %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := New(21), New(21)
	ca, cb := a.Split(), b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split streams from equal parents diverge at %d", i)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var nonzero bool
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero-seeded generator is stuck at zero")
	}
}
