// Package randx provides the deterministic random number generation and the
// probability distributions used by the simulation substrate: uniform,
// normal, exponential and hypergeometric variates, plus choice/shuffle
// helpers.
//
// Every generator is seeded explicitly so that experiments are reproducible
// run-to-run; nothing in this package reads global state.
package randx

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random source based on the SplitMix64 /
// xoshiro256** family. It is intentionally independent of math/rand so the
// stream is stable across Go releases, which keeps recorded experiment
// outputs reproducible.
type Rand struct {
	s [4]uint64
	// cached spare normal variate for the Box-Muller transform
	hasSpare bool
	spare    float64
}

// New returns a generator seeded from the given seed via SplitMix64 state
// expansion. Two generators with the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasSpare = false
}

// Split derives an independent generator from the current one. The derived
// stream is decorrelated from the parent by reseeding through SplitMix64.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// IntRange returns a uniform integer in [lo, hi] inclusive. Panics if
// hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("randx: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// FloatRange returns a uniform float64 in [lo, hi).
func (r *Rand) FloatRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed variate with the given mean and
// standard deviation, via the Box-Muller transform (with spare caching).
func (r *Rand) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	factor := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * factor
	r.hasSpare = true
	return mean + stddev*u*factor
}

// NormalClamped returns a normal variate clamped into [lo, hi].
func (r *Rand) NormalClamped(mean, stddev, lo, hi float64) float64 {
	x := r.Normal(mean, stddev)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate).
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exp called with rate <= 0")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Hypergeometric samples the number of "successes" when drawing draws items
// without replacement from a population of size popSize containing
// successes marked items. It panics on invalid parameters.
//
// The sampler simulates the draw directly; the parameter sizes used by the
// simulation (tens of items) make this exact approach cheap.
func (r *Rand) Hypergeometric(popSize, successes, draws int) int {
	if popSize < 0 || successes < 0 || draws < 0 || successes > popSize || draws > popSize {
		panic("randx: Hypergeometric called with invalid parameters")
	}
	good := successes
	total := popSize
	k := 0
	for i := 0; i < draws; i++ {
		if r.Intn(total) < good {
			k++
			good--
		}
		total--
	}
	return k
}

// Poisson samples a Poisson-distributed count with the given mean, via
// Knuth's product-of-uniforms method for small means and a normal
// approximation (rounded, clamped at 0) for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		x := r.Normal(mean, math.Sqrt(mean))
		if x < 0 {
			return 0
		}
		return int(x + 0.5)
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("randx: Sample called with k out of range")
	}
	// Partial Fisher-Yates over an index table.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// SampleInto is Sample drawing into the caller's buffer: dst is grown (or
// reused) to hold the n-element index table and the first k entries are
// returned. The generator consumption — and therefore the sampled stream —
// is identical to Sample's for equal (n, k), which is what lets recycled
// search state replay the exact windows a fresh search would pick. It
// panics if k > n or k < 0.
func (r *Rand) SampleInto(dst []int, n, k int) []int {
	if k < 0 || k > n {
		panic("randx: Sample called with k out of range")
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	idx := dst[:n]
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
