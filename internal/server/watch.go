package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slotsel"
	"slotsel/internal/core"
	"slotsel/internal/inventory"
	"slotsel/internal/persist"
)

// watchHub tracks the parked /v1/watch subscribers. Each waiter carries
// the time horizon its request's outcome depends on; the inventory's
// change feed (inventory.AddChangeListener) wakes a waiter only when a
// publication's change range overlaps that horizon, so unrelated churn
// re-evaluates nothing. The subscriber set is bounded: a parked watch
// holds one of the server's inflight slots for its whole long-poll, so
// past the limit new watches are rejected immediately rather than being
// allowed to starve the request pool.
type watchHub struct {
	mu       sync.Mutex
	waiters  map[*watchWaiter]struct{}
	limit    int
	draining bool

	// drainCh is closed by drain(); parked handlers select on it so a
	// graceful shutdown wakes every long-poll at once instead of waiting
	// out each deadline.
	drainCh chan struct{}

	delivered atomic.Uint64 // watches answered with a window
	expired   atomic.Uint64 // watches that timed out (404)
	rejected  atomic.Uint64 // watches rejected at the limit (429)
}

// watchWaiter is one parked subscription. ch carries a "state may have
// changed" signal; it is buffered so a notification arriving while the
// handler is mid-search is retained and re-checked, never lost.
type watchWaiter struct {
	lo, hi float64
	ch     chan struct{}
}

func newWatchHub(limit int) *watchHub {
	return &watchHub{
		waiters: make(map[*watchWaiter]struct{}),
		limit:   limit,
		drainCh: make(chan struct{}),
	}
}

// notify is the inventory change listener: wake every waiter whose
// horizon overlaps the published change range. Non-blocking — a waiter
// with a signal already pending needs no second one.
func (h *watchHub) notify(c inventory.Change) {
	h.mu.Lock()
	for w := range h.waiters {
		if c.Overlaps(w.lo, w.hi) {
			select {
			case w.ch <- struct{}{}:
			default:
			}
		}
	}
	h.mu.Unlock()
}

var (
	errWatchFull     = errors.New("watch subscriber limit reached")
	errWatchDraining = errors.New("server draining")
)

// register parks a new subscription over [lo, hi). The waiter MUST be
// registered before the first search runs: a change landing after the
// search but before parking is then caught by the buffered signal
// channel instead of being lost.
func (h *watchHub) register(lo, hi float64) (*watchWaiter, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return nil, errWatchDraining
	}
	if len(h.waiters) >= h.limit {
		return nil, errWatchFull
	}
	w := &watchWaiter{lo: lo, hi: hi, ch: make(chan struct{}, 1)}
	h.waiters[w] = struct{}{}
	return w, nil
}

func (h *watchHub) unregister(w *watchWaiter) {
	h.mu.Lock()
	delete(h.waiters, w)
	h.mu.Unlock()
}

func (h *watchHub) active() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.waiters)
}

// drain rejects future watches and wakes every parked one with 503.
// Idempotent.
func (h *watchHub) drain() {
	h.mu.Lock()
	if !h.draining {
		h.draining = true
		close(h.drainCh)
	}
	h.mu.Unlock()
}

// DrainWatches wakes every parked /v1/watch subscriber with 503 and
// rejects new ones. cmd/slotserve calls it before http.Server.Shutdown so
// long-polls cannot hold the graceful drain open for a full timeout;
// clients are expected to re-subscribe against the replacement server.
func (s *Server) DrainWatches() { s.watch.drain() }

// decodeWatch parses the /v1/watch query string: request (persist request
// JSON), alg or csa naming the search, exactly as the /v1/find body.
func (s *Server) decodeWatch(w http.ResponseWriter, r *http.Request) (*searchInputs, bool) {
	q := r.URL.Query()
	rawReq := q.Get("request")
	if rawReq == "" {
		writeError(w, http.StatusBadRequest, `missing "request" query parameter`)
		return nil, false
	}
	req, err := persist.ReadRequest(strings.NewReader(rawReq))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	in := &searchInputs{req: req}
	if name := q.Get("csa"); name != "" {
		crit, ok := criterionByName(name)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown CSA criterion %q", name))
			return nil, false
		}
		in.useCSA, in.crit = true, crit
		in.key = inventory.NewCacheKey(req, "csa:"+crit.String())
		annotateAlg(r.Context(), "csa:"+crit.String())
	} else {
		name := q.Get("alg")
		if name == "" {
			name = "amp"
		}
		alg, err := slotsel.AlgorithmByName(name, 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return nil, false
		}
		in.alg = alg
		in.key = inventory.NewCacheKey(req, alg.Name())
		annotateAlg(r.Context(), name)
	}
	return in, true
}

// handleWatch is the long-poll: search now, and if no window exists, park
// until an overlapping inventory change makes one plausible, then search
// again. The first satisfying window is pushed with the snapshot version
// it is valid against; the request deadline answers 404 (same meaning as
// find's no-window), drain answers 503. The handler runs inside the
// normal admission gate and per-request deadline; an optional
// timeout_seconds query parameter shortens (never extends) the wait.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	in, ok := s.decodeWatch(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if ts := r.URL.Query().Get("timeout_seconds"); ts != "" {
		secs, err := strconv.ParseFloat(ts, 64)
		if err != nil || secs <= 0 {
			writeError(w, http.StatusBadRequest, "timeout_seconds must be a positive number")
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(secs*float64(time.Second)))
		defer cancel()
	}
	lo, hi := in.key.Horizon()
	waiter, err := s.watch.register(lo, hi)
	if err != nil {
		if errors.Is(err, errWatchDraining) {
			writeError(w, http.StatusServiceUnavailable, "server draining, re-subscribe later")
			return
		}
		s.watch.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, "watch subscriber limit reached, retry later")
		return
	}
	defer s.watch.unregister(waiter)
	for {
		win, snap, err := s.search(in)
		if err == nil {
			s.watch.delivered.Add(1)
			writeJSON(w, http.StatusOK, map[string]any{
				"version": snap.Version,
				"window":  windowJSON(win),
			})
			return
		}
		if !errors.Is(err, core.ErrNoWindow) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		select {
		case <-waiter.ch:
			// An overlapping publication landed; re-evaluate.
		case <-s.watch.drainCh:
			writeError(w, http.StatusServiceUnavailable, "server draining, re-subscribe later")
			return
		case <-ctx.Done():
			s.watch.expired.Add(1)
			writeError(w, http.StatusNotFound, "no feasible window before the watch deadline")
			return
		}
	}
}
