package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"slotsel/internal/core"
	"slotsel/internal/inventory"
	"slotsel/internal/job"
	"slotsel/internal/persist"
	"slotsel/internal/testkit"
	"slotsel/internal/wal"
)

// newLeaderFollowerPair boots a durable leader and a follower over one WAL
// directory and returns their HTTP endpoints plus the moving parts.
func newLeaderFollowerPair(t *testing.T) (leader, follower *httptest.Server, inv *inventory.Inventory, f *wal.Follower, store *wal.Store) {
	t.Helper()
	dir := t.TempDir()
	invOpts := inventory.Options{MinSlotLength: 1, DefaultTTL: time.Hour}
	_, store, _, err := wal.Open(dir, invOpts, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	list := testkit.SlotList(
		testkit.Slot(testkit.Node(0, 5, 1), 0, 200),
		testkit.Slot(testkit.Node(1, 4, 1), 0, 200),
		testkit.Slot(testkit.Node(2, 3, 1), 0, 200),
	)
	seedOpts := invOpts
	seedOpts.Sink = store
	inv, err = inventory.New(list, seedOpts)
	if err != nil {
		t.Fatal(err)
	}
	leader = httptest.NewServer(New(inv, Options{WAL: store}))
	t.Cleanup(leader.Close)

	f, err = wal.NewFollower(dir, invOpts)
	if err != nil {
		t.Fatal(err)
	}
	follower = httptest.NewServer(New(f.Inventory(), Options{ReadOnly: true, Follower: f}))
	t.Cleanup(follower.Close)
	return leader, follower, inv, f, store
}

// catchUp polls the follower until it has applied every event the leader
// has journaled.
func catchUp(t *testing.T, f *wal.Follower, inv *inventory.Inventory) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.LastSeq() < inv.Seq() {
		if _, err := f.Poll(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, leader at %d", f.LastSeq(), inv.Seq())
		}
	}
}

// getBody performs a GET and returns status, headers and raw body.
func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// postBoth posts the same body to the same path on both servers and
// returns the two raw responses.
func postBoth(t *testing.T, leader, follower *httptest.Server, path, body string) (ls, fs int, lb, fb []byte) {
	t.Helper()
	post := func(ts *httptest.Server) (int, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, raw
	}
	ls, lb = post(leader)
	fs, fb = post(follower)
	return ls, fs, lb, fb
}

// TestFollowerDifferential is the replication acceptance check: after the
// follower catches up to the leader's journal position, both report the
// same snapshot_version, and /v1/find and /v1/slots answer byte-identically
// on both — the replica is indistinguishable from the leader for reads.
func TestFollowerDifferential(t *testing.T) {
	leader, follower, inv, f, _ := newLeaderFollowerPair(t)

	// Drive real traffic through the leader's HTTP API: holds, commits,
	// releases — each one a journaled, replicated mutation.
	var held []string
	for i := 0; i < 6; i++ {
		code, out := postJSON(t, leader.URL+"/v1/reserve", map[string]any{
			"request": requestJSON(t, 1+i%3, 20+5*float64(i)),
		})
		if code != http.StatusOK {
			t.Fatalf("reserve %d: status %d: %v", i, code, out)
		}
		held = append(held, fieldString(t, out, "id"))
	}
	for i, id := range held {
		path, want := "/v1/commit", http.StatusOK
		if i%3 == 2 {
			path = "/v1/release"
		}
		if code, out := postJSON(t, leader.URL+path, map[string]any{"id": id}); code != want {
			t.Fatalf("%s %s: status %d: %v", path, id, code, out)
		}
	}

	catchUp(t, f, inv)
	if got, want := f.Inventory().Snapshot().Version, inv.Snapshot().Version; got != want {
		t.Fatalf("snapshot versions differ after catch-up: follower %d, leader %d", got, want)
	}

	// Same version ⇒ every read answers identically, byte for byte.
	for i, tasks := range []int{1, 2, 3} {
		body := fmt.Sprintf(`{"request":{"tasks":%d,"volume":%d,"max_cost":10000},"alg":"amp"}`, tasks, 30+10*i)
		ls, fs, lb, fb := postBoth(t, leader, follower, "/v1/find", body)
		if ls != fs {
			t.Fatalf("find %d: leader status %d, follower status %d", i, ls, fs)
		}
		if string(lb) != string(fb) {
			t.Errorf("find %d: responses differ at the same snapshot_version:\nleader   %s\nfollower %s", i, lb, fb)
		}
	}
	lc, lh, lb := getBody(t, leader.URL+"/v1/slots")
	fc, fh, fb := getBody(t, follower.URL+"/v1/slots")
	if lc != http.StatusOK || fc != http.StatusOK {
		t.Fatalf("slots: leader %d, follower %d", lc, fc)
	}
	if lv, fv := lh.Get("X-Inventory-Version"), fh.Get("X-Inventory-Version"); lv != fv {
		t.Fatalf("slots: version headers differ: leader %s, follower %s", lv, fv)
	}
	if string(lb) != string(fb) {
		t.Errorf("slots: bodies differ:\nleader   %s\nfollower %s", lb, fb)
	}
}

// TestFollowerRejectsWrites pins follower mode's contract: mutating
// endpoints answer 403 without touching the replica, reads keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	_, follower, inv, f, _ := newLeaderFollowerPair(t)
	catchUp(t, f, inv)
	before := f.Inventory().Snapshot().Version
	for _, path := range []string{"/v1/reserve", "/v1/commit", "/v1/release"} {
		code, out := postJSON(t, follower.URL+path, map[string]any{"id": "r00000001"})
		if code != http.StatusForbidden {
			t.Errorf("%s on follower: status %d, want 403 (%v)", path, code, out)
		}
	}
	if got := f.Inventory().Snapshot().Version; got != before {
		t.Fatalf("rejected writes moved the replica: version %d -> %d", before, got)
	}
	if code, _, _ := getBody(t, follower.URL+"/v1/slots"); code != http.StatusOK {
		t.Fatalf("follower /v1/slots: status %d", code)
	}
}

// TestStatuszDurabilitySections checks the leader's durability view and
// the follower's replication view, both of which ride on /v1/statusz.
func TestStatuszDurabilitySections(t *testing.T) {
	leader, follower, inv, f, store := newLeaderFollowerPair(t)
	if code, out := postJSON(t, leader.URL+"/v1/reserve", map[string]any{
		"request": requestJSON(t, 1, 30),
	}); code != http.StatusOK {
		t.Fatalf("reserve: status %d: %v", code, out)
	}
	if err := store.Snapshot(inv.ExportState()); err != nil {
		t.Fatal(err)
	}
	catchUp(t, f, inv)

	code, _, raw := getBody(t, leader.URL+"/v1/statusz")
	if code != http.StatusOK {
		t.Fatalf("leader statusz: %d", code)
	}
	var ls struct {
		ReadOnly   bool `json:"read_only"`
		Durability *struct {
			JournalSeq      uint64  `json:"journal_seq"`
			DurableSeq      uint64  `json:"durable_seq"`
			LastSnapshotSeq uint64  `json:"last_snapshot_seq"`
			SnapshotAge     float64 `json:"snapshot_age_seconds"`
			Fsyncs          uint64  `json:"fsyncs"`
		} `json:"durability"`
	}
	if err := json.Unmarshal(raw, &ls); err != nil {
		t.Fatal(err)
	}
	if ls.ReadOnly {
		t.Error("leader reports read_only")
	}
	if ls.Durability == nil {
		t.Fatal("leader statusz missing durability section")
	}
	if ls.Durability.JournalSeq != inv.Seq() || ls.Durability.DurableSeq != inv.Seq() {
		t.Errorf("durability seqs %d/%d, want both %d (every ack is post-fsync)",
			ls.Durability.JournalSeq, ls.Durability.DurableSeq, inv.Seq())
	}
	if ls.Durability.LastSnapshotSeq == 0 || ls.Durability.SnapshotAge < 0 {
		t.Errorf("snapshot not reflected: seq %d, age %f", ls.Durability.LastSnapshotSeq, ls.Durability.SnapshotAge)
	}
	if ls.Durability.Fsyncs == 0 {
		t.Error("no fsyncs counted on a durable leader")
	}

	code, _, raw = getBody(t, follower.URL+"/v1/statusz")
	if code != http.StatusOK {
		t.Fatalf("follower statusz: %d", code)
	}
	var fs struct {
		ReadOnly    bool `json:"read_only"`
		Replication *struct {
			LastAppliedSeq uint64 `json:"last_applied_seq"`
			Resyncs        uint64 `json:"resyncs"`
		} `json:"replication"`
	}
	if err := json.Unmarshal(raw, &fs); err != nil {
		t.Fatal(err)
	}
	if !fs.ReadOnly {
		t.Error("follower does not report read_only")
	}
	if fs.Replication == nil {
		t.Fatal("follower statusz missing replication section")
	}
	if fs.Replication.LastAppliedSeq != inv.Seq() {
		t.Errorf("replication.last_applied_seq %d, want %d", fs.Replication.LastAppliedSeq, inv.Seq())
	}
}

// slotListBytes renders an inventory's free list in the persist wire
// encoding — the exact /v1/slots body — for byte comparison.
func slotListBytes(t *testing.T, inv *inventory.Inventory) string {
	t.Helper()
	var buf bytes.Buffer
	if err := persist.WriteSlotList(&buf, inv.Snapshot().Slots); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFollowerSweepInertAcrossExpire pins the frozen-clock contract: a
// hold whose TTL lapses in wall time must NOT expire on the follower —
// not via the read-path sweep, not via an explicit Sweep — until the
// leader's own OpExpire arrives, after which /v1/slots is byte-identical
// on both sides again.
func TestFollowerSweepInertAcrossExpire(t *testing.T) {
	leader, follower, inv, f, _ := newLeaderFollowerPair(t)
	code, out := postJSON(t, leader.URL+"/v1/reserve", map[string]any{
		"request": requestJSON(t, 1, 30), "ttl_seconds": 0.05,
	})
	if code != http.StatusOK {
		t.Fatalf("reserve: status %d: %v", code, out)
	}
	catchUp(t, f, inv)
	heldVersion := f.Inventory().Snapshot().Version
	_, _, heldBody := getBody(t, follower.URL+"/v1/slots")

	time.Sleep(120 * time.Millisecond) // the hold is now wall-clock lapsed

	// Follower reads trigger the server's sweep path; an explicit Sweep is
	// the harshest case. Both must leave the replica untouched.
	_, _, again := getBody(t, follower.URL+"/v1/slots")
	f.Inventory().Sweep()
	if got := f.Inventory().Snapshot().Version; got != heldVersion {
		t.Fatalf("follower expired locally: version %d -> %d", heldVersion, got)
	}
	if string(again) != string(heldBody) {
		t.Fatalf("follower /v1/slots changed without a leader event:\nbefore %s\nafter  %s", heldBody, again)
	}

	// The leader's sweep journals the expiry; the follower applies it.
	inv.Sweep()
	if inv.Status().Counters.Expiries == 0 {
		t.Fatal("leader never expired the lapsed hold")
	}
	catchUp(t, f, inv)
	lc, lh, lb := getBody(t, leader.URL+"/v1/slots")
	fc, fh, fb := getBody(t, follower.URL+"/v1/slots")
	if lc != http.StatusOK || fc != http.StatusOK {
		t.Fatalf("slots: leader %d, follower %d", lc, fc)
	}
	if lv, fv := lh.Get("X-Inventory-Version"), fh.Get("X-Inventory-Version"); lv != fv {
		t.Fatalf("version headers differ across OpExpire: leader %s, follower %s", lv, fv)
	}
	if string(lb) != string(fb) {
		t.Errorf("slots bodies differ across OpExpire:\nleader   %s\nfollower %s", lb, fb)
	}
}

// TestFollowerResyncFromSnapshotKeepsLapsedHold: a follower that
// bootstraps (resyncs) from a snapshot containing a hold whose TTL has
// already lapsed in wall time must keep it live under the frozen clock —
// expiry belongs to the leader's journal, even through resync.
func TestFollowerResyncFromSnapshotKeepsLapsedHold(t *testing.T) {
	dir := t.TempDir()
	invOpts := inventory.Options{MinSlotLength: 1, DefaultTTL: time.Hour}
	_, store, _, err := wal.Open(dir, invOpts, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	seedOpts := invOpts
	seedOpts.Sink = store
	inv, err := inventory.New(testkit.SlotList(testkit.Slot(testkit.Node(0, 5, 1), 0, 200)), seedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Reserve(&job.Request{TaskCount: 1, Volume: 50, MaxCost: 10000}, core.AMP{}, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := store.Snapshot(inv.ExportState()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // lapse the hold in wall time

	f, err := wal.NewFollower(dir, invOpts)
	if err != nil {
		t.Fatal(err)
	}
	catchUp(t, f, inv)
	repl := f.Inventory()
	v := repl.Snapshot().Version
	repl.Sweep()
	if got := repl.Snapshot().Version; got != v {
		t.Fatalf("Sweep expired a recovered hold during resync: version %d -> %d", v, got)
	}
	if holds := repl.Status().Holds; holds != 1 {
		t.Fatalf("recovered hold count = %d, want 1", holds)
	}
	if got, want := slotListBytes(t, repl), slotListBytes(t, inv); got != want {
		t.Fatalf("replica free list diverged before the leader expired:\nreplica %s\nleader  %s", got, want)
	}

	// Only the leader's OpExpire may retire it.
	inv.Sweep()
	if inv.Status().Counters.Expiries != 1 {
		t.Fatalf("leader expiries = %d, want 1", inv.Status().Counters.Expiries)
	}
	catchUp(t, f, inv)
	if holds := repl.Status().Holds; holds != 0 {
		t.Fatalf("replica still holds %d after the leader's OpExpire", holds)
	}
	if got, want := slotListBytes(t, repl), slotListBytes(t, inv); got != want {
		t.Fatalf("replica free list diverged after OpExpire:\nreplica %s\nleader  %s", got, want)
	}
}
