package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"sync"
	"testing"
	"time"

	"slotsel/internal/inventory"
	"slotsel/internal/job"
	"slotsel/internal/persist"
	"slotsel/internal/telemetry"
	"slotsel/internal/testkit"
)

// newWatchServer builds a server over a single slot [0, 100) on one
// perf-5 node, so one volume-500 reservation consumes the whole pool and
// watch subscriptions park deterministically.
func newWatchServer(t *testing.T, opts Options) (*Server, *httptest.Server, inventory.Pool) {
	t.Helper()
	inv := testPool(t, testkit.SlotList(testkit.Slot(testkit.Node(0, 5, 1), 0, 100)))
	srv := New(inv, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, inv
}

// watchURL renders a /v1/watch query for a persist-encoded request.
func watchURL(t *testing.T, base string, req json.RawMessage, extra url.Values) string {
	t.Helper()
	q := url.Values{"request": {string(req)}}
	for k, vs := range extra {
		q[k] = vs
	}
	return base + "/v1/watch?" + q.Encode()
}

// getJSON performs a GET and decodes the JSON body.
func getJSON(t *testing.T, u string) (int, http.Header, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, resp.Header, out
}

// watchStatus reads the statusz watch section.
func watchStatus(t *testing.T, base string) (active int, delivered, expired, rejected uint64) {
	t.Helper()
	resp, err := http.Get(base + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Watch struct {
			Active    int    `json:"active"`
			Delivered uint64 `json:"delivered"`
			Expired   uint64 `json:"expired"`
			Rejected  uint64 `json:"rejected"`
		} `json:"watch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	w := body.Watch
	return w.Active, w.Delivered, w.Expired, w.Rejected
}

// awaitParked polls until n watch subscribers are parked.
func awaitParked(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if active, _, _, _ := watchStatus(t, base); active >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher never parked (want %d active)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// reserveAll books the whole single-slot pool and returns the hold ID.
func reserveAll(t *testing.T, base string) string {
	t.Helper()
	code, out := postJSON(t, base+"/v1/reserve", map[string]any{
		"request":     requestJSON(t, 1, 500), // runtime 100 at perf 5: the full slot
		"ttl_seconds": 60,
	})
	if code != http.StatusOK {
		t.Fatalf("reserve-all: status %d: %v", code, out)
	}
	return fieldString(t, out, "id")
}

// TestWatchImmediateDelivery: a satisfiable request is answered without
// parking, with the same shape as /v1/find.
func TestWatchImmediateDelivery(t *testing.T) {
	_, ts, _ := newWatchServer(t, Options{})
	code, _, out := getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50), nil))
	if code != http.StatusOK {
		t.Fatalf("watch: status %d: %v", code, out)
	}
	if len(out["window"]) == 0 || string(out["window"]) == "null" {
		t.Fatalf("watch delivered no window: %v", out)
	}
	if len(out["version"]) == 0 {
		t.Fatal("watch response missing snapshot version")
	}
	if _, delivered, _, _ := watchStatus(t, ts.URL); delivered != 1 {
		t.Fatalf("delivered counter = %d, want 1", delivered)
	}
}

// TestWatchDeliversOnRelease is the event-driven core: a watch parked on
// a fully booked pool is woken by the overlapping release publication and
// pushed the first satisfying window.
func TestWatchDeliversOnRelease(t *testing.T) {
	_, ts, _ := newWatchServer(t, Options{RequestTimeout: 10 * time.Second})
	id := reserveAll(t, ts.URL)

	type result struct {
		code int
		out  map[string]json.RawMessage
	}
	done := make(chan result, 1)
	go func() {
		code, _, out := getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50), nil))
		done <- result{code, out}
	}()
	awaitParked(t, ts.URL, 1)

	if code, _ := postJSON(t, ts.URL+"/v1/release", map[string]any{"id": id}); code != http.StatusOK {
		t.Fatalf("release: status %d", code)
	}
	select {
	case res := <-done:
		if res.code != http.StatusOK {
			t.Fatalf("watch after release: status %d: %v", res.code, res.out)
		}
		if len(res.out["window"]) == 0 || string(res.out["window"]) == "null" {
			t.Fatalf("watch delivered no window: %v", res.out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch was not woken by the release")
	}
	if active, delivered, _, _ := watchStatus(t, ts.URL); active != 0 || delivered != 1 {
		t.Fatalf("post-delivery stats: active %d, delivered %d", active, delivered)
	}
}

// TestWatchDeadline: a watch on a pool that never frees answers 404 at
// its (shortened) deadline, mirroring find's no-window status.
func TestWatchDeadline(t *testing.T) {
	_, ts, _ := newWatchServer(t, Options{})
	reserveAll(t, ts.URL)
	begin := time.Now()
	code, _, out := getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50),
		url.Values{"timeout_seconds": {"0.15"}}))
	if code != http.StatusNotFound {
		t.Fatalf("watch: status %d: %v", code, out)
	}
	if waited := time.Since(begin); waited < 100*time.Millisecond {
		t.Fatalf("watch answered after %v; it never parked", waited)
	}
	if _, _, expired, _ := watchStatus(t, ts.URL); expired != 1 {
		t.Fatalf("expired counter = %d, want 1", expired)
	}
}

// TestWatchSubscriberLimit: past WatchLimit, new watches are rejected
// immediately with 429 and a parseable Retry-After — parked long-polls
// must not be able to consume the whole admission pool.
func TestWatchSubscriberLimit(t *testing.T) {
	_, ts, _ := newWatchServer(t, Options{WatchLimit: 1, RequestTimeout: 10 * time.Second})
	reserveAll(t, ts.URL)
	release := make(chan struct{})
	go func() {
		getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50),
			url.Values{"timeout_seconds": {"5"}}))
		close(release)
	}()
	awaitParked(t, ts.URL, 1)

	code, hdr, out := getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50), nil))
	if code != http.StatusTooManyRequests {
		t.Fatalf("second watch: status %d: %v", code, out)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < minRetryAfterSeconds || ra > maxRetryAfterSeconds {
		t.Fatalf("Retry-After %q not an integer in [%d, %d]",
			hdr.Get("Retry-After"), minRetryAfterSeconds, maxRetryAfterSeconds)
	}
	if _, _, _, rejected := watchStatus(t, ts.URL); rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}
	<-release
}

// TestWatchDrain: DrainWatches wakes every parked subscriber with 503 and
// rejects new subscriptions, so graceful shutdown is not held open by
// long-polls.
func TestWatchDrain(t *testing.T) {
	srv, ts, _ := newWatchServer(t, Options{RequestTimeout: 10 * time.Second})
	reserveAll(t, ts.URL)
	done := make(chan int, 1)
	go func() {
		code, _, _ := getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50), nil))
		done <- code
	}()
	awaitParked(t, ts.URL, 1)
	srv.DrainWatches()
	select {
	case code := <-done:
		if code != http.StatusServiceUnavailable {
			t.Fatalf("drained watch: status %d, want 503", code)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("drain did not wake the parked watch")
	}
	if code, _, _ := getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50), nil)); code != http.StatusServiceUnavailable {
		t.Fatalf("watch after drain: status %d, want 503", code)
	}
}

// TestWatchBadInputs: malformed subscriptions fail fast with 400/405, not
// by parking.
func TestWatchBadInputs(t *testing.T) {
	_, ts, _ := newWatchServer(t, Options{})
	req := requestJSON(t, 1, 50)
	cases := []struct {
		name string
		url  string
		want int
	}{
		{"missing request", ts.URL + "/v1/watch", http.StatusBadRequest},
		{"bad request json", ts.URL + "/v1/watch?request=%7B", http.StatusBadRequest},
		{"unknown alg", watchURL(t, ts.URL, req, url.Values{"alg": {"nope"}}), http.StatusBadRequest},
		{"unknown csa", watchURL(t, ts.URL, req, url.Values{"csa": {"nope"}}), http.StatusBadRequest},
		{"negative timeout", watchURL(t, ts.URL, req, url.Values{"timeout_seconds": {"-1"}}), http.StatusBadRequest},
		{"non-numeric timeout", watchURL(t, ts.URL, req, url.Values{"timeout_seconds": {"soon"}}), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, out := getJSON(t, tc.url); code != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.want, out)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/watch", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/watch: status %d, want 405", resp.StatusCode)
	}
}

// TestWatchCSADelivery: the CSA criterion path works over watch too.
func TestWatchCSADelivery(t *testing.T) {
	_, ts, _ := newWatchServer(t, Options{})
	code, _, out := getJSON(t, watchURL(t, ts.URL, requestJSON(t, 1, 50),
		url.Values{"csa": {"cost"}}))
	if code != http.StatusOK {
		t.Fatalf("csa watch: status %d: %v", code, out)
	}
	if len(out["window"]) == 0 || string(out["window"]) == "null" {
		t.Fatalf("csa watch delivered no window: %v", out)
	}
}

// TestWatchThenReserveNoDoubleBooking extends the no-double-booking race
// suite to the cached/event-driven path: clients learn about capacity via
// /v1/watch (served through the find cache), then race to reserve and
// commit it. Advisory watch windows lose races safely (409/404 retries),
// and every committed window must still be pairwise disjoint per node.
func TestWatchThenReserveNoDoubleBooking(t *testing.T) {
	const clients = 6
	_, ts, inv := newTestServer(t, Options{
		MaxInflight:    16,
		QueueDepth:     128,
		WatchLimit:     clients,
		RequestTimeout: 5 * time.Second,
	})

	var (
		mu      sync.Mutex
		commits []wireWindow
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := requestJSON(t, 2, 30)
			for i := 0; i < 20; i++ {
				code, _, out := getJSON(t, watchURL(t, ts.URL, req,
					url.Values{"timeout_seconds": {"0.5"}}))
				if code == http.StatusNotFound {
					return // pool exhausted: no window before the deadline
				}
				if code == http.StatusTooManyRequests {
					continue
				}
				if code != http.StatusOK {
					t.Errorf("client %d: watch status %d: %v", c, code, out)
					return
				}
				code, rout := postJSON(t, ts.URL+"/v1/reserve", map[string]any{
					"request": req, "ttl_seconds": 60,
				})
				if code == http.StatusNotFound || code == http.StatusConflict {
					continue // lost the race the watch window advertised
				}
				if code != http.StatusOK {
					t.Errorf("client %d: reserve status %d: %v", c, code, rout)
					return
				}
				id := fieldString(t, rout, "id")
				code, cout := postJSON(t, ts.URL+"/v1/commit", map[string]any{"id": id})
				if code != http.StatusOK {
					t.Errorf("client %d: commit status %d: %v", c, code, cout)
					return
				}
				var win wireWindow
				if err := json.Unmarshal(cout["window"], &win); err != nil {
					t.Errorf("client %d: window: %v", c, err)
					return
				}
				mu.Lock()
				commits = append(commits, win)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if len(commits) == 0 {
		t.Fatal("no watch-advertised window was ever committed")
	}
	for i := 0; i < len(commits); i++ {
		for j := i + 1; j < len(commits); j++ {
			for _, p := range commits[i].Placements {
				for _, q := range commits[j].Placements {
					if p.Node == q.Node && p.Start < q.Start+q.Exec && q.Start < p.Start+p.Exec {
						t.Fatalf("double booking on node %d: [%g,%g) vs [%g,%g)",
							p.Node, p.Start, p.Start+p.Exec, q.Start, q.Start+q.Exec)
					}
				}
			}
		}
	}
	// A cross-shard commit ticks one counter per touched shard, so the
	// matrix run counts distinct committed windows instead.
	if got := int(inv.Status().Counters.Commits); testShards() == 1 && got != len(commits) {
		t.Fatalf("inventory reports %d commits, clients observed %d", got, len(commits))
	}
	if got := len(inv.Committed()); got != len(commits) {
		t.Fatalf("inventory holds %d committed windows, clients observed %d", got, len(commits))
	}
}

// TestAvgServiceExcludesWatch: a parked long-poll must not poison the
// mean service time behind the Retry-After drain estimate.
func TestAvgServiceExcludesWatch(t *testing.T) {
	srv, ts, _ := newWatchServer(t, Options{})
	// A request no node can satisfy parks until its shortened deadline.
	var buf bytes.Buffer
	if err := persist.WriteRequest(&buf, &job.Request{TaskCount: 1, Volume: 10, MaxCost: 10000, MinPerf: 999}); err != nil {
		t.Fatal(err)
	}
	code, _, _ := getJSON(t, watchURL(t, ts.URL, buf.Bytes(),
		url.Values{"timeout_seconds": {"0.4"}}))
	if code != http.StatusNotFound {
		t.Fatalf("impossible watch: status %d, want 404", code)
	}
	if avg := srv.avgService(); avg > 200*time.Millisecond {
		t.Fatalf("avgService %v includes the 400ms watch park", avg)
	}
	if srv.completed.Load() == 0 {
		t.Fatal("watch requests must still count as completed")
	}
}

// TestStatuszAndMetricsFindCache: two identical finds produce a cache hit
// visible in the statusz find_cache section and the slotserve_find_cache_*
// and slotserve_watch_* metric families.
func TestStatuszAndMetricsFindCache(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts, _ := newTestServer(t, Options{Metrics: reg})
	req := requestJSON(t, 2, 50)
	for i := 0; i < 2; i++ {
		if code, out := postJSON(t, ts.URL+"/v1/find", map[string]any{"request": req}); code != http.StatusOK {
			t.Fatalf("find %d: status %d: %v", i, code, out)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		FindCache *struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		} `json:"find_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.FindCache == nil {
		t.Fatal("statusz missing find_cache section")
	}
	if body.FindCache.Hits < 1 || body.FindCache.Misses < 1 || body.FindCache.Entries < 1 {
		t.Fatalf("find_cache stats %+v: want >=1 hit, miss and entry", *body.FindCache)
	}
	vals, raw := scrapeMetricsz(t, ts.URL)
	hits, ok := vals["slotserve_find_cache_hits_total"]
	if !ok || hits != float64(body.FindCache.Hits) {
		t.Fatalf("slotserve_find_cache_hits_total = %v (present %v), statusz hits %d\n%s",
			hits, ok, body.FindCache.Hits, raw)
	}
	for _, fam := range []string{
		"slotserve_find_cache_misses_total",
		"slotserve_find_cache_invalidated_total",
		"slotserve_find_cache_evicted_total",
		"slotserve_find_cache_entries",
		"slotserve_watch_active",
		"slotserve_watch_delivered_total",
		"slotserve_watch_expired_total",
		"slotserve_watch_rejected_total",
	} {
		if _, ok := vals[fam]; !ok {
			t.Errorf("metric family %s missing from /metricsz", fam)
		}
	}
}

// TestFindCacheDisabled: FindCacheSize < 0 turns the cache off — every
// find is a fresh scan and statusz carries no find_cache section.
func TestFindCacheDisabled(t *testing.T) {
	srv, ts, _ := newTestServer(t, Options{FindCacheSize: -1})
	if srv.cache != nil {
		t.Fatal("cache built despite FindCacheSize < 0")
	}
	req := requestJSON(t, 2, 50)
	if code, out := postJSON(t, ts.URL+"/v1/find", map[string]any{"request": req}); code != http.StatusOK {
		t.Fatalf("find: status %d: %v", code, out)
	}
	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if _, ok := body["find_cache"]; ok {
		t.Fatal("statusz carries a find_cache section with the cache disabled")
	}
}
