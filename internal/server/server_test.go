package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"slotsel/internal/inventory"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/persist"
	"slotsel/internal/slots"
	"slotsel/internal/testkit"
)

// testShards is the shard-matrix knob: the CI matrix re-runs this suite
// with SLOTSEL_TEST_SHARDS=4 so every HTTP-level invariant is also held
// over a sharded pool. Default 1 keeps the plain single-inventory path.
func testShards() int {
	n, err := strconv.Atoi(os.Getenv("SLOTSEL_TEST_SHARDS"))
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// testPool builds the suite's inventory over list, sharded when the
// matrix knob asks for it.
func testPool(t *testing.T, list slots.List) inventory.Pool {
	t.Helper()
	opts := inventory.Options{MinSlotLength: 1}
	if n := testShards(); n > 1 {
		opts.Shards = n
		pool, err := inventory.NewSharded(list, opts)
		if err != nil {
			t.Fatal(err)
		}
		return pool
	}
	inv, err := inventory.New(list, opts)
	if err != nil {
		t.Fatal(err)
	}
	return inv
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, inventory.Pool) {
	t.Helper()
	inv := testPool(t, testkit.SlotList(
		testkit.Slot(testkit.Node(0, 5, 1), 0, 200),
		testkit.Slot(testkit.Node(1, 4, 1), 0, 200),
		testkit.Slot(testkit.Node(2, 3, 1), 0, 200),
	))
	srv := New(inv, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, inv
}

func requestJSON(t *testing.T, tasks int, volume float64) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := persist.WriteRequest(&buf, &job.Request{TaskCount: tasks, Volume: volume, MaxCost: 10000}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, url, string(raw))
}

func postRaw(t *testing.T, url, raw string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func fieldString(t *testing.T, m map[string]json.RawMessage, key string) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(m[key], &s); err != nil {
		t.Fatalf("field %q: %v (raw %s)", key, err, m[key])
	}
	return s
}

// TestLifecycleWalkthrough drives the documented find → reserve → commit →
// release sequence end to end over real HTTP.
func TestLifecycleWalkthrough(t *testing.T) {
	_, ts, inv := newTestServer(t, Options{})
	req := requestJSON(t, 2, 50)

	code, out := postJSON(t, ts.URL+"/v1/find", map[string]any{"request": req})
	if code != http.StatusOK {
		t.Fatalf("find: status %d: %v", code, out)
	}
	if len(out["window"]) == 0 {
		t.Fatal("find: no window in response")
	}

	code, out = postJSON(t, ts.URL+"/v1/reserve", map[string]any{"request": req, "ttl_seconds": 60})
	if code != http.StatusOK {
		t.Fatalf("reserve: status %d: %v", code, out)
	}
	id := fieldString(t, out, "id")
	if id == "" {
		t.Fatal("reserve: empty reservation id")
	}

	code, out = postJSON(t, ts.URL+"/v1/commit", map[string]any{"id": id})
	if code != http.StatusOK {
		t.Fatalf("commit: status %d: %v", code, out)
	}

	// Double-commit must 404: the hold is gone.
	code, _ = postJSON(t, ts.URL+"/v1/commit", map[string]any{"id": id})
	if code != http.StatusNotFound {
		t.Fatalf("double commit: status %d, want 404", code)
	}

	// A second reserve+release round-trips too.
	code, out = postJSON(t, ts.URL+"/v1/reserve", map[string]any{"request": req})
	if code != http.StatusOK {
		t.Fatalf("reserve 2: status %d: %v", code, out)
	}
	id2 := fieldString(t, out, "id")
	code, _ = postJSON(t, ts.URL+"/v1/release", map[string]any{"id": id2})
	if code != http.StatusOK {
		t.Fatalf("release: status %d", code)
	}

	// Over a sharded pool a cross-shard operation ticks the counter of
	// every shard it touches, so the matrix run only checks lower bounds.
	got := inv.Status().Counters
	if testShards() == 1 {
		if got.Commits != 1 || got.Releases != 1 || got.Reserves != 2 {
			t.Fatalf("counters = %+v, want 2 reserves / 1 commit / 1 release", got)
		}
	} else if got.Commits < 1 || got.Releases < 1 || got.Reserves < 2 {
		t.Fatalf("sharded counters = %+v, want at least 2 reserves / 1 commit / 1 release", got)
	}
}

// TestSlotsAndStatusz checks the read-only endpoints: /v1/slots emits a
// parseable persist slot list that shrinks after a commit, /v1/statusz
// reports inventory and server sections.
// TestStatuszShardSection: over an explicitly sharded pool, statusz must
// expose the per-shard breakdown alongside the merged inventory section,
// and the sum of shard node counts must equal the merged count.
func TestStatuszShardSection(t *testing.T) {
	inv, err := inventory.NewSharded(testkit.SlotList(
		testkit.Slot(testkit.Node(0, 5, 1), 0, 200),
		testkit.Slot(testkit.Node(1, 4, 1), 0, 200),
		testkit.Slot(testkit.Node(2, 3, 1), 0, 200),
	), inventory.Options{MinSlotLength: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(inv, Options{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Inventory inventory.Status   `json:"inventory"`
		Shards    []inventory.Status `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Shards) != 4 {
		t.Fatalf("statusz shards section has %d entries, want 4", len(status.Shards))
	}
	var nodes int
	for _, st := range status.Shards {
		nodes += st.Nodes
	}
	if nodes != status.Inventory.Nodes || nodes != 3 {
		t.Fatalf("shard node counts sum to %d, merged section says %d, want 3", nodes, status.Inventory.Nodes)
	}
}

func TestSlotsAndStatusz(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})

	resp, err := http.Get(ts.URL + "/v1/slots")
	if err != nil {
		t.Fatal(err)
	}
	before, err := persist.ReadSlotList(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("slots: %v", err)
	}
	if len(before) != 3 {
		t.Fatalf("got %d free slots, want 3", len(before))
	}
	if resp.Header.Get("X-Inventory-Version") == "" {
		t.Fatal("missing X-Inventory-Version header")
	}

	code, out := postJSON(t, ts.URL+"/v1/reserve", map[string]any{"request": requestJSON(t, 2, 50)})
	if code != http.StatusOK {
		t.Fatalf("reserve: %d", code)
	}
	postJSON(t, ts.URL+"/v1/commit", map[string]any{"id": fieldString(t, out, "id")})

	resp, err = http.Get(ts.URL + "/v1/slots")
	if err != nil {
		t.Fatal(err)
	}
	after, err := persist.ReadSlotList(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The committed spans must be gone: total free capacity shrinks.
	var totalBefore, totalAfter float64
	for _, s := range before {
		totalBefore += s.End - s.Start
	}
	for _, s := range after {
		totalAfter += s.End - s.Start
	}
	if totalAfter >= totalBefore {
		t.Fatalf("free capacity did not shrink after commit: %g -> %g", totalBefore, totalAfter)
	}

	resp, err = http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Inventory inventory.Status `json:"inventory"`
		Server    struct {
			Requests uint64 `json:"requests"`
			Shed     uint64 `json:"shed"`
		} `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Sharded pools tick the commit counter once per touched shard.
	if status.Inventory.Counters.Commits < 1 || (testShards() == 1 && status.Inventory.Counters.Commits != 1) {
		t.Fatalf("statusz commits = %d, want 1", status.Inventory.Counters.Commits)
	}
	if status.Inventory.Committed != 1 {
		t.Fatalf("statusz committed = %d, want 1", status.Inventory.Committed)
	}
	if status.Server.Requests == 0 {
		t.Fatal("statusz server.requests is zero")
	}
}

// TestErrorPaths exercises the 4xx surface: bad bodies, unknown algorithms,
// wrong methods, unknown reservations, infeasible requests.
func TestErrorPaths(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})

	for _, tc := range []struct {
		name string
		url  string
		body any
		want int
	}{
		{"garbage body", "/v1/find", "not json", http.StatusBadRequest},
		{"missing request", "/v1/find", map[string]any{}, http.StatusBadRequest},
		{"unknown alg", "/v1/find", map[string]any{"request": requestJSON(t, 1, 10), "alg": "nope"}, http.StatusBadRequest},
		{"unknown csa criterion", "/v1/reserve", map[string]any{"request": requestJSON(t, 1, 10), "csa": "vibes"}, http.StatusBadRequest},
		{"negative ttl", "/v1/reserve", map[string]any{"request": requestJSON(t, 1, 10), "ttl_seconds": -1}, http.StatusBadRequest},
		{"infeasible", "/v1/find", map[string]any{"request": requestJSON(t, 50, 10)}, http.StatusNotFound},
		{"unknown commit id", "/v1/commit", map[string]any{"id": "r99999999"}, http.StatusNotFound},
		{"unknown release id", "/v1/release", map[string]any{"id": "r99999999"}, http.StatusNotFound},
		{"empty id", "/v1/commit", map[string]any{}, http.StatusBadRequest},
	} {
		code, _ := postJSON(t, ts.URL+tc.url, tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Raw-body rows: malformed framing the JSON marshaller cannot produce.
	// Trailing tokens after the decoded value are rejected rather than
	// silently dropped, and bodies over the 1 MiB cap map to 413, not a
	// generic 400.
	for _, tc := range []struct {
		name string
		url  string
		raw  string
		want int
	}{
		{"trailing tokens after search", "/v1/find", `{"alg":"amp"} {"second":1}`, http.StatusBadRequest},
		{"trailing garbage after id", "/v1/commit", `{"id":"r1"}garbage`, http.StatusBadRequest},
		{"oversized search body", "/v1/find", `{"pad":"` + strings.Repeat("x", 1<<20) + `"}`, http.StatusRequestEntityTooLarge},
		{"oversized id body", "/v1/release", `{"id":"` + strings.Repeat("x", 1<<20) + `"}`, http.StatusRequestEntityTooLarge},
	} {
		code, _ := postRaw(t, ts.URL+tc.url, tc.raw)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/find")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/find: status %d, want 405", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/v1/slots", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/slots: status %d, want 405", resp2.StatusCode)
	}
}

// TestCSAReserve reserves via the CSA alternative search selecting by cost.
func TestCSAReserve(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	code, out := postJSON(t, ts.URL+"/v1/reserve", map[string]any{
		"request": requestJSON(t, 2, 50),
		"csa":     "cost",
	})
	if code != http.StatusOK {
		t.Fatalf("csa reserve: status %d: %v", code, out)
	}
	if fieldString(t, out, "id") == "" {
		t.Fatal("empty id")
	}
}

// placement mirrors the persist window placement for overlap checking.
type placement struct {
	Node  int     `json:"node"`
	Start float64 `json:"start"`
	Exec  float64 `json:"exec"`
}

type wireWindow struct {
	Placements []placement `json:"placements"`
}

// TestConcurrentNoDoubleBooking is the server-level race acceptance test:
// many concurrent clients reserve and commit against one inventory; the
// committed windows must be pairwise disjoint per node (half-open
// intervals), and every successful reserve must settle as exactly one
// commit or release. Run under -race this also exercises the lock-free
// snapshot path.
func TestConcurrentNoDoubleBooking(t *testing.T) {
	const (
		clients    = 10
		reqPerC    = 8
		tasksPerOp = 2
	)
	_, ts, inv := newTestServer(t, Options{MaxInflight: clients, QueueDepth: clients * reqPerC})

	type committed struct {
		id  string
		win wireWindow
	}
	var (
		mu       sync.Mutex
		commits  []committed
		reserves int
		settles  int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < reqPerC; i++ {
				code, out := postJSON(t, ts.URL+"/v1/reserve", map[string]any{
					"request":     requestJSON(t, tasksPerOp, 30),
					"ttl_seconds": 60,
				})
				if code == http.StatusNotFound || code == http.StatusConflict {
					continue // pool drained or lost a race: both fine
				}
				if code != http.StatusOK {
					t.Errorf("client %d: reserve status %d: %v", c, code, out)
					return
				}
				mu.Lock()
				reserves++
				mu.Unlock()
				id := fieldString(t, out, "id")
				if (c+i)%4 == 3 { // every 4th settles by release
					if code, _ := postJSON(t, ts.URL+"/v1/release", map[string]any{"id": id}); code == http.StatusOK {
						mu.Lock()
						settles++
						mu.Unlock()
					}
					continue
				}
				code, out = postJSON(t, ts.URL+"/v1/commit", map[string]any{"id": id})
				if code != http.StatusOK {
					t.Errorf("client %d: commit %s status %d: %v", c, id, code, out)
					return
				}
				var win wireWindow
				if err := json.Unmarshal(out["window"], &win); err != nil {
					t.Errorf("client %d: window: %v", c, err)
					return
				}
				mu.Lock()
				settles++
				commits = append(commits, committed{id, win})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if reserves == 0 {
		t.Fatal("no reserve ever succeeded")
	}
	if settles != reserves {
		t.Fatalf("%d reserves but %d settles — a hold leaked", reserves, settles)
	}

	// Pairwise disjointness of committed spans per node: [s1,e1) and
	// [s2,e2) conflict iff s1 < e2 && s2 < e1. Touching is legal.
	for i := 0; i < len(commits); i++ {
		for j := i + 1; j < len(commits); j++ {
			for _, p := range commits[i].win.Placements {
				for _, q := range commits[j].win.Placements {
					if p.Node == q.Node && p.Start < q.Start+q.Exec && q.Start < p.Start+p.Exec {
						t.Fatalf("double booking on node %d: %s has [%g,%g), %s has [%g,%g)",
							p.Node, commits[i].id, p.Start, p.Start+p.Exec,
							commits[j].id, q.Start, q.Start+q.Exec)
					}
				}
			}
		}
	}

	// Lifecycle accounting must balance exactly: the identity holds even
	// over shards, because a cross-shard operation settles every sub-hold
	// it opened. The exact commit tally is only meaningful unsharded —
	// a cross-shard commit counts once per touched shard.
	ctr := inv.Status().Counters
	if ctr.Reserves != ctr.Commits+ctr.Releases+ctr.Expiries+ctr.Cancelled {
		t.Fatalf("unbalanced lifecycle counters: %+v", ctr)
	}
	if testShards() == 1 && int(ctr.Commits) != len(commits) {
		t.Fatalf("inventory reports %d commits, clients observed %d", ctr.Commits, len(commits))
	}
	if got := len(inv.Committed()); got != len(commits) {
		t.Fatalf("inventory holds %d committed windows, clients observed %d", got, len(commits))
	}
}

// TestAdmissionControl floods a server whose handlers are pinned by
// testHook: beyond MaxInflight + QueueDepth, requests must be shed
// immediately with 429 + Retry-After, and the server's goroutine footprint
// must stay bounded by the admission gate rather than growing with offered
// load.
func TestAdmissionControl(t *testing.T) {
	const (
		maxInflight = 2
		queueDepth  = 2
		flood       = 40
	)
	release := make(chan struct{})
	var unpinOnce sync.Once
	unpin := func() { unpinOnce.Do(func() { close(release) }) }
	srv, ts, _ := newTestServer(t, Options{
		MaxInflight:    maxInflight,
		QueueDepth:     queueDepth,
		RequestTimeout: 10 * time.Second,
	})
	// Unpin on any exit path, or ts.Close (registered above, runs after
	// this — cleanups are LIFO) would hang on pinned handlers.
	t.Cleanup(unpin)
	srv.testHook = func() { <-release }

	baseline := runtime.NumGoroutine()

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	codes := make(chan int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get(ts.URL + "/v1/statusz")
			if err != nil {
				codes <- -1
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}

	// Wait until the gate is saturated and the shed responses have come
	// back, then check the inflight handler count never exceeded the cap.
	deadline := time.After(5 * time.Second)
	shed, consumed := 0, 0
	for shed < flood-maxInflight-queueDepth {
		select {
		case code := <-codes:
			consumed++
			if code == http.StatusTooManyRequests {
				shed++
			} else if code != -1 {
				t.Fatalf("unexpected early status %d while gate is pinned", code)
			}
		case <-deadline:
			t.Fatalf("only %d sheds after 5s, want %d", shed, flood-maxInflight-queueDepth)
		}
	}

	// Handler goroutines are bounded by inflight+queued, not by flood size:
	// once the 36 shed requests drain, only the 4 pinned connections (plus
	// their net/http reader goroutines and waiting clients) remain. Without
	// shedding, all 40 connections would be held (~3 goroutines each). The
	// drain is asynchronous, so poll.
	waitFor(t, func() bool {
		return runtime.NumGoroutine() <= baseline+6*(maxInflight+queueDepth)
	})

	unpin()
	wg.Wait()

	ok := 0
	for i := 0; i < flood-consumed; i++ {
		if code := <-codes; code == http.StatusOK {
			ok++
		}
	}
	if want := maxInflight + queueDepth; ok != want {
		t.Errorf("%d requests eventually succeeded, want %d (inflight+queue)", ok, want)
	}
	if got := srv.shed.Load(); int(got) != shed {
		t.Errorf("server counted %d sheds, clients saw %d", got, shed)
	}
}

// TestRequestSpans verifies the per-request observability spans.
func TestRequestSpans(t *testing.T) {
	trace := obs.NewTrace(64)
	list := testkit.SlotList(testkit.Slot(testkit.Node(0, 5, 1), 0, 100))
	inv, err := inventory.New(list, inventory.Options{MinSlotLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(inv, Options{Collector: trace}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	spans := trace.Spans()
	found := false
	for _, sp := range spans {
		if sp.Cat == "http" && sp.Name == "http /v1/statusz" && sp.Arg == "200" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no http span for /v1/statusz in %d spans: %+v", len(spans), spans)
	}
}

// TestQueueWaitTimesOut: a request stuck in the admission queue past the
// request deadline is answered 503 and counted as deadline_expired — it was
// admitted to the queue, so it must not masquerade as load shedding (429 /
// shed), which would tell the client to back off when the server simply was
// too slow for the request's deadline. A queue-overflow request in the same
// scenario still sheds with 429.
func TestQueueWaitTimesOut(t *testing.T) {
	release := make(chan struct{})
	var unpinOnce sync.Once
	unpin := func() { unpinOnce.Do(func() { close(release) }) }
	srv, ts, _ := newTestServer(t, Options{
		MaxInflight:    1,
		QueueDepth:     1,
		RequestTimeout: 100 * time.Millisecond,
	})
	t.Cleanup(unpin)
	srv.testHook = func() { <-release }

	// First request occupies the single inflight slot.
	go http.Get(ts.URL + "/v1/statusz")
	waitFor(t, func() bool { return len(srv.inflight) == 1 })

	// Second request takes the single queue slot, then its deadline expires
	// there: 503, not 429.
	client := &http.Client{Timeout: 2 * time.Second}
	type result struct {
		code int
		err  error
	}
	queued := make(chan result, 1)
	go func() {
		resp, err := client.Get(ts.URL + "/v1/statusz")
		if err != nil {
			queued <- result{err: err}
			return
		}
		resp.Body.Close()
		queued <- result{code: resp.StatusCode}
	}()
	waitFor(t, func() bool { return srv.queued.Load() == 1 })

	// Third request finds the queue full and is shed immediately: 429.
	resp, err := client.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-overflow request: status %d, want 429", resp.StatusCode)
	}

	r := <-queued
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.code != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline request: status %d, want 503", r.code)
	}
	if got := srv.deadlineExpired.Load(); got != 1 {
		t.Errorf("deadlineExpired = %d, want 1", got)
	}
	if got := srv.shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1 (the queue-overflow request only)", got)
	}

	// The counter is surfaced in /v1/statusz once the gate drains.
	unpin()
	waitFor(t, func() bool { return len(srv.inflight) == 0 })
	code, out := postRawGet(t, ts.URL+"/v1/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz after drain: status %d", code)
	}
	var status struct {
		DeadlineExpired uint64 `json:"deadline_expired"`
		Shed            uint64 `json:"shed"`
	}
	if err := json.Unmarshal(out["server"], &status); err != nil {
		t.Fatalf("statusz server section: %v (raw %s)", err, out["server"])
	}
	// 2: the queued request that expired waiting, plus the pinned request —
	// admitted, but held past its deadline by the test hook, so it hits the
	// post-admission expiry branch when released.
	if status.DeadlineExpired != 2 {
		t.Errorf("statusz deadline_expired = %d, want 2", status.DeadlineExpired)
	}
	if status.Shed != 1 {
		t.Errorf("statusz shed = %d, want 1", status.Shed)
	}
}

func postRawGet(t *testing.T, url string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// TestStatuszRuntimeFields table-tests the go_memstats-style runtime
// section of /v1/statusz: every documented field must be present, and the
// live-heap gauges must be plausible (non-zero) on a running process.
func TestStatuszRuntimeFields(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	code, out := postRawGet(t, ts.URL+"/v1/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: status %d", code)
	}
	var rt map[string]json.RawMessage
	if err := json.Unmarshal(out["runtime"], &rt); err != nil {
		t.Fatalf("statusz runtime section: %v (raw %s)", err, out["runtime"])
	}
	cases := []struct {
		field       string
		wantNonZero bool
	}{
		// Heap gauges cannot be zero on a live Go process.
		{"heap_alloc_bytes", true},
		{"heap_inuse_bytes", true},
		// GC may genuinely not have run yet in a short-lived test process.
		{"gc_cycles", false},
		{"gc_pause_total_ns", false},
	}
	for _, tc := range cases {
		raw, ok := rt[tc.field]
		if !ok {
			t.Errorf("statusz runtime section is missing %q", tc.field)
			continue
		}
		var v uint64
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Errorf("runtime.%s: not an unsigned integer: %v (raw %s)", tc.field, err, raw)
			continue
		}
		if tc.wantNonZero && v == 0 {
			t.Errorf("runtime.%s = 0, want non-zero on a live process", tc.field)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
