package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"slotsel/internal/obs"
	"slotsel/internal/telemetry"
	"slotsel/internal/telemetry/reqlog"
)

func scrapeMetricsz(t *testing.T, base string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metricsz content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ParseExposition(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("/metricsz exposition malformed: %v\n%s", err, raw)
	}
	return got, string(raw)
}

// TestMetricszExposition drives a known request mix and asserts the scraped
// endpoint counters, latency histograms and inventory gauges reflect it.
func TestMetricszExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts, _ := newTestServer(t, Options{Metrics: reg})
	req := requestJSON(t, 2, 50)

	for i := 0; i < 3; i++ {
		if code, out := postJSON(t, ts.URL+"/v1/find", map[string]any{"request": req}); code != http.StatusOK {
			t.Fatalf("find %d: status %d: %v", i, code, out)
		}
	}
	code, out := postJSON(t, ts.URL+"/v1/reserve", map[string]any{"request": req, "ttl_seconds": 60})
	if code != http.StatusOK {
		t.Fatalf("reserve: status %d: %v", code, out)
	}
	id := fieldString(t, out, "id")
	if code, _ = postJSON(t, ts.URL+"/v1/commit", map[string]any{"id": id}); code != http.StatusOK {
		t.Fatalf("commit: status %d", code)
	}
	// A request for an unknown path lands in the "other" cardinality bucket.
	resp, err := http.Get(ts.URL + "/does/not/exist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	got, raw := scrapeMetricsz(t, ts.URL)
	exact := map[string]float64{
		`slotserve_http_requests_total{path="/v1/find",status="200"}`:    3,
		`slotserve_http_requests_total{path="/v1/reserve",status="200"}`: 1,
		`slotserve_http_requests_total{path="/v1/commit",status="200"}`:  1,
		`slotserve_http_requests_total{path="other",status="404"}`:       1,
		`slotserve_request_duration_seconds_count{path="/v1/find"}`:      3,
		"slotserve_completed_total":                                      6,
		"slotsel_inventory_holds":                                        0,
		"slotsel_inventory_committed":                                    1,
		"slotsel_inventory_nodes":                                        3,
	}
	if testShards() == 1 {
		// Over shards these tick once per touched shard; exact values are
		// only pinned unsharded.
		exact["slotsel_inventory_reserves_total"] = 1
		exact["slotsel_inventory_commits_total"] = 1
	} else {
		exact["slotserve_shards"] = float64(testShards())
	}
	for key, want := range exact {
		if got[key] != want {
			t.Errorf("%s: got %g want %g\n%s", key, got[key], want, raw)
		}
	}
	if testShards() > 1 {
		if got["slotsel_inventory_reserves_total"] < 1 || got["slotsel_inventory_commits_total"] < 1 {
			t.Errorf("sharded reserve/commit counters missing\n%s", raw)
		}
	}
	// The scrape itself was request 7; the sampled counter reads the same
	// atomic /v1/statusz reports, which incremented before the handler ran.
	if got["slotserve_requests_total"] != 7 {
		t.Errorf("slotserve_requests_total: got %g want 7", got["slotserve_requests_total"])
	}
	// Queue waits are observed for every admitted request except the
	// in-flight scrape (its finish runs after the exposition was written).
	if got["slotserve_queue_wait_seconds_count"] != 6 {
		t.Errorf("queue_wait count: got %g want 6", got["slotserve_queue_wait_seconds_count"])
	}
	if got["slotsel_inventory_free_slots"] <= 0 {
		t.Errorf("free_slots gauge missing: %g", got["slotsel_inventory_free_slots"])
	}
}

// TestMetricszAgreesWithStatusz is the differential check the slotlab gate
// generalizes: the sampled admission counters and the statusz JSON must
// read the same atomics, so a metricsz-then-statusz pair can only disagree
// by the traffic between the two reads — here, exactly the statusz request
// itself.
func TestMetricszAgreesWithStatusz(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts, _ := newTestServer(t, Options{Metrics: reg})
	req := requestJSON(t, 1, 20)
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/v1/find", map[string]any{"request": req})
	}

	got, _ := scrapeMetricsz(t, ts.URL)
	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Server struct {
			Requests        float64 `json:"requests"`
			Completed       float64 `json:"completed"`
			Shed            float64 `json:"shed"`
			DeadlineExpired float64 `json:"deadline_expired"`
		} `json:"server"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	// The statusz request is the only traffic after the scrape.
	if want := got["slotserve_requests_total"] + 1; status.Server.Requests != want {
		t.Errorf("requests: statusz %g, metricsz+1 %g", status.Server.Requests, want)
	}
	if want := got["slotserve_shed_total"]; status.Server.Shed != want {
		t.Errorf("shed: statusz %g, metricsz %g", status.Server.Shed, want)
	}
	if want := got["slotserve_deadline_expired_total"]; status.Server.DeadlineExpired != want {
		t.Errorf("deadline_expired: statusz %g, metricsz %g", status.Server.DeadlineExpired, want)
	}
}

// TestTraceIDCorrelation asserts the tentpole's correlation contract: the
// X-Trace-Id response header, the structured log line and the request's
// obs span all carry the same ID, and the log line names the algorithm.
func TestTraceIDCorrelation(t *testing.T) {
	var logBuf bytes.Buffer
	trace := obs.NewTrace(64)
	reg := telemetry.NewRegistry()
	_, ts, _ := newTestServer(t, Options{
		Metrics:    reg,
		RequestLog: reqlog.New(&logBuf),
		Collector:  trace,
	})
	req := requestJSON(t, 2, 50)
	raw, _ := json.Marshal(map[string]any{"request": req, "alg": "mincost"})
	resp, err := http.Post(ts.URL+"/v1/find", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	id := resp.Header.Get("X-Trace-Id")
	if len(id) != 16 {
		t.Fatalf("X-Trace-Id %q: want 16 hex chars", id)
	}

	var line struct {
		TraceID string  `json:"trace_id"`
		Method  string  `json:"method"`
		Path    string  `json:"path"`
		Status  int     `json:"status"`
		Alg     string  `json:"alg"`
		DurMs   float64 `json:"dur_ms"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("request log line: %v\n%s", err, logBuf.String())
	}
	if line.TraceID != id {
		t.Errorf("log trace_id %q != header %q", line.TraceID, id)
	}
	if line.Path != "/v1/find" || line.Method != "POST" || line.Status != 200 {
		t.Errorf("log line fields: %+v", line)
	}
	if line.Alg != "mincost" {
		t.Errorf("log alg: got %q want %q", line.Alg, "mincost")
	}
	if line.DurMs <= 0 {
		t.Errorf("log dur_ms: got %g, want > 0", line.DurMs)
	}

	found := false
	for _, sp := range trace.Spans() {
		if sp.Cat == "http" && sp.Trace == id {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no http span carries trace ID %q", id)
	}
}

// TestTraceIDOnRejectedRequests: shed and malformed requests still get a
// trace ID and a log line — overload is exactly when logs matter.
func TestTraceIDOnRejectedRequests(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts, _ := newTestServer(t, Options{RequestLog: reqlog.New(&logBuf)})
	resp, err := http.Get(ts.URL + "/v1/find") // wrong method: 405
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if id := resp.Header.Get("X-Trace-Id"); len(id) != 16 {
		t.Errorf("405 response X-Trace-Id %q: want 16 hex chars", id)
	}
	var line struct {
		Status int `json:"status"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("log line: %v\n%s", err, logBuf.String())
	}
	if line.Status != http.StatusMethodNotAllowed {
		t.Errorf("log status: got %d want 405", line.Status)
	}
}

// TestMetricszWithoutRegistry: no Options.Metrics, no route.
func TestMetricszWithoutRegistry(t *testing.T) {
	_, ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metricsz without a registry: status %d, want 404", resp.StatusCode)
	}
}

// TestMetricszUnderConcurrentLoad is the acceptance race test: scrapes
// racing live traffic must stay well-formed. Run with -race.
func TestMetricszUnderConcurrentLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	var logBuf syncBuffer
	_, ts, _ := newTestServer(t, Options{
		Metrics:    reg,
		RequestLog: reqlog.New(&logBuf),
	})
	req := requestJSON(t, 1, 20)
	raw, _ := json.Marshal(map[string]any{"request": req})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Post(ts.URL+"/v1/find", "application/json", bytes.NewReader(raw))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(ts.URL + "/metricsz")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if _, err := telemetry.ParseExposition(bytes.NewReader(body)); err != nil {
					t.Errorf("scrape %d malformed under load: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	got, _ := scrapeMetricsz(t, ts.URL)
	if n := got[`slotserve_http_requests_total{path="/v1/find",status="200"}`]; n != 100 {
		t.Errorf("find counter after load: got %g want 100", n)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}
