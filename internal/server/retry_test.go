package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// TestRetryAfterSecondsTable pins the derived Retry-After values: the
// estimate is queue drain time at the observed service rate, rounded up to
// whole seconds and clamped to [1, 30].
func TestRetryAfterSecondsTable(t *testing.T) {
	cases := []struct {
		name        string
		queued      int64
		maxInflight int
		avgService  time.Duration
		want        int
	}{
		{"cold start: no observations yet", 10, 32, 0, 1},
		{"rate=0 after post-drain idle reset", 3, 16, 0, 1},
		{"near-zero service time keeps the floor", 5, 8, time.Nanosecond, 1},
		{"queue empty after burst", 0, 4, 2 * time.Second, 1},
		{"degenerate maxInflight", 10, 0, time.Second, 1},
		{"negative queue snapshot clamps to empty", -3, 4, time.Second, 1},
		{"empty queue, fast service", 0, 32, time.Millisecond, 1},
		{"fast service keeps the floor", 64, 32, 10 * time.Millisecond, 1},
		{"exact whole seconds", 7, 4, 2 * time.Second, 4},          // (7+1)*2s/4 = 4s
		{"fractional rounds up", 4, 4, 1100 * time.Millisecond, 2}, // 5*1.1s/4 = 1.375s
		{"one executor, slow handlers", 9, 1, time.Second, 10},     // 10*1s/1
		{"deep queue clamps to ceiling", 1000, 2, time.Second, 30},
		{"pathologically slow service clamps", 0, 1, 10 * time.Minute, 30},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.queued, tc.maxInflight, tc.avgService); got != tc.want {
			t.Errorf("%s: retryAfterSeconds(%d, %d, %v) = %d, want %d",
				tc.name, tc.queued, tc.maxInflight, tc.avgService, got, tc.want)
		}
	}
}

// TestAvgServiceAcrossShards pins the shard fold feeding the Retry-After
// drain estimate: completed counts and busy time are summed over every
// shard tally before the division, so a cold shard dilutes nothing and an
// all-cold pool reports zero (which retryAfterSeconds maps to the floor).
func TestAvgServiceAcrossShards(t *testing.T) {
	ms := func(n uint64) uint64 { return n * uint64(time.Millisecond) }
	cases := []struct {
		name  string
		stats []shardServiceStats
		want  time.Duration
	}{
		{"no shards", nil, 0},
		{"single shard is the plain average",
			[]shardServiceStats{{Serviced: 4, BusyNanos: ms(40)}}, 10 * time.Millisecond},
		{"two busy shards pool their samples",
			[]shardServiceStats{
				{Serviced: 3, BusyNanos: ms(30)},
				{Serviced: 1, BusyNanos: ms(50)},
			}, 20 * time.Millisecond}, // 80ms / 4, not avg(10ms, 50ms)
		{"cold shard contributes no samples and no dilution",
			[]shardServiceStats{
				{Serviced: 2, BusyNanos: ms(20)},
				{}, // shard no request has routed to yet
				{Serviced: 2, BusyNanos: ms(60)},
			}, 20 * time.Millisecond},
		{"all shards cold reports zero",
			[]shardServiceStats{{}, {}, {}, {}}, 0},
	}
	for _, tc := range cases {
		if got := avgServiceAcrossShards(tc.stats); got != tc.want {
			t.Errorf("%s: avgServiceAcrossShards = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestShedRetryAfterParses: under real overload the 429 Retry-After header
// must parse as an integer in the documented [1, 30] range.
func TestShedRetryAfterParses(t *testing.T) {
	srv, ts, _ := newTestServer(t, Options{MaxInflight: 1, QueueDepth: 1, RequestTimeout: 2 * time.Second})
	release := make(chan struct{})
	srv.testHook = func() { <-release }
	defer close(release)

	sawShed := make(chan string, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/statusz")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				sawShed <- resp.Header.Get("Retry-After")
			}
		}()
	}
	select {
	case h := <-sawShed:
		n, err := strconv.Atoi(h)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", h, err)
		}
		if n < minRetryAfterSeconds || n > maxRetryAfterSeconds {
			t.Fatalf("Retry-After %d outside [%d, %d]", n, minRetryAfterSeconds, maxRetryAfterSeconds)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no request was shed: overload never materialized")
	}
}

// TestStatuszSnapshotVersion: statusz carries a top-level snapshot_version
// taken from the same Status() read as the inventory section, so counter
// deltas between two statusz reads can be pinned to an inventory-version
// range. It must be present, positive, equal to the nested inventory
// version, and advance across a mutation.
func TestStatuszSnapshotVersion(t *testing.T) {
	_, ts, inv := newTestServer(t, Options{})

	read := func() (uint64, uint64) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var status struct {
			SnapshotVersion uint64 `json:"snapshot_version"`
			Inventory       struct {
				Version uint64 `json:"version"`
			} `json:"inventory"`
			Server struct {
				Completed      uint64 `json:"completed"`
				AvgServiceNS   int64  `json:"avg_service_ns"`
				RetryAfterHint int    `json:"retry_after_hint"`
			} `json:"server"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		if status.SnapshotVersion == 0 {
			t.Fatal("statusz snapshot_version is zero or missing")
		}
		if status.SnapshotVersion != status.Inventory.Version {
			t.Fatalf("snapshot_version %d != inventory.version %d",
				status.SnapshotVersion, status.Inventory.Version)
		}
		if status.Server.RetryAfterHint < minRetryAfterSeconds || status.Server.RetryAfterHint > maxRetryAfterSeconds {
			t.Fatalf("retry_after_hint %d outside [%d, %d]",
				status.Server.RetryAfterHint, minRetryAfterSeconds, maxRetryAfterSeconds)
		}
		return status.SnapshotVersion, status.Server.Completed
	}

	v1, _ := read()
	code, _ := postJSON(t, ts.URL+"/v1/reserve", map[string]any{"request": requestJSON(t, 1, 20)})
	if code != http.StatusOK {
		t.Fatalf("reserve: %d", code)
	}
	v2, completed := read()
	if v2 <= v1 {
		t.Fatalf("snapshot_version did not advance across a reserve: %d -> %d", v1, v2)
	}
	if completed == 0 {
		t.Fatal("server.completed counter never advanced")
	}
	if got := inv.Status().Version; got != v2 {
		t.Fatalf("statusz snapshot_version %d != live inventory version %d", v2, got)
	}
}
