// Package server exposes the slot inventory as an HTTP JSON scheduling
// API — the front-end a grid metascheduler offers its users:
//
//	POST /v1/find     stateless window search on the current snapshot
//	POST /v1/reserve  search + TTL'd hold (the optimistic first phase)
//	POST /v1/commit   make a hold permanent
//	POST /v1/release  cancel a hold
//	GET  /v1/watch    long-poll until a satisfying window appears
//	GET  /v1/slots    current free slot list (persist slot-list format)
//	GET  /v1/statusz  inventory + server status JSON
//	GET  /metricsz    Prometheus text exposition (when Options.Metrics set)
//
// Request and window payloads reuse the internal/persist wire encodings,
// so snapshots written by cmd/slotgen and windows printed by cmd/slotfind
// interoperate with the service unchanged.
//
// # Durability and followers
//
// With Options.WAL set the server reports the durability store's progress
// (journal vs durable sequence, snapshot age, fsync count) in a
// "durability" statusz section and as slotserve_wal_* metrics — both
// sampled from the same store atomics. With Options.ReadOnly the server is
// a follower front-end: only the read endpoints are served and the
// mutating ones answer 403, because a WAL-tailing replica may change state
// only by applying the leader's journal; Options.Follower adds the
// replica's replication progress to statusz and the metrics.
//
// # Event-driven finds
//
// /v1/find rides a churn-aware result cache (inventory.FindCache): a
// memoized window is served only when the inventory's invalidation history
// proves no mutation since the entry's snapshot overlapped the request's
// time horizon, so a hit is byte-identical to a fresh full scan. /v1/watch
// inverts the polling loop: a bounded set of subscribers long-polls for a
// window, and each is re-evaluated only when a publication's change range
// overlaps its horizon — the first satisfying window is pushed, a deadline
// answers 404, and graceful drain answers 503 (see DrainWatches).
//
// # Admission control
//
// Every request passes a bounded admission gate: at most MaxInflight
// requests execute concurrently and at most QueueDepth more wait for a
// slot; anything beyond that is shed immediately with 429 and a
// Retry-After header, so overload degrades by load shedding rather than by
// unbounded goroutine/queue growth. The Retry-After value is not a
// constant: it is the estimated time for the current queue to drain at the
// observed service rate (MaxInflight executors x mean handler time),
// clamped to [1, 30] seconds — a client that obeys it comes back when
// capacity is plausibly free instead of hammering a deep queue every
// second. Admitted requests run under a
// per-request deadline (RequestTimeout); a request whose deadline expires
// while it waits in the queue is answered 503 and counted separately
// (deadline_expired in /v1/statusz) — the client did nothing wrong and the
// request was never shed, the server was just too slow for its deadline.
//
// # Telemetry
//
// Every response carries an X-Trace-Id header with a fresh 16-hex trace ID.
// The same ID appears on the request's obs span and — when
// Options.RequestLog is set — in the structured JSON log line, so traces,
// logs and client observations join on one key.
//
// With Options.Metrics set, the server registers its metric families on
// the registry and serves the Prometheus text exposition at GET /metricsz:
// per-endpoint/per-status request counters and latency histograms, an
// admission queue-wait histogram, the admission counters (sampled from the
// very atomics /v1/statusz reports, so the two views cannot disagree), and
// inventory gauges sampled from inventory.Status at scrape time. /metricsz
// itself passes through the admission gate and is therefore self-counted;
// monitors diffing two scrapes should scrape in a fixed order so their own
// requests cancel out of every counter delta (internal/slotlab does this).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"slotsel"
	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/inventory"
	"slotsel/internal/obs"
	"slotsel/internal/persist"
	"slotsel/internal/telemetry"
	"slotsel/internal/telemetry/reqlog"
	"slotsel/internal/wal"
)

// Options configures the HTTP front-end. The zero value gets sensible
// defaults.
type Options struct {
	// MaxInflight caps concurrently executing requests. Default 32.
	MaxInflight int

	// QueueDepth caps requests waiting for an execution slot; beyond it
	// requests are shed with 429. Default 64.
	QueueDepth int

	// RequestTimeout is the per-request deadline (also bounds queue wait).
	// Default 5s.
	RequestTimeout time.Duration

	// Collector receives one "http" span per admitted request. nil = off.
	Collector obs.Collector

	// Metrics, when non-nil, receives the server's metric families and is
	// served as a Prometheus text exposition at GET /metricsz. nil = no
	// metrics and no /metricsz route (404).
	Metrics *telemetry.Registry

	// RequestLog, when non-nil, receives one structured JSON line per
	// request (including shed and deadline-expired ones). nil = off.
	RequestLog *reqlog.Logger

	// ReadOnly serves only the read endpoints (/v1/find, /v1/slots,
	// /v1/statusz, /metricsz); the mutating endpoints (/v1/reserve,
	// /v1/commit, /v1/release) answer 403. This is the follower mode: the
	// inventory behind the server is a WAL-tailing replica that must only
	// change by applying the leader's journal.
	ReadOnly bool

	// WAL, when non-nil, is the durability store behind the inventory.
	// Its stats feed the "durability" section of /v1/statusz and the
	// slotserve_wal_* metric families — both sampled from the same store
	// atomics, so the two views cannot disagree.
	WAL *wal.Store

	// WALs, when non-empty, are the per-shard durability stores behind a
	// sharded inventory (index i backs shard i). The slotserve_wal_*
	// metric families and the statusz "durability" aggregate sum the
	// per-store figures (snapshot age takes the oldest shard); statusz
	// additionally lists every shard's own figures. Mutually exclusive
	// with WAL.
	WALs []*wal.Store

	// Follower, when non-nil, reports replication progress of the
	// WAL-tailing replica behind a read-only server (the "replication"
	// statusz section and the slotserve_follower_* metrics).
	Follower *wal.Follower

	// FindCacheSize bounds the churn-aware /v1/find result cache:
	// 0 uses the inventory package's default capacity, > 0 sets an
	// explicit entry bound, < 0 disables the cache (every find runs a
	// fresh full scan — the stateless oracle behavior). Over a sharded
	// pool the value is a per-shard budget: the cache's total entry bound
	// is FindCacheSize (or the package default) times the shard count, so
	// raising -shards never shrinks the per-shard working set.
	FindCacheSize int

	// WatchLimit caps concurrently parked /v1/watch subscribers; beyond
	// it new watches are rejected with 429 + Retry-After. Default 8. It
	// should stay below MaxInflight: a parked watch holds an execution
	// slot for its whole long-poll.
	WatchLimit int
}

// Server is the HTTP handler over one inventory pool — a single
// *inventory.Inventory or a sharded router; every handler goes through
// the Pool interface, so the HTTP surface is identical either way.
type Server struct {
	inv  inventory.Pool
	opts Options
	mux  *http.ServeMux

	inflight chan struct{}
	queued   atomic.Int64
	requests atomic.Uint64
	shed     atomic.Uint64

	// completed counts admitted requests whose handler finished. svc holds
	// the per-shard service tallies behind the drain-rate estimate (one
	// tally over an unsharded pool); both count only the non-watch subset —
	// a /v1/watch long-poll parks for seconds by design, and folding its
	// wall time into the mean would poison the drain-rate estimate behind
	// Retry-After.
	completed atomic.Uint64
	svc       []svcTally

	// cache memoizes find results across requests with churn-aware
	// invalidation; nil when Options.FindCacheSize < 0.
	cache *inventory.FindCache

	// watch is the bounded /v1/watch subscriber hub.
	watch *watchHub

	// deadlineExpired counts requests whose deadline passed while they
	// waited in the admission queue — answered 503, distinct from shed
	// (queue full, answered 429).
	deadlineExpired atomic.Uint64

	// mx holds the request-scoped metric instruments; nil when
	// Options.Metrics is unset (metrics off).
	mx *serverMetrics

	// testHook, when set, runs inside the admission-guarded section of
	// every request — the seam the overload tests use to keep handlers
	// busy deterministically.
	testHook func()
}

// serverMetrics are the per-request instruments updated on the serving
// path. The cumulative admission counters and the inventory view are
// sampled at scrape time instead (see registerMetrics) — sampling the same
// atomics /v1/statusz reads is what makes the two views agree exactly.
type serverMetrics struct {
	// requests counts finished requests by normalized path and status.
	requests *telemetry.CounterVec

	// latency is the handler wall time of admitted requests by path.
	latency *telemetry.HistogramVec

	// queueWait is the admission-queue wait of admitted requests.
	queueWait *telemetry.Histogram
}

// registerMetrics registers the server families on reg. Counters that back
// /v1/statusz fields are sampled from the identical atomics; inventory
// gauges are sampled from inventory.Status at scrape time.
func (s *Server) registerMetrics(reg *telemetry.Registry) *serverMetrics {
	m := &serverMetrics{
		requests: reg.CounterVec("slotserve_http_requests_total",
			"Finished HTTP requests by endpoint and status (shed and expired included).", "path", "status"),
		latency: reg.HistogramVec("slotserve_request_duration_seconds",
			"Handler wall time of admitted requests by endpoint.",
			telemetry.LatencyBucketsSeconds(), "path"),
		queueWait: reg.Histogram("slotserve_queue_wait_seconds",
			"Admission-queue wait of admitted requests.",
			telemetry.LatencyBucketsSeconds()),
	}
	reg.SampledCounter("slotserve_requests_total",
		"Requests received, including shed ones (statusz server.requests).",
		func() float64 { return float64(s.requests.Load()) })
	reg.SampledCounter("slotserve_completed_total",
		"Admitted requests whose handler finished (statusz server.completed).",
		func() float64 { return float64(s.completed.Load()) })
	reg.SampledCounter("slotserve_shed_total",
		"Requests shed with 429 because the admission queue was full.",
		func() float64 { return float64(s.shed.Load()) })
	reg.SampledCounter("slotserve_deadline_expired_total",
		"Requests answered 503 because their deadline expired while queued.",
		func() float64 { return float64(s.deadlineExpired.Load()) })
	reg.SampledGauge("slotserve_inflight",
		"Requests currently executing.",
		func() float64 { return float64(len(s.inflight)) })
	reg.SampledGauge("slotserve_queued",
		"Requests currently waiting in the admission queue.",
		func() float64 { return float64(s.queued.Load()) })

	inv := s.inv
	reg.SampledGauge("slotsel_inventory_free_slots",
		"Free slots in the published snapshot.",
		func() float64 { return float64(inv.Status().FreeSlots) })
	reg.SampledGauge("slotsel_inventory_free_span",
		"Total time span of the free slots.",
		func() float64 { return inv.Status().FreeSpan })
	reg.SampledGauge("slotsel_inventory_holds",
		"Live TTL'd reservations.",
		func() float64 { return float64(inv.Status().Holds) })
	reg.SampledGauge("slotsel_inventory_committed",
		"Permanent allocations.",
		func() float64 { return float64(inv.Status().Committed) })
	reg.SampledGauge("slotsel_inventory_nodes",
		"Nodes with registered capacity.",
		func() float64 { return float64(inv.Status().Nodes) })
	reg.SampledGauge("slotsel_inventory_snapshot_version",
		"Version of the published free-list snapshot.",
		func() float64 { return float64(inv.Status().Version) })
	reg.SampledGauge("slotsel_inventory_journal_len",
		"Events retained in the inventory journal.",
		func() float64 { return float64(inv.Status().JournalLen) })
	reg.SampledCounter("slotsel_inventory_reserves_total",
		"Accepted holds.",
		func() float64 { return float64(inv.Status().Counters.Reserves) })
	reg.SampledCounter("slotsel_inventory_conflicts_total",
		"Reserves rejected by re-validation.",
		func() float64 { return float64(inv.Status().Counters.Conflicts) })
	reg.SampledCounter("slotsel_inventory_no_window_total",
		"Reserve searches that found no feasible window.",
		func() float64 { return float64(inv.Status().Counters.NoWindow) })
	reg.SampledCounter("slotsel_inventory_commits_total",
		"Holds made permanent.",
		func() float64 { return float64(inv.Status().Counters.Commits) })
	reg.SampledCounter("slotsel_inventory_releases_total",
		"Holds released by the caller.",
		func() float64 { return float64(inv.Status().Counters.Releases) })
	reg.SampledCounter("slotsel_inventory_expiries_total",
		"Holds swept after their TTL lapsed.",
		func() float64 { return float64(inv.Status().Counters.Expiries) })

	if c := s.cache; c != nil {
		reg.SampledCounter("slotserve_find_cache_hits_total",
			"Find results served from the churn-aware cache (statusz find_cache.hits).",
			func() float64 { return float64(c.Stats().Hits) })
		reg.SampledCounter("slotserve_find_cache_misses_total",
			"Find results computed by a full scan (statusz find_cache.misses).",
			func() float64 { return float64(c.Stats().Misses) })
		reg.SampledCounter("slotserve_find_cache_invalidated_total",
			"Cache entries dropped because churn overlapped their horizon.",
			func() float64 { return float64(c.Stats().Invalidated) })
		reg.SampledCounter("slotserve_find_cache_evicted_total",
			"Cache entries evicted by the capacity bound.",
			func() float64 { return float64(c.Stats().Evicted) })
		reg.SampledGauge("slotserve_find_cache_entries",
			"Memoized request shapes currently cached.",
			func() float64 { return float64(c.Stats().Entries) })
	}
	hub := s.watch
	reg.SampledGauge("slotserve_watch_active",
		"Watch subscribers currently parked on /v1/watch.",
		func() float64 { return float64(hub.active()) })
	reg.SampledCounter("slotserve_watch_delivered_total",
		"Watches answered with a satisfying window.",
		func() float64 { return float64(hub.delivered.Load()) })
	reg.SampledCounter("slotserve_watch_expired_total",
		"Watches that timed out without a window (404).",
		func() float64 { return float64(hub.expired.Load()) })
	reg.SampledCounter("slotserve_watch_rejected_total",
		"Watches rejected because the subscriber limit was reached (429).",
		func() float64 { return float64(hub.rejected.Load()) })

	if n := s.inv.Shards(); n > 1 {
		reg.SampledGauge("slotserve_shards",
			"Inventory shards behind this server (1 = unsharded).",
			func() float64 { return float64(n) })
	}
	if ws := s.walList(); len(ws) > 0 {
		// With one store these sample it directly; with per-shard stores
		// the sums (and oldest snapshot age) describe the layout as a
		// whole — the same aggregates the statusz "durability" section
		// reports, from the same atomics.
		reg.SampledGauge("slotserve_wal_journal_seq",
			"Last sequence handed to the WAL (appended, not necessarily durable; summed over shards).",
			func() float64 { return float64(aggregateWALStats(ws).AppendedSeq) })
		reg.SampledGauge("slotserve_wal_durable_seq",
			"Last sequence confirmed on stable storage by fsync (summed over shards).",
			func() float64 { return float64(aggregateWALStats(ws).DurableSeq) })
		reg.SampledGauge("slotserve_wal_snapshot_seq",
			"Sequence covered by the latest snapshot (0 = log-only; summed over shards).",
			func() float64 { return float64(aggregateWALStats(ws).SnapshotSeq) })
		reg.SampledGauge("slotserve_wal_snapshot_age_seconds",
			"Seconds since the latest snapshot was written (-1 = none this process; oldest shard).",
			func() float64 { return snapshotAgeSeconds(aggregateWALStats(ws)) })
		reg.SampledCounter("slotserve_wal_fsyncs_total",
			"Group commits flushed to stable storage (summed over shards).",
			func() float64 { return float64(aggregateWALStats(ws).Fsyncs) })
	}
	if f := s.opts.Follower; f != nil {
		reg.SampledGauge("slotserve_follower_applied_seq",
			"Last leader journal sequence applied to the replica.",
			func() float64 { return float64(f.LastSeq()) })
		reg.SampledCounter("slotserve_follower_resyncs_total",
			"Full snapshot reloads after the tailing position was lost.",
			func() float64 { return float64(f.Resyncs()) })
	}
	return m
}

// FsyncHistogram registers the WAL fsync-latency histogram on reg and
// returns an observer to hand to wal.Options.OnFsync. It lives apart from
// registerMetrics because the store — and therefore its OnFsync callback —
// must exist before the server does.
func FsyncHistogram(reg *telemetry.Registry) func(time.Duration) {
	h := reg.Histogram("slotserve_wal_fsync_seconds",
		"WAL fsync latency (one observation per group commit).",
		telemetry.LatencyBucketsSeconds())
	return func(d time.Duration) { h.Observe(d.Seconds()) }
}

// snapshotAgeSeconds is the age of the latest snapshot, or -1 when none
// has been written in this process's lifetime — an age of 0 would read as
// "snapshotted just now", the opposite of the truth.
func snapshotAgeSeconds(st wal.Stats) float64 {
	if st.SnapshotUnixNano == 0 {
		return -1
	}
	return time.Since(time.Unix(0, st.SnapshotUnixNano)).Seconds()
}

// walList is the durability stores behind the server: Options.WALs for a
// sharded layout, a one-element list for Options.WAL, nil for none.
func (s *Server) walList() []*wal.Store {
	if len(s.opts.WALs) > 0 {
		return s.opts.WALs
	}
	if s.opts.WAL != nil {
		return []*wal.Store{s.opts.WAL}
	}
	return nil
}

// aggregateWALStats folds per-shard store stats into one layout-wide view:
// sequences and fsyncs sum (each shard numbers its own log), and the
// snapshot timestamp takes the *oldest* shard with one — the layout is only
// as freshly snapshotted as its most stale member. Zero timestamps (no
// snapshot yet) dominate for the same reason.
func aggregateWALStats(ws []*wal.Store) wal.Stats {
	if len(ws) == 1 {
		return ws[0].Stats()
	}
	var out wal.Stats
	for i, w := range ws {
		st := w.Stats()
		out.AppendedSeq += st.AppendedSeq
		out.DurableSeq += st.DurableSeq
		out.SnapshotSeq += st.SnapshotSeq
		out.Fsyncs += st.Fsyncs
		if i == 0 || st.SnapshotUnixNano < out.SnapshotUnixNano {
			out.SnapshotUnixNano = st.SnapshotUnixNano
		}
	}
	return out
}

// New builds the handler over a pool — a single *inventory.Inventory or
// an *inventory.Sharded router. The pool must be non-nil.
func New(inv inventory.Pool, opts Options) *Server {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 32
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.WatchLimit <= 0 {
		opts.WatchLimit = 8
	}
	s := &Server{
		inv:      inv,
		opts:     opts,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, opts.MaxInflight),
		watch:    newWatchHub(opts.WatchLimit),
		svc:      make([]svcTally, max(1, inv.Shards())),
	}
	if opts.FindCacheSize >= 0 {
		// FindCacheSize is a per-shard budget: the total bound scales with
		// the shard count so each shard keeps its configured working set.
		size := opts.FindCacheSize
		if n := inv.Shards(); n > 1 {
			if size == 0 {
				size = inventory.DefaultFindCacheEntries
			}
			size *= n
		}
		s.cache = inventory.NewFindCache(inv, size)
	}
	// The hub re-checks a parked watch only when a publication's change
	// range overlaps its horizon — the event-driven path: no polling, no
	// full re-evaluation on unrelated churn. Works identically on a
	// follower, whose replica publishes the same changes when it applies
	// the leader's journal.
	inv.AddChangeListener(s.watch.notify)
	// Pre-populate the scanner pool to the admission bound: the first
	// MaxInflight concurrent searches skip scanner construction. Best
	// effort — sync.Pool may shed entries under GC pressure.
	core.WarmScanners(opts.MaxInflight)
	s.mux.HandleFunc("/v1/find", s.post(s.handleFind))
	if opts.ReadOnly {
		s.mux.HandleFunc("/v1/reserve", s.post(s.rejectReadOnly))
		s.mux.HandleFunc("/v1/commit", s.post(s.rejectReadOnly))
		s.mux.HandleFunc("/v1/release", s.post(s.rejectReadOnly))
	} else {
		s.mux.HandleFunc("/v1/reserve", s.post(s.handleReserve))
		s.mux.HandleFunc("/v1/commit", s.post(s.handleCommit))
		s.mux.HandleFunc("/v1/release", s.post(s.handleRelease))
	}
	s.mux.HandleFunc("/v1/watch", s.get(s.handleWatch))
	s.mux.HandleFunc("/v1/slots", s.get(s.handleSlots))
	s.mux.HandleFunc("/v1/statusz", s.get(s.handleStatusz))
	if opts.Metrics != nil {
		s.mx = s.registerMetrics(opts.Metrics)
		s.mux.HandleFunc("/metricsz", s.get(opts.Metrics.Handler().ServeHTTP))
	}
	return s
}

// reqInfoKey carries the per-request annotation slot through the handler
// context; handlers fill it (decodeSearch records the algorithm name) and
// ServeHTTP reads it back for the request log line.
type reqInfoKey struct{}

type reqInfo struct {
	// alg is the selection algorithm or CSA criterion the request named
	// ("amp", "csa:cost"); empty for non-search endpoints.
	alg string

	// shard is the inventory shard the request's mutation landed on (the
	// shard of its window's first placement node); 0 for reads, searches,
	// and unsharded pools. It picks the service tally the request's
	// handler time is recorded into.
	shard int
}

// annotateAlg records the request's algorithm name for the log line; a
// request without the annotation slot is a no-op.
func annotateAlg(ctx context.Context, name string) {
	if info, _ := ctx.Value(reqInfoKey{}).(*reqInfo); info != nil {
		info.alg = name
	}
}

// annotateShard attributes the request to one shard's service tally.
func annotateShard(ctx context.Context, shard int) {
	if info, _ := ctx.Value(reqInfoKey{}).(*reqInfo); info != nil {
		info.shard = shard
	}
}

// annotateWindowShard attributes a mutating request to the shard of its
// window's first placement node. No-op over an unsharded pool (one tally)
// and for cross-shard windows' secondary parts — the drain estimate only
// needs the aggregate to be right, not perfect attribution.
func (s *Server) annotateWindowShard(ctx context.Context, w *core.Window) {
	if n := s.inv.Shards(); n > 1 && w != nil && len(w.Placements) > 0 {
		annotateShard(ctx, inventory.ShardOf(w.Placements[0].Node().ID, n))
	}
}

// ServeHTTP implements http.Handler: trace ID, admission gate, deadline,
// dispatch, then telemetry (span, metrics, request log).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	trace := reqlog.NewTraceID()
	w.Header().Set("X-Trace-Id", trace)
	arrive := obs.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var info reqInfo
	ctx = context.WithValue(ctx, reqInfoKey{}, &info)
	switch s.admit(ctx) {
	case admitShed:
		s.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
		s.finish(r, trace, http.StatusTooManyRequests, obs.Now()-arrive, 0, false, "")
		return
	case admitExpired:
		s.deadlineExpired.Add(1)
		writeError(w, http.StatusServiceUnavailable, "request deadline expired while queued")
		s.finish(r, trace, http.StatusServiceUnavailable, obs.Now()-arrive, 0, false, "")
		return
	}
	queueWait := obs.Now() - arrive
	defer func() { <-s.inflight }()
	if s.testHook != nil {
		s.testHook()
	}
	if ctx.Err() != nil {
		// Admitted, but the deadline passed before the handler could run —
		// the same too-slow outcome as expiring in the queue.
		s.deadlineExpired.Add(1)
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded in queue")
		s.finish(r, trace, http.StatusServiceUnavailable, queueWait, 0, false, "")
		return
	}
	begin := obs.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	dur := obs.Now() - begin
	s.completed.Add(1)
	if r.URL.Path != "/v1/watch" {
		// Watch long-polls are excluded from the service-time mean: their
		// handler time is dominated by intentional parking, not work.
		shard := info.shard
		if shard < 0 || shard >= len(s.svc) {
			shard = 0
		}
		s.svc[shard].busyNanos.Add(uint64(dur))
		s.svc[shard].serviced.Add(1)
	}
	if col := s.opts.Collector; col != nil {
		col.Span(obs.Span{
			Name:  "http " + r.URL.Path,
			Cat:   "http",
			Start: begin,
			Dur:   dur,
			Arg:   strconv.Itoa(sw.code),
			Trace: trace,
		})
	}
	s.finish(r, trace, sw.code, queueWait, dur, true, info.alg)
}

// finish records the per-request telemetry once the response is decided:
// the path x status counter (every request, shed included), the latency and
// queue-wait histograms (admitted requests only — rejections have no
// handler time), and the structured log line.
func (s *Server) finish(r *http.Request, trace string, code int, queueWait, dur time.Duration, admitted bool, alg string) {
	if s.mx != nil {
		path := normPath(r.URL.Path)
		s.mx.requests.With2(path, statusLabel(code)).Inc()
		if admitted {
			s.mx.latency.With1(path).Observe(float64(dur) / float64(time.Second))
			s.mx.queueWait.Observe(float64(queueWait) / float64(time.Second))
		}
	}
	if s.opts.RequestLog != nil {
		s.opts.RequestLog.Log(reqlog.Entry{
			Time:      time.Now(),
			TraceID:   trace,
			Method:    r.Method,
			Path:      r.URL.Path,
			Status:    code,
			QueueWait: queueWait,
			Duration:  dur,
			Alg:       alg,
		})
	}
}

// normPath maps the request path onto the bounded label set of the
// endpoint metrics: the served routes keep their name, anything else —
// typos, probes, scrapers guessing URLs — collapses into "other" so
// arbitrary client input cannot grow the metric cardinality.
func normPath(p string) string {
	switch p {
	case "/v1/find", "/v1/reserve", "/v1/commit", "/v1/release",
		"/v1/watch", "/v1/slots", "/v1/statusz", "/metricsz":
		return p
	}
	return "other"
}

// statusLabel renders an HTTP status as a metric label without allocating
// for the codes the server actually emits.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusForbidden:
		return "403"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusConflict:
		return "409"
	case http.StatusRequestEntityTooLarge:
		return "413"
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusServiceUnavailable:
		return "503"
	}
	return strconv.Itoa(code)
}

// admitResult distinguishes the admission outcomes: the two rejection
// paths carry different status codes and counters.
type admitResult int

const (
	// admitOK: an execution slot was acquired; the caller must release it.
	admitOK admitResult = iota

	// admitShed: the wait queue is full; the request is shed (429).
	admitShed

	// admitExpired: the request's deadline passed while it waited in the
	// queue (503).
	admitExpired
)

// admit implements the bounded queue: immediate entry when an execution
// slot is free; otherwise wait in the bounded queue until a slot frees or
// the deadline passes; shed when the queue itself is full.
func (s *Server) admit(ctx context.Context) admitResult {
	select {
	case s.inflight <- struct{}{}:
		return admitOK
	default:
	}
	if s.queued.Add(1) > int64(s.opts.QueueDepth) {
		s.queued.Add(-1)
		return admitShed
	}
	defer s.queued.Add(-1)
	select {
	case s.inflight <- struct{}{}:
		return admitOK
	case <-ctx.Done():
		return admitExpired
	}
}

// retryAfter computes the Retry-After hint for a shed request from the
// current queue depth and the observed mean service time.
func (s *Server) retryAfter() int {
	return retryAfterSeconds(s.queued.Load(), s.opts.MaxInflight, s.avgService())
}

// svcTally is one shard's completed-request tally: how many non-watch
// requests it serviced and their summed handler wall time.
type svcTally struct {
	serviced  atomic.Uint64
	busyNanos atomic.Uint64
}

// shardServiceStats is a point-in-time copy of one shard's service tally,
// the input unit of avgServiceAcrossShards.
type shardServiceStats struct {
	Serviced  uint64
	BusyNanos uint64
}

// avgServiceAcrossShards folds per-shard service tallies into the
// pool-wide mean: total busy time over total completed counts. A cold
// shard — zero completions, e.g. one whose nodes no mutation has landed
// on yet — contributes nothing to either sum, so it can neither drag the
// mean toward zero nor reset a warm layout's drain estimate back to the
// cold-start floor. Zero until any shard has serviced a request.
func avgServiceAcrossShards(stats []shardServiceStats) time.Duration {
	var n, busy uint64
	for _, st := range stats {
		n += st.Serviced
		busy += st.BusyNanos
	}
	if n == 0 {
		return 0
	}
	return time.Duration(busy / n)
}

// avgService is the observed mean handler wall time of non-watch
// requests, aggregated across the per-shard tallies; zero until the
// first one completes.
func (s *Server) avgService() time.Duration {
	stats := make([]shardServiceStats, len(s.svc))
	for i := range s.svc {
		stats[i] = shardServiceStats{
			Serviced:  s.svc[i].serviced.Load(),
			BusyNanos: s.svc[i].busyNanos.Load(),
		}
	}
	return avgServiceAcrossShards(stats)
}

// Retry-After clamps: never tell a client to come back sooner than 1s
// (sub-second retry storms defeat the point of shedding) or later than 30s
// (the estimate is too noisy to justify parking clients for minutes).
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 30
)

// retryAfterSeconds estimates how long a shed client should wait: the time
// for the current queue (plus this request) to drain at the observed
// drain rate — maxInflight executors retiring one request every avgService
// — rounded up to whole seconds and clamped to [1, 30].
//
// The rate is guarded explicitly: with no service-time observation yet
// (fresh boot) or a degenerate executor count, the drain rate is zero or
// undefined, and the estimate falls back to the 1-second floor rather
// than dividing by zero or reporting a clamp derived from stale state. A
// post-drain idle server (queue emptied after a burst) takes the same
// floor by arithmetic: zero waiters drain within one mean service time.
func retryAfterSeconds(queued int64, maxInflight int, avgService time.Duration) int {
	if queued < 0 {
		queued = 0 // the gauge can transiently undershoot during admits
	}
	svc := avgService.Seconds()
	if svc <= 0 || maxInflight <= 0 {
		return minRetryAfterSeconds
	}
	rate := float64(maxInflight) / svc // requests retired per second
	secs := int(math.Ceil(float64(queued+1) / rate))
	if secs < minRetryAfterSeconds {
		return minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

// statusWriter records the response code for the request span.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		h(w, r)
	}
}

func (s *Server) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h(w, r)
	}
}

// searchBody is the shared request payload of /v1/find and /v1/reserve.
type searchBody struct {
	// Request is the resource request in the persist wire encoding.
	Request json.RawMessage `json:"request"`

	// Alg names the selection algorithm (slotsel.AlgorithmByName);
	// default "amp". Ignored when CSA is set.
	Alg string `json:"alg,omitempty"`

	// CSA, when non-empty, switches reserve to a CSA alternative search
	// selecting by this criterion: start|finish|cost|runtime|proctime.
	CSA string `json:"csa,omitempty"`

	// TTLSeconds is the hold lifetime for /v1/reserve; 0 = server default.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

func (s *Server) decodeSearch(w http.ResponseWriter, r *http.Request) (*searchBody, *searchInputs, bool) {
	var body searchBody
	if !decodeStrict(w, r, &body) {
		return nil, nil, false
	}
	if len(body.Request) == 0 {
		writeError(w, http.StatusBadRequest, `missing "request" field`)
		return nil, nil, false
	}
	req, err := persist.ReadRequest(bytes.NewReader(body.Request))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, nil, false
	}
	in := &searchInputs{req: req}
	if body.CSA != "" {
		crit, ok := criterionByName(body.CSA)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown CSA criterion %q", body.CSA))
			return nil, nil, false
		}
		in.useCSA, in.crit = true, crit
		in.key = inventory.NewCacheKey(req, "csa:"+crit.String())
		annotateAlg(r.Context(), "csa:"+crit.String())
	} else {
		name := body.Alg
		if name == "" {
			name = "amp"
		}
		alg, err := slotsel.AlgorithmByName(name, 1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return nil, nil, false
		}
		in.alg = alg
		in.key = inventory.NewCacheKey(req, alg.Name())
		annotateAlg(r.Context(), name)
	}
	if body.TTLSeconds < 0 {
		writeError(w, http.StatusBadRequest, "ttl_seconds must be >= 0")
		return nil, nil, false
	}
	in.ttl = time.Duration(body.TTLSeconds * float64(time.Second))
	return &body, in, true
}

type searchInputs struct {
	req    *slotsel.Request
	alg    core.Algorithm
	useCSA bool
	crit   csa.Criterion
	ttl    time.Duration

	// key is the canonical (request shape, algorithm) identity the find
	// cache memoizes under; the key's horizon also scopes /v1/watch
	// re-evaluation to overlapping invalidations.
	key inventory.CacheKey
}

// runSearch is the stateless search against one snapshot — the oracle
// path every cached result is provably equal to.
func (s *Server) runSearch(in *searchInputs, snap *inventory.Snapshot) (*core.Window, error) {
	if in.useCSA {
		alts, err := csa.SearchObserved(snap.Slots, in.req, csa.Options{}, s.opts.Collector)
		if err != nil {
			return nil, err
		}
		return csa.Best(alts, in.crit), nil
	}
	return core.FindObserved(in.alg, snap.Slots, in.req, s.opts.Collector)
}

// search resolves a find through the churn-aware cache when enabled; with
// the cache disabled it is exactly the stateless scan. Either way the
// snapshot the result is valid against is returned alongside.
func (s *Server) search(in *searchInputs) (*core.Window, *inventory.Snapshot, error) {
	if s.cache == nil {
		snap := s.inv.Snapshot()
		win, err := s.runSearch(in, snap)
		return win, snap, err
	}
	return s.cache.Find(in.key, func(snap *inventory.Snapshot) (*core.Window, error) {
		return s.runSearch(in, snap)
	})
}

func criterionByName(name string) (csa.Criterion, bool) {
	for _, c := range []csa.Criterion{csa.ByStart, csa.ByFinish, csa.ByCost, csa.ByRuntime, csa.ByProcTime} {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// rejectReadOnly answers every mutating endpoint in follower mode: the
// replica's state may only change by applying the leader's journal, so
// writes must go to the leader. 403 rather than 405 — the method is fine,
// this server is just not allowed to perform the operation.
func (s *Server) rejectReadOnly(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusForbidden, "read-only follower: send mutations to the leader")
}

// handleFind is the stateless search: nothing is held. It rides the find
// cache — a hit is served only when the invalidation history proves no
// churn since the entry's snapshot overlapped the request's horizon, so
// the response is byte-identical to a fresh full scan either way.
func (s *Server) handleFind(w http.ResponseWriter, r *http.Request) {
	_, in, ok := s.decodeSearch(w, r)
	if !ok {
		return
	}
	win, snap, err := s.search(in)
	if errors.Is(err, core.ErrNoWindow) {
		writeError(w, http.StatusNotFound, "no feasible window")
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": snap.Version,
		"window":  windowJSON(win),
	})
}

func (s *Server) handleReserve(w http.ResponseWriter, r *http.Request) {
	_, in, ok := s.decodeSearch(w, r)
	if !ok {
		return
	}
	var res *inventory.Reservation
	var err error
	if in.useCSA {
		res, err = s.inv.ReserveBest(in.req, in.crit, 0, in.ttl)
	} else {
		res, err = s.inv.Reserve(in.req, in.alg, in.ttl)
	}
	switch {
	case errors.Is(err, core.ErrNoWindow):
		writeError(w, http.StatusNotFound, "no feasible window")
		return
	case errors.Is(err, inventory.ErrConflict):
		writeError(w, http.StatusConflict, "lost the race for those slots, retry")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.annotateWindowShard(r.Context(), res.Window)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      res.ID,
		"version": res.Version,
		"expires": res.Expires.UTC().Format(time.RFC3339Nano),
		"window":  windowJSON(res.Window),
	})
}

// decodeStrict decodes exactly one JSON value from the request body. A
// body over the MaxBytesReader cap is answered 413 (not a generic 400: the
// client must shrink the payload, not fix its syntax), and trailing tokens
// after the value are rejected — silently accepted garbage usually means a
// concatenated or truncated payload the client should know about.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		}
		return false
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "trailing data after JSON body")
		}
		return false
	}
	return true
}

// idBody is the payload of /v1/commit and /v1/release.
type idBody struct {
	ID string `json:"id"`
}

func (s *Server) decodeID(w http.ResponseWriter, r *http.Request) (string, bool) {
	var body idBody
	if !decodeStrict(w, r, &body) {
		return "", false
	}
	if body.ID == "" {
		writeError(w, http.StatusBadRequest, `missing "id" field`)
		return "", false
	}
	return body.ID, true
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	id, ok := s.decodeID(w, r)
	if !ok {
		return
	}
	win, err := s.inv.Commit(id)
	if errors.Is(err, inventory.ErrUnknownReservation) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.annotateWindowShard(r.Context(), win)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     id,
		"window": windowJSON(win),
	})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	id, ok := s.decodeID(w, r)
	if !ok {
		return
	}
	err := s.inv.Release(id)
	if errors.Is(err, inventory.ErrUnknownReservation) {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "released": true})
}

func (s *Server) handleSlots(w http.ResponseWriter, r *http.Request) {
	s.sweep() // bound snapshot staleness on read-only traffic
	snap := s.inv.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Inventory-Version", strconv.FormatUint(snap.Version, 10))
	if err := persist.WriteSlotList(w, snap.Slots); err != nil {
		// Headers are out; nothing to do but drop the connection.
		return
	}
}

// sweep expires lapsed holds on read traffic — except in follower mode,
// where holds only lapse when the leader's own OpExpire events arrive
// (the replica clock is frozen precisely so local time cannot diverge the
// replica from the journal).
func (s *Server) sweep() {
	if !s.opts.ReadOnly {
		s.inv.Sweep()
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	s.sweep()
	// go_memstats-style runtime figures, so the service's steady-state
	// allocation discipline (the scanner pool's whole point) is observable
	// in production, not just in the regression suite. ReadMemStats
	// stops the world briefly; statusz is low-frequency monitoring traffic.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// One Status() call backs both the inventory section and the top-level
	// snapshot_version, so a monitor diffing two statusz reads can
	// correlate every counter delta with the exact inventory-version range
	// [before.snapshot_version, after.snapshot_version] it happened in.
	st := s.inv.Status()
	body := map[string]any{
		"snapshot_version": st.Version,
		"read_only":        s.opts.ReadOnly,
		"inventory":        st,
		"server": map[string]any{
			"requests":         s.requests.Load(),
			"completed":        s.completed.Load(),
			"shed":             s.shed.Load(),
			"deadline_expired": s.deadlineExpired.Load(),
			"inflight":         len(s.inflight),
			"queued":           s.queued.Load(),
			"avg_service_ns":   s.avgService().Nanoseconds(),
			"retry_after_hint": s.retryAfter(),
		},
		"watch": map[string]any{
			"active":    s.watch.active(),
			"limit":     s.opts.WatchLimit,
			"delivered": s.watch.delivered.Load(),
			"expired":   s.watch.expired.Load(),
			"rejected":  s.watch.rejected.Load(),
		},
		"runtime": map[string]any{
			"heap_alloc_bytes":  ms.HeapAlloc,
			"heap_inuse_bytes":  ms.HeapInuse,
			"gc_cycles":         ms.NumGC,
			"gc_pause_total_ns": ms.PauseTotalNs,
		},
	}
	if s.cache != nil {
		body["find_cache"] = s.cache.Stats()
	}
	// A sharded pool additionally exposes each shard's own Status, so an
	// operator can see skew (one hot shard, one cold) that the merged
	// inventory section averages away.
	if sp, ok := s.inv.(interface{ ShardStatuses() []inventory.Status }); ok && s.inv.Shards() > 1 {
		body["shards"] = sp.ShardStatuses()
	}
	// The durability figures come from the same store atomics the
	// slotserve_wal_* metrics sample, so statusz and /metricsz agree.
	// Single store: the exact historical shape. Per-shard stores: the
	// same shape holds the layout-wide aggregate, plus a per-shard list.
	if ws := s.walList(); len(ws) > 0 {
		wst := aggregateWALStats(ws)
		dur := map[string]any{
			"journal_seq":          wst.AppendedSeq,
			"durable_seq":          wst.DurableSeq,
			"last_snapshot_seq":    wst.SnapshotSeq,
			"snapshot_age_seconds": snapshotAgeSeconds(wst),
			"fsyncs":               wst.Fsyncs,
		}
		if len(ws) > 1 {
			perShard := make([]map[string]any, len(ws))
			for i, w := range ws {
				sst := w.Stats()
				perShard[i] = map[string]any{
					"shard":                i,
					"journal_seq":          sst.AppendedSeq,
					"durable_seq":          sst.DurableSeq,
					"last_snapshot_seq":    sst.SnapshotSeq,
					"snapshot_age_seconds": snapshotAgeSeconds(sst),
					"fsyncs":               sst.Fsyncs,
				}
			}
			dur["shards"] = perShard
		}
		body["durability"] = dur
	}
	if f := s.opts.Follower; f != nil {
		body["replication"] = map[string]any{
			"last_applied_seq": f.LastSeq(),
			"resyncs":          f.Resyncs(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// windowJSON renders a window through the persist wire encoding as a raw
// message, so every endpoint emits the same window shape as cmd/slotfind
// -json.
func windowJSON(w *core.Window) json.RawMessage {
	var buf bytes.Buffer
	if err := persist.WriteWindow(&buf, w); err != nil {
		return json.RawMessage(`null`)
	}
	return json.RawMessage(bytes.TrimSpace(buf.Bytes()))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
