package core

import (
	"errors"
	"math"
	"testing"

	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// randomSmallList builds an arbitrary sorted slot list for oracle tests.
func randomSmallList(rng *randx.Rand, nodeCount int) slots.List {
	var l slots.List
	for id := 0; id < nodeCount; id++ {
		n := testNode(id, float64(rng.IntRange(2, 10)), 0.5+2*rng.Float64())
		cursor := 0.0
		for s := 0; s < 2; s++ {
			start := cursor + rng.FloatRange(0, 60)
			end := start + rng.FloatRange(5, 120)
			if end > 300 {
				break
			}
			l = append(l, slot(n, start, end))
			cursor = end + 1
		}
	}
	l.SortByStart()
	return l
}

// allAlgorithms returns every selection algorithm for generic validity
// tests.
func allAlgorithms() []Algorithm {
	return []Algorithm{
		AMP{},
		MinCost{},
		MinRunTime{},
		MinRunTime{Exact: true},
		MinRunTime{LiteralBudget: true},
		MinFinish{},
		MinFinish{Exact: true},
		MinFinish{EarlyStop: true},
		MinProcTime{Seed: 3},
		MinProcTimeGreedy{},
		MinEnergy{},
	}
}

func TestAllAlgorithmsReturnValidWindows(t *testing.T) {
	rng := randx.New(100)
	for trial := 0; trial < 50; trial++ {
		l := randomSmallList(rng, 8)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 200}
		for _, alg := range allAlgorithms() {
			w, err := alg.Find(l, &req)
			if errors.Is(err, ErrNoWindow) {
				continue
			}
			if err != nil {
				t.Fatalf("trial %d, %s: %v", trial, alg.Name(), err)
			}
			if verr := w.Validate(&req); verr != nil {
				t.Fatalf("trial %d, %s returned invalid window: %v", trial, alg.Name(), verr)
			}
		}
	}
}

func TestAllAlgorithmsAgreeOnFeasibility(t *testing.T) {
	// The deterministic algorithms search the same space; if one finds a
	// window, all must (the budget-feasible choice at some step exists for
	// all: the n cheapest is the feasibility witness). MinProcTime is
	// excluded: its random per-step pick can miss budget-feasible windows.
	rng := randx.New(200)
	det := []Algorithm{AMP{}, MinCost{}, MinRunTime{}, MinRunTime{Exact: true}, MinFinish{}, MinFinish{Exact: true}}
	for trial := 0; trial < 80; trial++ {
		l := randomSmallList(rng, 6)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 150}
		found := 0
		for _, alg := range det {
			if _, err := alg.Find(l, &req); err == nil {
				found++
			} else if !errors.Is(err, ErrNoWindow) {
				t.Fatal(err)
			}
		}
		if found != 0 && found != len(det) {
			t.Fatalf("trial %d: %d/%d deterministic algorithms found a window", trial, found, len(det))
		}
	}
}

func TestAMPReturnsEarliestStart(t *testing.T) {
	// Oracle: the minimum over all scan positions with a budget-feasible
	// n-cheapest selection. Re-scan collecting every feasible start.
	rng := randx.New(300)
	for trial := 0; trial < 60; trial++ {
		l := randomSmallList(rng, 7)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 200}
		var feasibleStarts []float64
		if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
			if _, _, ok := selectMinCost(cands, req.TaskCount, req.MaxCost); ok {
				feasibleStarts = append(feasibleStarts, start)
			}
			return false
		}); err != nil {
			t.Fatal(err)
		}
		w, err := (AMP{}).Find(l, &req)
		if errors.Is(err, ErrNoWindow) {
			if len(feasibleStarts) != 0 {
				t.Fatalf("trial %d: AMP missed feasible starts %v", trial, feasibleStarts)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		min := feasibleStarts[0]
		for _, s := range feasibleStarts {
			if s < min {
				min = s
			}
		}
		if w.Start != min {
			t.Fatalf("trial %d: AMP start %g, earliest feasible %g", trial, w.Start, min)
		}
	}
}

func TestMinCostIsGloballyOptimal(t *testing.T) {
	// Oracle: enumerate every scan position's n-cheapest cost; the global
	// optimum is their minimum, because for a fixed start the n cheapest is
	// the optimal subset.
	rng := randx.New(400)
	for trial := 0; trial < 60; trial++ {
		l := randomSmallList(rng, 7)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}
		best := math.Inf(1)
		if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
			if _, cost, ok := selectMinCost(cands, req.TaskCount, req.MaxCost); ok && cost < best {
				best = cost
			}
			return false
		}); err != nil {
			t.Fatal(err)
		}
		w, err := (MinCost{}).Find(l, &req)
		if errors.Is(err, ErrNoWindow) {
			if !math.IsInf(best, 1) {
				t.Fatalf("trial %d: MinCost missed feasible cost %g", trial, best)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.Cost-best) > 1e-9 {
			t.Fatalf("trial %d: MinCost %g, oracle %g", trial, w.Cost, best)
		}
	}
}

func TestMinRunTimeExactIsOptimalPerScan(t *testing.T) {
	// Oracle: per scan position, brute-force the best runtime; the global
	// optimum is the minimum over positions.
	rng := randx.New(500)
	for trial := 0; trial < 40; trial++ {
		l := randomSmallList(rng, 6)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 200}
		best := math.Inf(1)
		if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
			if r, ok := bruteMinRuntime(cands, req.TaskCount, req.MaxCost); ok && r < best {
				best = r
			}
			return false
		}); err != nil {
			t.Fatal(err)
		}
		w, err := (MinRunTime{Exact: true}).Find(l, &req)
		if errors.Is(err, ErrNoWindow) {
			if !math.IsInf(best, 1) {
				t.Fatalf("trial %d: exact MinRunTime missed feasible runtime %g", trial, best)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.Runtime-best) > 1e-9 {
			t.Fatalf("trial %d: exact MinRunTime %g, oracle %g", trial, w.Runtime, best)
		}
	}
}

func TestMinRunTimeGreedyNeverBelowExact(t *testing.T) {
	rng := randx.New(600)
	for trial := 0; trial < 60; trial++ {
		l := randomSmallList(rng, 7)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 250}
		greedy, errG := (MinRunTime{}).Find(l, &req)
		exact, errE := (MinRunTime{Exact: true}).Find(l, &req)
		if errors.Is(errG, ErrNoWindow) != errors.Is(errE, ErrNoWindow) {
			t.Fatalf("trial %d: feasibility disagreement", trial)
		}
		if errG != nil {
			continue
		}
		if greedy.Runtime < exact.Runtime-1e-9 {
			t.Fatalf("trial %d: greedy runtime %g below exact optimum %g", trial, greedy.Runtime, exact.Runtime)
		}
	}
}

func TestMinFinishExactIsOptimal(t *testing.T) {
	rng := randx.New(700)
	for trial := 0; trial < 40; trial++ {
		l := randomSmallList(rng, 6)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 200}
		best := math.Inf(1)
		if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
			if r, ok := bruteMinRuntime(cands, req.TaskCount, req.MaxCost); ok && start+r < best {
				best = start + r
			}
			return false
		}); err != nil {
			t.Fatal(err)
		}
		w, err := (MinFinish{Exact: true}).Find(l, &req)
		if errors.Is(err, ErrNoWindow) {
			if !math.IsInf(best, 1) {
				t.Fatalf("trial %d: exact MinFinish missed feasible finish %g", trial, best)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.Finish()-best) > 1e-9 {
			t.Fatalf("trial %d: exact MinFinish %g, oracle %g", trial, w.Finish(), best)
		}
	}
}

func TestMinFinishEarlyStopPreservesResult(t *testing.T) {
	rng := randx.New(800)
	for trial := 0; trial < 60; trial++ {
		l := randomSmallList(rng, 7)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 250}
		full, errF := (MinFinish{}).Find(l, &req)
		pruned, errP := (MinFinish{EarlyStop: true}).Find(l, &req)
		if errors.Is(errF, ErrNoWindow) != errors.Is(errP, ErrNoWindow) {
			t.Fatalf("trial %d: feasibility disagreement", trial)
		}
		if errF != nil {
			continue
		}
		if math.Abs(full.Finish()-pruned.Finish()) > 1e-9 {
			t.Fatalf("trial %d: early stop changed finish %g -> %g", trial, full.Finish(), pruned.Finish())
		}
	}
}

func TestAlgorithmsOnEmptyAndTinyLists(t *testing.T) {
	req := job.Request{TaskCount: 2, Volume: 60}
	for _, alg := range allAlgorithms() {
		if _, err := alg.Find(nil, &req); !errors.Is(err, ErrNoWindow) {
			t.Errorf("%s on empty list: %v, want ErrNoWindow", alg.Name(), err)
		}
	}
	// One slot cannot host a 2-task job.
	n := testNode(1, 4, 1)
	l := sorted(slot(n, 0, 100))
	for _, alg := range allAlgorithms() {
		if _, err := alg.Find(l, &req); !errors.Is(err, ErrNoWindow) {
			t.Errorf("%s on 1-slot list: %v, want ErrNoWindow", alg.Name(), err)
		}
	}
}

func TestTrivialSelectionWhenExactlyNSlots(t *testing.T) {
	// m == n: "the selection is trivial" (§2.1) — all algorithms must
	// return the same (only) window.
	n1, n2 := testNode(1, 4, 2), testNode(2, 5, 1)
	l := sorted(slot(n1, 10, 100), slot(n2, 30, 100))
	req := job.Request{TaskCount: 2, Volume: 60}
	for _, alg := range allAlgorithms() {
		w, err := alg.Find(l, &req)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if w.Start != 30 || w.Size() != 2 {
			t.Errorf("%s: window %v, want start 30 with both slots", alg.Name(), w)
		}
	}
}

func TestBudgetZeroMeansUnconstrained(t *testing.T) {
	n1, n2 := testNode(1, 4, 1000), testNode(2, 5, 1000)
	l := sorted(slot(n1, 0, 100), slot(n2, 0, 100))
	req := job.Request{TaskCount: 2, Volume: 60} // MaxCost 0
	w, err := (MinCost{}).Find(l, &req)
	if err != nil {
		t.Fatalf("unconstrained search failed: %v", err)
	}
	if w.Cost <= 0 {
		t.Error("window cost not computed")
	}
}

func TestDeadlineRespected(t *testing.T) {
	rng := randx.New(900)
	for trial := 0; trial < 40; trial++ {
		l := randomSmallList(rng, 7)
		req := job.Request{TaskCount: 2, Volume: 60, MaxCost: 200, Deadline: 80}
		for _, alg := range allAlgorithms() {
			w, err := alg.Find(l, &req)
			if errors.Is(err, ErrNoWindow) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if w.Finish() > 80+1e-9 {
				t.Fatalf("%s violated deadline: finish %g", alg.Name(), w.Finish())
			}
		}
	}
}

func TestMinProcTimeDeterministicPerSeed(t *testing.T) {
	rng := randx.New(1000)
	l := randomSmallList(rng, 8)
	req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}
	a, errA := (MinProcTime{Seed: 5}).Find(l, &req)
	b, errB := (MinProcTime{Seed: 5}).Find(l, &req)
	if (errA == nil) != (errB == nil) {
		t.Fatal("same-seed runs disagree on feasibility")
	}
	if errA != nil {
		return
	}
	if a.Start != b.Start || a.ProcTime != b.ProcTime {
		t.Fatal("same-seed MinProcTime runs returned different windows")
	}
}

func TestMinProcTimeGreedyUsuallyBeatsRandom(t *testing.T) {
	// The directed extension should on average find no-worse total CPU time
	// than the simplified random variant.
	rng := randx.New(1100)
	sumRandom, sumGreedy := 0.0, 0.0
	found := 0
	for trial := 0; trial < 60; trial++ {
		l := randomSmallList(rng, 8)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}
		wr, errR := (MinProcTime{Seed: uint64(trial)}).Find(l, &req)
		wg, errG := (MinProcTimeGreedy{}).Find(l, &req)
		if errR != nil || errG != nil {
			continue
		}
		found++
		sumRandom += wr.ProcTime
		sumGreedy += wg.ProcTime
	}
	if found < 10 {
		t.Skip("too few feasible trials")
	}
	if sumGreedy > sumRandom*1.02 {
		t.Errorf("greedy proc time %g worse than random %g on average", sumGreedy/float64(found), sumRandom/float64(found))
	}
}

func TestMinEnergyReducesEnergyVsMinRunTime(t *testing.T) {
	rng := randx.New(1200)
	me := MinEnergy{}
	sumE, sumR := 0.0, 0.0
	found := 0
	for trial := 0; trial < 60; trial++ {
		l := randomSmallList(rng, 8)
		req := job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}
		we, errE := me.Find(l, &req)
		wr, errR := (MinRunTime{}).Find(l, &req)
		if errE != nil || errR != nil {
			continue
		}
		found++
		sumE += me.Energy(we)
		sumR += me.Energy(wr)
	}
	if found < 10 {
		t.Skip("too few feasible trials")
	}
	if sumE > sumR {
		t.Errorf("MinEnergy average energy %g above MinRunTime's %g", sumE/float64(found), sumR/float64(found))
	}
}

func TestMinProcTimeCanMissBudgetFeasibleWindows(t *testing.T) {
	// The simplified MinProcTime draws ONE random subset per scan position;
	// on a list with exactly one scan position and many expensive decoys,
	// some seeds pick an over-budget subset and must report ErrNoWindow
	// even though a feasible window exists — the "no optimization"
	// behaviour the paper assigns to the simplified scheme.
	// The cheap pair gets HIGH node IDs so it enters the scan window last:
	// earlier visits only see expensive decoys.
	cheap1 := testNode(100, 5, 0.1)
	cheap2 := testNode(101, 5, 0.1)
	var list slots.List
	list = append(list, slot(cheap1, 0, 100), slot(cheap2, 0, 100))
	for i := 0; i < 4; i++ {
		list = append(list, slot(testNode(10+i, 5, 100), 0, 100))
	}
	list.SortByStart()
	req := job.Request{TaskCount: 2, Volume: 60, MaxCost: 10}

	if _, err := (MinCost{}).Find(list, &req); err != nil {
		t.Fatalf("feasible window not found by MinCost: %v", err)
	}
	const seeds = 200
	missed := 0
	for seed := uint64(0); seed < seeds; seed++ {
		if _, err := (MinProcTime{Seed: seed}).Find(list, &req); errors.Is(err, ErrNoWindow) {
			missed++
		}
	}
	if missed == 0 {
		t.Error("random MinProcTime never missed; expected budget misses on some seeds")
	}
	if missed == seeds {
		t.Error("random MinProcTime always missed; expected hits on some seeds")
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[string]bool{
		"AMP": true, "MinCost": true, "MinRunTime": true, "MinRunTimeExact": true,
		"MinFinish": true, "MinFinishExact": true, "MinProcTime": true,
		"MinProcTimeGreedy": true, "MinEnergy": true,
	}
	for _, alg := range allAlgorithms() {
		if !want[alg.Name()] {
			t.Errorf("unexpected algorithm name %q", alg.Name())
		}
	}
}

func TestFindRejectsInvalidInputs(t *testing.T) {
	n := testNode(1, 4, 1)
	unsorted := slots.List{slot(n, 50, 100), slot(n, 0, 40)}
	req := job.Request{TaskCount: 1, Volume: 10}
	badReq := job.Request{TaskCount: 0, Volume: 10}
	for _, alg := range allAlgorithms() {
		if _, err := alg.Find(unsorted, &req); err == nil || errors.Is(err, ErrNoWindow) {
			t.Errorf("%s accepted an unsorted list", alg.Name())
		}
		if _, err := alg.Find(nil, &badReq); err == nil || errors.Is(err, ErrNoWindow) {
			t.Errorf("%s accepted an invalid request", alg.Name())
		}
	}
}
