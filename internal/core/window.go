// Package core implements the paper's primary contribution: the AEP scheme
// ("Algorithm searching for Extreme Performance") for selecting a window of
// n concurrent slots out of the m slots published for a scheduling interval,
// optimizing a user- or VO-defined criterion under a total-cost budget.
//
// The scheme performs a single forward scan over the slot list ordered by
// non-decreasing start time — the precondition that makes every algorithm in
// this package linear in the number of available slots. At each scan step a
// per-criterion selection procedure picks the best n-slot sub-window among
// the currently suitable slots; the best window over all steps is returned.
//
// Implemented instantiations (§2.2 and §3.1 of the paper):
//
//   - AMP:         earliest window start time (first feasible window wins)
//   - MinFinish:   earliest window finish time
//   - MinCost:     minimum total allocation cost
//   - MinRunTime:  minimum window runtime (length of the longest slot)
//   - MinProcTime: minimum total node time — simplified, random sub-window
//
// plus extensions: an exact MinRunTime selection, a greedy MinProcTime, and
// a MinEnergy criterion (the paper names energy as a possible crW).
package core

import (
	"errors"
	"fmt"
	"sort"

	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/slots"
)

// ErrNoWindow is returned by Find when no feasible window exists on the
// given slot list for the request.
var ErrNoWindow = errors.New("core: no feasible window")

// Placement is the assignment of one task of the job to one slot: the task
// occupies [Start, Start+Exec) on the slot's node.
type Placement struct {
	// Slot is the availability window hosting the task.
	Slot *slots.Slot

	// Start is the synchronous window start time.
	Start float64

	// Exec is the task execution time on this node (volume / performance).
	Exec float64

	// Cost is the reservation cost of the placement (Exec x node price).
	Cost float64
}

// Node returns the node hosting the placement.
func (p Placement) Node() *nodes.Node { return p.Slot.Node }

// Finish returns the task completion time.
func (p Placement) Finish() float64 { return p.Start + p.Exec }

// Used returns the interval consumed on the underlying slot.
func (p Placement) Used() slots.Interval {
	return slots.Interval{Start: p.Start, End: p.Start + p.Exec}
}

// Window is a co-allocation of n slots starting synchronously. Because the
// resources are heterogeneous the composing tasks finish at different times
// — the window has a "rough right edge"; its runtime is the execution time
// on the slowest selected node.
type Window struct {
	// Start is the synchronous start time of all placements.
	Start float64

	// Placements are the n task placements.
	Placements []Placement

	// Runtime is the window length: the maximum placement Exec.
	Runtime float64

	// Cost is the total allocation cost: the sum of placement costs.
	Cost float64

	// ProcTime is the total node (CPU) usage time: the sum of placement
	// execution times.
	ProcTime float64
}

// NewWindow assembles a window at the given start from the chosen
// candidates, computing the aggregate characteristics.
func NewWindow(start float64, chosen []Candidate) *Window {
	w := &Window{Start: start, Placements: make([]Placement, 0, len(chosen))}
	for _, c := range chosen {
		p := Placement{Slot: c.Slot, Start: start, Exec: c.Exec, Cost: c.Cost}
		w.Placements = append(w.Placements, p)
		if c.Exec > w.Runtime {
			w.Runtime = c.Exec
		}
		w.Cost += c.Cost
		w.ProcTime += c.Exec
	}
	return w
}

// buildWindow is NewWindow into an existing buffer: dst's placements slice
// is truncated and refilled, aggregates recomputed with the identical
// left-to-right accumulation, so the result is value-equal to
// NewWindow(start, chosen) without allocating once dst's capacity suffices.
func buildWindow(dst *Window, start float64, chosen []Candidate) {
	dst.Start = start
	dst.Placements = dst.Placements[:0]
	dst.Runtime, dst.Cost, dst.ProcTime = 0, 0, 0
	for _, c := range chosen {
		p := Placement{Slot: c.Slot, Start: start, Exec: c.Exec, Cost: c.Cost}
		dst.Placements = append(dst.Placements, p)
		if c.Exec > dst.Runtime {
			dst.Runtime = c.Exec
		}
		dst.Cost += c.Cost
		dst.ProcTime += c.Exec
	}
}

// Detach returns a self-owned copy of the window: fresh Window struct and
// placements array, still referencing the same underlying slots. Use it to
// keep a window obtained from scanner-recycled scratch (Scanner results,
// retained visit output) beyond the producer's reuse horizon.
func (w *Window) Detach() *Window {
	nw := *w
	nw.Placements = append([]Placement(nil), w.Placements...)
	return &nw
}

// DetachDeep is Detach plus copies of the placed slot structs themselves,
// for windows whose slots live in mutable working storage (the CSA cutting
// working copy): the detached window stays valid even after the backing
// slots are edited or recycled. Node pointers are shared — nodes are
// immutable for the search's duration.
func (w *Window) DetachDeep() *Window {
	nw := w.Detach()
	for i := range nw.Placements {
		s := *nw.Placements[i].Slot
		nw.Placements[i].Slot = &s
	}
	return nw
}

// Finish returns the window completion time: Start + Runtime.
func (w *Window) Finish() float64 { return w.Start + w.Runtime }

// Size returns the number of co-allocated slots.
func (w *Window) Size() int { return len(w.Placements) }

// UsedIntervals maps each node ID to the intervals the window consumes on
// it — the input CSA and the batch scheduler need to cut allocated spans out
// of a slot list (matching by node, so it works across slot-list clones).
func (w *Window) UsedIntervals() map[int][]slots.Interval {
	m := make(map[int][]slots.Interval, len(w.Placements))
	for _, p := range w.Placements {
		id := p.Node().ID
		m[id] = append(m[id], p.Used())
	}
	return m
}

// String implements fmt.Stringer.
func (w *Window) String() string {
	return fmt.Sprintf("window{start=%.2f finish=%.2f runtime=%.2f cost=%.2f proc=%.2f n=%d}",
		w.Start, w.Finish(), w.Runtime, w.Cost, w.ProcTime, len(w.Placements))
}

// Validate checks that the window is a feasible answer for the request on
// the environment it was built from: exactly n placements on matching,
// pairwise distinct nodes, each placement inside its slot, correct derived
// quantities, budget and deadline respected.
func (w *Window) Validate(req *job.Request) error {
	if len(w.Placements) != req.TaskCount {
		return fmt.Errorf("core: window has %d placements, want %d", len(w.Placements), req.TaskCount)
	}
	seen := make(map[int]bool, len(w.Placements))
	var cost, proc, runtime float64
	for i, p := range w.Placements {
		n := p.Node()
		if n == nil {
			return fmt.Errorf("core: placement %d has nil node", i)
		}
		if seen[n.ID] {
			return fmt.Errorf("core: node %d used by two placements", n.ID)
		}
		seen[n.ID] = true
		if !req.Matches(n) {
			return fmt.Errorf("core: node %d does not match the request", n.ID)
		}
		if p.Start != w.Start {
			return fmt.Errorf("core: placement %d starts at %.4f, window at %.4f", i, p.Start, w.Start)
		}
		wantExec := req.ExecTime(n)
		if !approxEq(p.Exec, wantExec) {
			return fmt.Errorf("core: placement %d exec %.6f, want %.6f", i, p.Exec, wantExec)
		}
		if !p.Slot.FitsAt(p.Start, req.Volume) {
			return fmt.Errorf("core: placement %d does not fit its slot %v", i, p.Slot)
		}
		if !approxEq(p.Cost, p.Exec*n.Price) {
			return fmt.Errorf("core: placement %d cost %.6f, want %.6f", i, p.Cost, p.Exec*n.Price)
		}
		cost += p.Cost
		proc += p.Exec
		if p.Exec > runtime {
			runtime = p.Exec
		}
	}
	if !approxEq(cost, w.Cost) || !approxEq(proc, w.ProcTime) || !approxEq(runtime, w.Runtime) {
		return fmt.Errorf("core: window aggregates inconsistent: %v", w)
	}
	if req.MaxCost > 0 && w.Cost > req.MaxCost*(1+1e-9) {
		return fmt.Errorf("core: window cost %.4f exceeds budget %.4f", w.Cost, req.MaxCost)
	}
	if req.Deadline > 0 && w.Finish() > req.Deadline*(1+1e-9) {
		return fmt.Errorf("core: window finish %.4f exceeds deadline %.4f", w.Finish(), req.Deadline)
	}
	return nil
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if b > scale {
		scale = b
	}
	return d <= 1e-9*scale
}

// SortPlacementsByNode orders the placements by node ID, a convenience for
// deterministic printing and comparison in tests.
func (w *Window) SortPlacementsByNode() {
	sort.Slice(w.Placements, func(i, j int) bool {
		return w.Placements[i].Node().ID < w.Placements[j].Node().ID
	})
}
