package core

import (
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// Algorithm is a slot selection algorithm: it searches the published slot
// list for the window that is extreme by the algorithm's criterion.
type Algorithm interface {
	// Name returns the algorithm's identifier as used in the paper's
	// figures and tables.
	Name() string

	// Find returns the best window for the request, ErrNoWindow when no
	// feasible window exists, or another error for invalid input (bad
	// request, unsorted slot list).
	Find(list slots.List, req *job.Request) (*Window, error)
}

// AMP searches for the window with the earliest start time — the particular
// case of AEP performing only start-time optimization, introduced in the
// authors' earlier works. The first scan position at which n suitable slots
// with total cost within the budget exist wins: by the ordering of the slot
// list no later position can start earlier.
type AMP struct{}

// Name implements Algorithm.
func (AMP) Name() string { return "AMP" }

// Find implements Algorithm.
func (a AMP) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (AMP) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanIndexed(list, req, func(start float64, win *WindowIndex) bool {
		chosen, _, ok := win.SelectMinCost(req.TaskCount, req.MaxCost)
		if !ok {
			return false
		}
		best = NewWindow(start, chosen)
		return true // earliest start found; later positions cannot improve
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}

// MinCost searches for the window with the minimum total allocation cost on
// the whole scheduling interval. Selecting the n cheapest suitable slots at
// every scan position and keeping the best guarantees the global optimum.
type MinCost struct{}

// Name implements Algorithm.
func (MinCost) Name() string { return "MinCost" }

// Find implements Algorithm.
func (a MinCost) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (MinCost) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanIndexed(list, req, func(start float64, win *WindowIndex) bool {
		chosen, cost, ok := win.SelectMinCost(req.TaskCount, req.MaxCost)
		if !ok {
			return false
		}
		if best == nil || cost < best.Cost {
			best = NewWindow(start, chosen)
		}
		return false
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}

// MinRunTime searches for the window with the minimum execution runtime
// (the length of the longest composing slot, i.e. the task on the least
// performant selected node).
type MinRunTime struct {
	// Exact switches the per-step selection from the paper's greedy
	// substitution procedure to the exact prefix selection (extension).
	Exact bool

	// LiteralBudget reproduces the paper's pseudocode budget check verbatim
	// (no refund of the replaced slot); see selectMinRuntimeGreedy.
	LiteralBudget bool
}

// Name implements Algorithm.
func (a MinRunTime) Name() string {
	if a.Exact {
		return "MinRunTimeExact"
	}
	return "MinRunTime"
}

// Find implements Algorithm.
func (a MinRunTime) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (a MinRunTime) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanIndexed(list, req, func(start float64, win *WindowIndex) bool {
		var chosen []Candidate
		var runtime float64
		var ok bool
		if a.Exact {
			chosen, runtime, ok = win.SelectMinRuntimeExact(req.TaskCount, req.MaxCost)
		} else {
			chosen, runtime, ok = win.SelectMinRuntimeGreedy(req.TaskCount, req.MaxCost, a.LiteralBudget)
		}
		if !ok {
			return false
		}
		if best == nil || runtime < best.Runtime {
			best = NewWindow(start, chosen)
		}
		return false
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}

// MinFinish searches for the window with the earliest finish time. At every
// scan position the minimum achievable finish is start + minimal runtime,
// computed with the same substitution procedure as MinRunTime.
type MinFinish struct {
	// Exact selects the exact per-step runtime minimization (extension).
	Exact bool

	// EarlyStop enables an exactness-preserving pruning extension: the scan
	// stops once the current position starts at or after the best finish
	// found, because every later window finishes after its own start. The
	// paper's scheme performs the full scan (its Tables 1-2 report
	// MinFinish and MinRunTime working times as nearly equal), so the
	// default is off.
	EarlyStop bool
}

// Name implements Algorithm.
func (a MinFinish) Name() string {
	if a.Exact {
		return "MinFinishExact"
	}
	return "MinFinish"
}

// Find implements Algorithm.
func (a MinFinish) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (a MinFinish) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanIndexed(list, req, func(start float64, win *WindowIndex) bool {
		if a.EarlyStop && best != nil && start >= best.Finish() {
			return true // every further window finishes after start >= best
		}
		var chosen []Candidate
		var ok bool
		if a.Exact {
			chosen, _, ok = win.SelectMinRuntimeExact(req.TaskCount, req.MaxCost)
		} else {
			chosen, _, ok = win.SelectMinRuntimeGreedy(req.TaskCount, req.MaxCost, false)
		}
		if !ok {
			return false
		}
		w := NewWindow(start, chosen)
		if best == nil || w.Finish() < best.Finish() {
			best = w
		}
		return false
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}

// MinProcTime is the paper's *simplified* total-processor-time minimizer:
// at every scan position a random sub-window is selected (no per-step
// optimization), and the best total node time over the whole scan is kept.
// It does not guarantee an optimal result and only partially matches the
// AEP scheme, but its working time is an order of magnitude below the full
// implementations.
type MinProcTime struct {
	// Seed seeds the per-search random stream; searches with equal seeds
	// over equal inputs are deterministic.
	Seed uint64
}

// Name implements Algorithm.
func (MinProcTime) Name() string { return "MinProcTime" }

// Find implements Algorithm.
func (a MinProcTime) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (a MinProcTime) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	rng := randx.New(a.Seed)
	var best *Window
	// The random sub-window step reads the window in append order only, so
	// it runs on the plain scan path: the cost-ordered index would be
	// maintained and never read (benchmarked at ~2x the algorithm's whole
	// working time on 128-node instances).
	err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
		chosen, ok := selectRandom(cands, req.TaskCount, req.MaxCost, rng)
		if !ok {
			return false
		}
		w := NewWindow(start, chosen)
		if best == nil || w.ProcTime < best.ProcTime {
			best = w
		}
		return false
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}

// MinProcTimeGreedy is an extension: the additive greedy substitution
// applied to the total-processor-time criterion, giving a directed (though
// still heuristic) search where the paper's simplified variant picks
// randomly.
type MinProcTimeGreedy struct{}

// Name implements Algorithm.
func (MinProcTimeGreedy) Name() string { return "MinProcTimeGreedy" }

// Find implements Algorithm.
func (a MinProcTimeGreedy) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (MinProcTimeGreedy) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanIndexed(list, req, func(start float64, win *WindowIndex) bool {
		chosen, total, ok := win.SelectMinAdditiveGreedy(req.TaskCount, req.MaxCost,
			func(c Candidate) float64 { return c.Exec })
		if !ok {
			return false
		}
		if best == nil || total < best.ProcTime {
			best = NewWindow(start, chosen)
		}
		return false
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}

// EnergyModel maps a placement (its node performance and execution time) to
// an energy figure. The default models dynamic power growing superlinearly
// with the performance rate: E = perf^2 x exec.
type EnergyModel func(perf, exec float64) float64

// DefaultEnergyModel is the perf^2 x time model.
func DefaultEnergyModel(perf, exec float64) float64 { return perf * perf * exec }

// MinEnergy is an extension implementing the "minimum energy consumption"
// criterion the paper names as a possible crW: the additive greedy
// substitution over a per-slot energy weight.
type MinEnergy struct {
	// Model computes per-placement energy; nil selects DefaultEnergyModel.
	Model EnergyModel
}

// Name implements Algorithm.
func (MinEnergy) Name() string { return "MinEnergy" }

// Energy returns the window's total energy under the algorithm's model.
func (a MinEnergy) Energy(w *Window) float64 {
	model := a.Model
	if model == nil {
		model = DefaultEnergyModel
	}
	total := 0.0
	for _, p := range w.Placements {
		total += model(p.Node().Perf, p.Exec)
	}
	return total
}

// Find implements Algorithm.
func (a MinEnergy) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (a MinEnergy) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	model := a.Model
	if model == nil {
		model = DefaultEnergyModel
	}
	var best *Window
	var bestEnergy float64
	err := ScanIndexed(list, req, func(start float64, win *WindowIndex) bool {
		chosen, total, ok := win.SelectMinAdditiveGreedy(req.TaskCount, req.MaxCost,
			func(c Candidate) float64 { return model(c.Slot.Node.Perf, c.Exec) })
		if !ok {
			return false
		}
		if best == nil || total < bestEnergy {
			best = NewWindow(start, chosen)
			bestEnergy = total
		}
		return false
	}, col)
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}
