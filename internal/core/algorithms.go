package core

import (
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// Algorithm is a slot selection algorithm: it searches the published slot
// list for the window that is extreme by the algorithm's criterion.
type Algorithm interface {
	// Name returns the algorithm's identifier as used in the paper's
	// figures and tables.
	Name() string

	// Find returns the best window for the request, ErrNoWindow when no
	// feasible window exists, or another error for invalid input (bad
	// request, unsorted slot list).
	Find(list slots.List, req *job.Request) (*Window, error)
}

// AMP searches for the window with the earliest start time — the particular
// case of AEP performing only start-time optimization, introduced in the
// authors' earlier works. The first scan position at which n suitable slots
// with total cost within the budget exist wins: by the ordering of the slot
// list no later position can start earlier.
type AMP struct{}

// Name implements Algorithm.
func (AMP) Name() string { return "AMP" }

// Find implements Algorithm.
func (a AMP) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder. The search runs on a pooled
// Scanner (see vkAMP in scanner.go for the selection step: the cheapest
// feasible sub-window at the earliest feasible start); findPooled detaches
// the result so it stays caller-owned.
func (a AMP) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return findPooled(a, list, req, col)
}

// MinCost searches for the window with the minimum total allocation cost on
// the whole scheduling interval. Selecting the n cheapest suitable slots at
// every scan position and keeping the best guarantees the global optimum.
type MinCost struct{}

// Name implements Algorithm.
func (MinCost) Name() string { return "MinCost" }

// Find implements Algorithm.
func (a MinCost) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder. Runs on a pooled Scanner
// (vkMinCost: keep the cheapest selection over all scan positions).
func (a MinCost) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return findPooled(a, list, req, col)
}

// MinRunTime searches for the window with the minimum execution runtime
// (the length of the longest composing slot, i.e. the task on the least
// performant selected node).
type MinRunTime struct {
	// Exact switches the per-step selection from the paper's greedy
	// substitution procedure to the exact prefix selection (extension).
	Exact bool

	// LiteralBudget reproduces the paper's pseudocode budget check verbatim
	// (no refund of the replaced slot); see selectMinRuntimeGreedy.
	LiteralBudget bool
}

// Name implements Algorithm.
func (a MinRunTime) Name() string {
	if a.Exact {
		return "MinRunTimeExact"
	}
	return "MinRunTime"
}

// Find implements Algorithm.
func (a MinRunTime) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder. Runs on a pooled Scanner
// (vkMinRunTime: greedy substitution or exact prefix selection per the
// Exact flag, keeping the shortest runtime over all positions).
func (a MinRunTime) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return findPooled(a, list, req, col)
}

// MinFinish searches for the window with the earliest finish time. At every
// scan position the minimum achievable finish is start + minimal runtime,
// computed with the same substitution procedure as MinRunTime.
type MinFinish struct {
	// Exact selects the exact per-step runtime minimization (extension).
	Exact bool

	// EarlyStop enables an exactness-preserving pruning extension: the scan
	// stops once the current position starts at or after the best finish
	// found, because every later window finishes after its own start. The
	// paper's scheme performs the full scan (its Tables 1-2 report
	// MinFinish and MinRunTime working times as nearly equal), so the
	// default is off.
	EarlyStop bool
}

// Name implements Algorithm.
func (a MinFinish) Name() string {
	if a.Exact {
		return "MinFinishExact"
	}
	return "MinFinish"
}

// Find implements Algorithm.
func (a MinFinish) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder. Runs on a pooled Scanner
// (vkMinFinish: build at every feasible position, keep the earliest
// finish; EarlyStop prunes once start passes the best finish).
func (a MinFinish) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return findPooled(a, list, req, col)
}

// MinProcTime is the paper's *simplified* total-processor-time minimizer:
// at every scan position a random sub-window is selected (no per-step
// optimization), and the best total node time over the whole scan is kept.
// It does not guarantee an optimal result and only partially matches the
// AEP scheme, but its working time is an order of magnitude below the full
// implementations.
type MinProcTime struct {
	// Seed seeds the per-search random stream; searches with equal seeds
	// over equal inputs are deterministic.
	Seed uint64
}

// Name implements Algorithm.
func (MinProcTime) Name() string { return "MinProcTime" }

// Find implements Algorithm.
func (a MinProcTime) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder. Runs on a pooled Scanner
// (vkMinProcRandom: the scanner's generator is reseeded with a.Seed per
// search, so the sampled stream — and therefore the result — is identical
// to a freshly constructed generator's).
func (a MinProcTime) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return findPooled(a, list, req, col)
}

// MinProcTimeGreedy is an extension: the additive greedy substitution
// applied to the total-processor-time criterion, giving a directed (though
// still heuristic) search where the paper's simplified variant picks
// randomly.
type MinProcTimeGreedy struct{}

// Name implements Algorithm.
func (MinProcTimeGreedy) Name() string { return "MinProcTimeGreedy" }

// Find implements Algorithm.
func (a MinProcTimeGreedy) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder. Runs on a pooled Scanner
// (vkMinProcGreedy: additive greedy substitution weighted by Exec).
func (a MinProcTimeGreedy) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return findPooled(a, list, req, col)
}

// EnergyModel maps a placement (its node performance and execution time) to
// an energy figure. The default models dynamic power growing superlinearly
// with the performance rate: E = perf^2 x exec.
type EnergyModel func(perf, exec float64) float64

// DefaultEnergyModel is the perf^2 x time model.
func DefaultEnergyModel(perf, exec float64) float64 { return perf * perf * exec }

// MinEnergy is an extension implementing the "minimum energy consumption"
// criterion the paper names as a possible crW: the additive greedy
// substitution over a per-slot energy weight.
type MinEnergy struct {
	// Model computes per-placement energy; nil selects DefaultEnergyModel.
	Model EnergyModel
}

// Name implements Algorithm.
func (MinEnergy) Name() string { return "MinEnergy" }

// Energy returns the window's total energy under the algorithm's model.
func (a MinEnergy) Energy(w *Window) float64 {
	model := a.Model
	if model == nil {
		model = DefaultEnergyModel
	}
	total := 0.0
	for _, p := range w.Placements {
		total += model(p.Node().Perf, p.Exec)
	}
	return total
}

// Find implements Algorithm.
func (a MinEnergy) Find(list slots.List, req *job.Request) (*Window, error) {
	return a.FindObserved(list, req, nil)
}

// FindObserved implements ObservedFinder. Runs on a pooled Scanner
// (vkMinEnergy: additive greedy substitution over the energy weight; a nil
// Model binds the allocation-free default, a custom Model costs one
// closure per search).
func (a MinEnergy) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return findPooled(a, list, req, col)
}

// findPooled is the shared public-Find epilogue: borrow a pooled Scanner,
// search on its recycled state, and detach the result so the caller owns
// it after the scanner returns to the pool. The detach costs two small
// allocations per successful search — the price of the caller-owned result
// contract; zero-allocation callers hold a Scanner and use
// Scanner.FindObserved / FindObservedScanner directly.
func findPooled(alg Algorithm, list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	sc := AcquireScanner()
	defer ReleaseScanner(sc)
	w, err := sc.FindObserved(alg, list, req, col)
	if err != nil {
		return nil, err
	}
	return w.Detach(), nil
}
