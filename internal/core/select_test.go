package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"slotsel/internal/randx"
)

// makeCands builds a candidate set with the given (exec, cost) pairs on
// distinct synthetic nodes.
func makeCands(pairs ...[2]float64) []Candidate {
	out := make([]Candidate, len(pairs))
	for i, p := range pairs {
		n := testNode(i, 1, 1)
		s := slot(n, 0, 1000)
		out[i] = Candidate{Slot: s, Exec: p[0], Cost: p[1]}
	}
	return out
}

// randomCands draws n candidates with random exec/cost.
func randomCands(rng *randx.Rand, n int) []Candidate {
	pairs := make([][2]float64, n)
	for i := range pairs {
		pairs[i] = [2]float64{rng.FloatRange(1, 100), rng.FloatRange(1, 50)}
	}
	return makeCands(pairs...)
}

func TestCheapestN(t *testing.T) {
	cands := makeCands([2]float64{10, 5}, [2]float64{10, 1}, [2]float64{10, 3}, [2]float64{10, 2})
	got := cheapestN(cands, 2)
	if got[0].Cost != 1 || got[1].Cost != 2 {
		t.Fatalf("cheapestN picked costs %g, %g", got[0].Cost, got[1].Cost)
	}
	// Input must be unchanged.
	if cands[0].Cost != 5 {
		t.Fatal("cheapestN mutated its input")
	}
}

func TestSelectMinCost(t *testing.T) {
	cands := makeCands([2]float64{10, 5}, [2]float64{10, 1}, [2]float64{10, 3})
	chosen, cost, ok := selectMinCost(cands, 2, 0)
	if !ok || cost != 4 {
		t.Fatalf("selectMinCost = %v cost %g", ok, cost)
	}
	if len(chosen) != 2 {
		t.Fatalf("chose %d candidates", len(chosen))
	}
	// Budget binds.
	if _, _, ok := selectMinCost(cands, 2, 3.9); ok {
		t.Error("budget 3.9 should be infeasible for min cost 4")
	}
	if _, _, ok := selectMinCost(cands, 5, 0); ok {
		t.Error("asking for more slots than candidates should fail")
	}
}

func TestSelectMinRuntimeGreedySimple(t *testing.T) {
	// Cheap but slow vs expensive but fast; generous budget lets the greedy
	// swap everything to fast nodes.
	cands := makeCands(
		[2]float64{50, 1}, [2]float64{50, 1}, // slow, cheap
		[2]float64{10, 5}, [2]float64{10, 5}, // fast, pricier
	)
	chosen, runtime, ok := selectMinRuntimeGreedy(cands, 2, 100, false)
	if !ok {
		t.Fatal("greedy failed")
	}
	if runtime != 10 {
		t.Fatalf("greedy runtime %g, want 10", runtime)
	}
	if sumCost(chosen) != 10 {
		t.Fatalf("greedy cost %g, want 10", sumCost(chosen))
	}
}

func TestSelectMinRuntimeGreedyBudgetBinds(t *testing.T) {
	cands := makeCands(
		[2]float64{50, 1}, [2]float64{50, 1},
		[2]float64{10, 5}, [2]float64{10, 5},
	)
	// Budget 7 allows replacing only one slow slot (cost 1+5=6 <= 7).
	chosen, runtime, ok := selectMinRuntimeGreedy(cands, 2, 7, false)
	if !ok {
		t.Fatal("greedy failed")
	}
	if runtime != 50 {
		t.Fatalf("runtime %g, want 50 (one slow slot must remain)", runtime)
	}
	if got := sumCost(chosen); got > 7 {
		t.Fatalf("cost %g exceeds budget", got)
	}
}

func TestSelectMinRuntimeGreedyInfeasible(t *testing.T) {
	cands := makeCands([2]float64{10, 5}, [2]float64{10, 6})
	if _, _, ok := selectMinRuntimeGreedy(cands, 2, 10, false); ok {
		t.Error("min cost 11 > budget 10 must be infeasible")
	}
}

func TestSelectMinRuntimeLiteralBudgetStricter(t *testing.T) {
	// The literal pseudocode charges the swap without refunding the
	// replaced slot: result cost 2 + new 5 = 7 > budget 6 forbids the swap,
	// while the corrected check (2-1+5=6 <= 6) allows it.
	cands := makeCands(
		[2]float64{50, 1}, [2]float64{50, 1},
		[2]float64{10, 5},
	)
	_, runtime, ok := selectMinRuntimeGreedy(cands, 2, 6, false)
	if !ok || runtime != 50 {
		// corrected: swap one slow for fast -> {50,10}, runtime 50? No:
		// replacing the longest (50) with 10 gives {50,10} -> max 50.
		// Only one extend slot exists, so runtime stays 50 either way.
		t.Fatalf("corrected variant: ok=%v runtime=%g", ok, runtime)
	}
	chosenLit, _, okLit := selectMinRuntimeGreedy(cands, 2, 6, true)
	if !okLit {
		t.Fatal("literal variant infeasible")
	}
	if sumCost(chosenLit) != 2 {
		t.Fatalf("literal variant should forbid the swap, cost %g", sumCost(chosenLit))
	}
}

func TestSelectMinRuntimeExactSimple(t *testing.T) {
	cands := makeCands(
		[2]float64{50, 1}, [2]float64{40, 1},
		[2]float64{10, 5}, [2]float64{20, 2},
	)
	chosen, runtime, ok := selectMinRuntimeExact(cands, 2, 7)
	if !ok {
		t.Fatal("exact failed")
	}
	if runtime != 20 {
		t.Fatalf("exact runtime %g, want 20 (exec 10+20, cost 7)", runtime)
	}
	if sumCost(chosen) > 7 {
		t.Fatalf("exact exceeded budget: %g", sumCost(chosen))
	}
}

func TestSelectMinRuntimeExactInfeasible(t *testing.T) {
	cands := makeCands([2]float64{1, 10})
	if _, _, ok := selectMinRuntimeExact(cands, 2, 0); ok {
		t.Error("n=2 from 1 candidate must fail")
	}
	cands = makeCands([2]float64{1, 10}, [2]float64{1, 10})
	if _, _, ok := selectMinRuntimeExact(cands, 2, 19); ok {
		t.Error("budget below cheapest pair must fail")
	}
}

// bruteMinRuntime finds the true optimum by enumeration (oracle).
func bruteMinRuntime(cands []Candidate, n int, budget float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	var rec func(i int, chosen []Candidate)
	rec = func(i int, chosen []Candidate) {
		if len(chosen) == n {
			cost := sumCost(chosen)
			if budget > 0 && cost > budget {
				return
			}
			if r := maxExec(chosen); r < best {
				best = r
				found = true
			}
			return
		}
		if i >= len(cands) || len(cands)-i < n-len(chosen) {
			return
		}
		rec(i+1, append(chosen, cands[i]))
		rec(i+1, chosen)
	}
	rec(0, nil)
	return best, found
}

func TestSelectMinRuntimeExactMatchesBruteForce(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		rng := randx.New(seed)
		n := int(nRaw%10) + 2
		k := int(kRaw)%n + 1
		cands := randomCands(rng, n)
		budget := rng.FloatRange(float64(k), float64(k)*30)
		_, exact, okExact := selectMinRuntimeExact(cands, k, budget)
		brute, okBrute := bruteMinRuntime(cands, k, budget)
		if okExact != okBrute {
			return false
		}
		if !okExact {
			return true
		}
		return math.Abs(exact-brute) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		rng := randx.New(seed)
		n := int(nRaw%12) + 2
		k := int(kRaw)%n + 1
		cands := randomCands(rng, n)
		budget := rng.FloatRange(float64(k), float64(k)*30)
		chosenG, greedy, okG := selectMinRuntimeGreedy(cands, k, budget, false)
		_, exact, okE := selectMinRuntimeExact(cands, k, budget)
		if okG != okE {
			// Greedy feasibility == exact feasibility: both start from the
			// n cheapest, which is the cheapest possible selection.
			return false
		}
		if !okG {
			return true
		}
		if sumCost(chosenG) > budget+1e-9 {
			return false
		}
		return greedy >= exact-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSelectRandomRespectsBudget(t *testing.T) {
	rng := randx.New(1)
	cands := makeCands([2]float64{10, 5}, [2]float64{20, 6}, [2]float64{5, 2})
	for i := 0; i < 100; i++ {
		chosen, ok := selectRandom(cands, 2, 9, rng)
		if !ok {
			continue
		}
		if len(chosen) != 2 {
			t.Fatalf("chose %d", len(chosen))
		}
		if sumCost(chosen) > 9 {
			t.Fatalf("random selection exceeded budget: %g", sumCost(chosen))
		}
		if chosen[0].Slot.Node.ID == chosen[1].Slot.Node.ID {
			t.Fatal("random selection repeated a candidate")
		}
	}
	if _, ok := selectRandom(cands, 4, 0, rng); ok {
		t.Error("selecting 4 of 3 should fail")
	}
}

func TestSelectMinAdditiveGreedy(t *testing.T) {
	// Weight = exec; generous budget: greedy should reach the 2 lightest.
	cands := makeCands(
		[2]float64{50, 1}, [2]float64{40, 2},
		[2]float64{10, 5}, [2]float64{20, 4},
	)
	chosen, total, ok := selectMinAdditiveGreedy(cands, 2, 100, func(c Candidate) float64 { return c.Exec })
	if !ok {
		t.Fatal("additive greedy failed")
	}
	if total != 30 {
		t.Fatalf("total weight %g, want 30 (10+20)", total)
	}
	if sumExec(chosen) != 30 {
		t.Fatalf("sumExec %g inconsistent with total", sumExec(chosen))
	}
}

func TestSelectMinAdditiveGreedyBudget(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		rng := randx.New(seed)
		n := int(nRaw%12) + 2
		k := int(kRaw)%n + 1
		cands := randomCands(rng, n)
		budget := rng.FloatRange(float64(k), float64(k)*30)
		chosen, _, ok := selectMinAdditiveGreedy(cands, k, budget, func(c Candidate) float64 { return c.Exec })
		if !ok {
			return true
		}
		return len(chosen) == k && sumCost(chosen) <= budget+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHeapMaintainsMax(t *testing.T) {
	rng := randx.New(9)
	var h []Candidate
	var costs []float64
	for i := 0; i < 50; i++ {
		c := Candidate{Cost: rng.FloatRange(0, 100)}
		heapPush(&h, c)
		costs = append(costs, c.Cost)
		sort.Float64s(costs)
		if h[0].Cost != costs[len(costs)-1] {
			t.Fatalf("heap max %g, want %g", h[0].Cost, costs[len(costs)-1])
		}
	}
	// Replace the max a few times and re-verify.
	for i := 0; i < 20; i++ {
		c := Candidate{Cost: rng.FloatRange(0, 100)}
		costs[len(costs)-1] = c.Cost
		heapReplace(h, c)
		sort.Float64s(costs)
		if h[0].Cost != costs[len(costs)-1] {
			t.Fatalf("after replace: heap max %g, want %g", h[0].Cost, costs[len(costs)-1])
		}
	}
}

func TestMaxExecHelpers(t *testing.T) {
	cands := makeCands([2]float64{5, 1}, [2]float64{9, 1}, [2]float64{3, 1})
	if got := maxExec(cands); got != 9 {
		t.Errorf("maxExec = %g", got)
	}
	if got := maxExecIndex(cands); got != 1 {
		t.Errorf("maxExecIndex = %d", got)
	}
}
