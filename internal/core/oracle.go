package core

import (
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// oracleAlg is a reference twin of a shipped algorithm: the same search
// loop, but running on ScanObserved with the per-visit copy+sort kernels
// (selectMinCost, selectMinRuntimeGreedy, ...) instead of the incremental
// WindowIndex. The twins exist for the differential test suite and the
// bench harness: they are the executable specification the incremental
// kernels must match window-for-window.
type oracleAlg struct {
	name string
	find func(list slots.List, req *job.Request, col obs.Collector) (*Window, error)
}

// Name implements Algorithm.
func (o oracleAlg) Name() string { return o.name }

// Find implements Algorithm.
func (o oracleAlg) Find(list slots.List, req *job.Request) (*Window, error) {
	return o.find(list, req, nil)
}

// FindObserved implements ObservedFinder.
func (o oracleAlg) FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	return o.find(list, req, col)
}

// Oracle returns the copy+sort reference twin of a shipped algorithm, or
// ok == false when the algorithm has no oracle (an unknown third-party
// implementation). The twin preserves Name() so result tables line up, and
// is guaranteed — by the kernel equivalence the differential suite pins —
// to return a window with the same signature as the original for every
// input.
func Oracle(alg Algorithm) (Algorithm, bool) {
	switch a := alg.(type) {
	case AMP:
		return oracleAlg{name: a.Name(), find: oracleAMP}, true
	case MinCost:
		return oracleAlg{name: a.Name(), find: oracleMinCost}, true
	case MinRunTime:
		return oracleAlg{name: a.Name(), find: oracleMinRunTime(a)}, true
	case MinFinish:
		return oracleAlg{name: a.Name(), find: oracleMinFinish(a)}, true
	case MinProcTime:
		return oracleAlg{name: a.Name(), find: oracleMinProcTime(a)}, true
	case MinProcTimeGreedy:
		return oracleAlg{name: a.Name(), find: oracleMinProcTimeGreedy}, true
	case MinEnergy:
		return oracleAlg{name: a.Name(), find: oracleMinEnergy(a)}, true
	}
	return nil, false
}

func oracleAMP(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
		chosen, _, ok := selectMinCost(cands, req.TaskCount, req.MaxCost)
		if !ok {
			return false
		}
		best = NewWindow(start, chosen)
		return true
	}, col)
	return oracleResult(best, err)
}

func oracleMinCost(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
		chosen, cost, ok := selectMinCost(cands, req.TaskCount, req.MaxCost)
		if !ok {
			return false
		}
		if best == nil || cost < best.Cost {
			best = NewWindow(start, chosen)
		}
		return false
	}, col)
	return oracleResult(best, err)
}

func oracleMinRunTime(a MinRunTime) func(slots.List, *job.Request, obs.Collector) (*Window, error) {
	return func(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
		var best *Window
		err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
			var chosen []Candidate
			var runtime float64
			var ok bool
			if a.Exact {
				chosen, runtime, ok = selectMinRuntimeExact(cands, req.TaskCount, req.MaxCost)
			} else {
				chosen, runtime, ok = selectMinRuntimeGreedy(cands, req.TaskCount, req.MaxCost, a.LiteralBudget)
			}
			if !ok {
				return false
			}
			if best == nil || runtime < best.Runtime {
				best = NewWindow(start, chosen)
			}
			return false
		}, col)
		return oracleResult(best, err)
	}
}

func oracleMinFinish(a MinFinish) func(slots.List, *job.Request, obs.Collector) (*Window, error) {
	return func(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
		var best *Window
		err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
			if a.EarlyStop && best != nil && start >= best.Finish() {
				return true
			}
			var chosen []Candidate
			var ok bool
			if a.Exact {
				chosen, _, ok = selectMinRuntimeExact(cands, req.TaskCount, req.MaxCost)
			} else {
				chosen, _, ok = selectMinRuntimeGreedy(cands, req.TaskCount, req.MaxCost, false)
			}
			if !ok {
				return false
			}
			w := NewWindow(start, chosen)
			if best == nil || w.Finish() < best.Finish() {
				best = w
			}
			return false
		}, col)
		return oracleResult(best, err)
	}
}

func oracleMinProcTime(a MinProcTime) func(slots.List, *job.Request, obs.Collector) (*Window, error) {
	return func(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
		rng := randx.New(a.Seed)
		var best *Window
		err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
			chosen, ok := selectRandom(cands, req.TaskCount, req.MaxCost, rng)
			if !ok {
				return false
			}
			w := NewWindow(start, chosen)
			if best == nil || w.ProcTime < best.ProcTime {
				best = w
			}
			return false
		}, col)
		return oracleResult(best, err)
	}
}

func oracleMinProcTimeGreedy(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	var best *Window
	err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
		chosen, total, ok := selectMinAdditiveGreedy(cands, req.TaskCount, req.MaxCost,
			func(c Candidate) float64 { return c.Exec })
		if !ok {
			return false
		}
		if best == nil || total < best.ProcTime {
			best = NewWindow(start, chosen)
		}
		return false
	}, col)
	return oracleResult(best, err)
}

func oracleMinEnergy(a MinEnergy) func(slots.List, *job.Request, obs.Collector) (*Window, error) {
	return func(list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
		model := a.Model
		if model == nil {
			model = DefaultEnergyModel
		}
		var best *Window
		var bestEnergy float64
		err := ScanObserved(list, req, func(start float64, cands []Candidate) bool {
			chosen, total, ok := selectMinAdditiveGreedy(cands, req.TaskCount, req.MaxCost,
				func(c Candidate) float64 { return model(c.Slot.Node.Perf, c.Exec) })
			if !ok {
				return false
			}
			if best == nil || total < bestEnergy {
				best = NewWindow(start, chosen)
				bestEnergy = total
			}
			return false
		}, col)
		return oracleResult(best, err)
	}
}

// oracleResult folds the shared epilogue of every twin: scan errors pass
// through, an empty search is ErrNoWindow.
func oracleResult(best *Window, err error) (*Window, error) {
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, ErrNoWindow
	}
	return best, nil
}
