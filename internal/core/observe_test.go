package core

import (
	"testing"
	"time"

	"slotsel/internal/job"
	"slotsel/internal/obs"
)

// TestScanObservedCounters checks the scan counters against a hand-computed
// workload: 4 slots, one filtered by MinPerf, the rest candidates, with
// visits starting once 2 suitable slots overlap.
func TestScanObservedCounters(t *testing.T) {
	fast1, fast2 := testNode(1, 4, 1), testNode(2, 4, 1) // exec 15
	slow := testNode(3, 2, 1)                            // filtered by MinPerf 3
	l := sorted(slot(fast1, 0, 200), slot(slow, 10, 200), slot(fast2, 50, 200), slot(fast1, 210, 230))
	req := job.Request{TaskCount: 2, Volume: 60, MinPerf: 3}

	var stats obs.Stats
	if err := ScanObserved(l, &req, func(float64, []Candidate) bool { return false }, &stats); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Scan.Scans != 1 {
		t.Fatalf("Scans = %d, want 1", snap.Scan.Scans)
	}
	if snap.Scan.Slots != 4 {
		t.Errorf("Slots = %d, want 4 (every slot examined)", snap.Scan.Slots)
	}
	if snap.Scan.Matched != 3 {
		t.Errorf("Matched = %d, want 3 (slow node filtered)", snap.Scan.Matched)
	}
	// [210,230) is long enough for exec 15, so all three matched slots
	// become candidates.
	if snap.Scan.Candidates != 3 {
		t.Errorf("Candidates = %d, want 3", snap.Scan.Candidates)
	}
	// Window peaks at 2: the two 200-end slots overlap; the late slot joins
	// alone after both expired.
	if snap.Scan.PeakWindow != 2 {
		t.Errorf("PeakWindow = %d, want 2", snap.Scan.PeakWindow)
	}
	// Only the position at start 50 holds 2 candidates simultaneously.
	if snap.Scan.Visits != 1 {
		t.Errorf("Visits = %d, want 1", snap.Scan.Visits)
	}
	if snap.Scan.EarlyStops != 0 {
		t.Errorf("EarlyStops = %d, want 0", snap.Scan.EarlyStops)
	}
}

func TestScanObservedEarlyStop(t *testing.T) {
	n1, n2 := testNode(1, 4, 1), testNode(2, 4, 1)
	l := sorted(slot(n1, 0, 100), slot(n2, 0, 100), slot(n1, 150, 300), slot(n2, 150, 300))
	req := job.Request{TaskCount: 1, Volume: 60}

	var stats obs.Stats
	if err := ScanObserved(l, &req, func(float64, []Candidate) bool { return true }, &stats); err != nil {
		t.Fatal(err)
	}
	snap := stats.Snapshot()
	if snap.Scan.EarlyStops != 1 {
		t.Errorf("EarlyStops = %d, want 1", snap.Scan.EarlyStops)
	}
	if snap.Scan.Visits != 1 {
		t.Errorf("Visits = %d, want 1", snap.Scan.Visits)
	}
	// The scan stopped at the first visit. Both slots share start 0 and are
	// coalesced into that visit, so both were examined; the two slots at
	// start 150 were not.
	if snap.Scan.Slots != 2 {
		t.Errorf("Slots = %d, want 2 (stopped after the first coalesced visit)", snap.Scan.Slots)
	}
}

// TestScanObservedNilMatchesScan verifies the delegation contract: Scan and
// ScanObserved with a nil collector visit identical positions.
func TestScanObservedNilMatchesScan(t *testing.T) {
	n1, n2 := testNode(1, 4, 1), testNode(2, 2, 1)
	l := sorted(slot(n1, 0, 100), slot(n2, 10, 300), slot(n1, 150, 400))
	req := job.Request{TaskCount: 1, Volume: 60}

	var a, b []float64
	if err := Scan(l, &req, func(start float64, _ []Candidate) bool {
		a = append(a, start)
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if err := ScanObserved(l, &req, func(start float64, _ []Candidate) bool {
		b = append(b, start)
		return false
	}, nil); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("visit counts differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit starts differ at %d: %v vs %v", i, a, b)
		}
	}
}

// TestFindObservedEmitsSelect checks the helper wraps any algorithm with
// selection stats and a span, and threads scan counters for ObservedFinders.
func TestFindObservedEmitsSelect(t *testing.T) {
	n1, n2 := testNode(1, 4, 1), testNode(2, 4, 1)
	l := sorted(slot(n1, 0, 100), slot(n2, 0, 100))
	req := job.Request{TaskCount: 2, Volume: 60}

	stats := &obs.Stats{}
	tr := obs.NewTrace(16)
	col := obs.Combine(stats, tr)

	w, err := FindObserved(MinCost{}, l, &req, col)
	if err != nil || w == nil {
		t.Fatalf("FindObserved: %v, %v", w, err)
	}
	snap := stats.Snapshot()
	sel, ok := snap.Selects["MinCost"]
	if !ok || sel.Searches != 1 || sel.Found != 1 {
		t.Errorf("selection stats = %+v", snap.Selects)
	}
	if snap.Scan.Scans != 1 {
		t.Errorf("scan counters not threaded: %+v", snap.Scan)
	}
	var haveSelect, haveScan bool
	for _, sp := range tr.Spans() {
		switch sp.Cat {
		case "select":
			haveSelect = sp.Name == "MinCost"
		case "scan":
			haveScan = true
		}
	}
	if !haveSelect || !haveScan {
		t.Errorf("spans missing: select=%v scan=%v (%v)", haveSelect, haveScan, tr.Spans())
	}
}

func TestInstrumentWrapsPlainAlgorithm(t *testing.T) {
	n1 := testNode(1, 4, 1)
	l := sorted(slot(n1, 0, 100))
	req := job.Request{TaskCount: 1, Volume: 60}

	stats := &obs.Stats{}
	wrapped := Instrument(AMP{}, stats)
	if wrapped.Name() != "AMP" {
		t.Errorf("Name = %q, want AMP", wrapped.Name())
	}
	if _, err := wrapped.Find(l, &req); err != nil {
		t.Fatal(err)
	}
	if stats.Snapshot().Selects["AMP"].Searches != 1 {
		t.Error("Instrument did not record the search")
	}

	// nil collector: the algorithm must come back unchanged.
	if got := Instrument(AMP{}, nil); got != Algorithm(AMP{}) {
		t.Errorf("Instrument(alg, nil) = %v, want the algorithm itself", got)
	}
}

func TestFindObservedNotFound(t *testing.T) {
	n1 := testNode(1, 4, 1)
	l := sorted(slot(n1, 0, 10)) // too short for exec 15
	req := job.Request{TaskCount: 1, Volume: 60}

	stats := &obs.Stats{}
	if _, err := FindObserved(AMP{}, l, &req, stats); err != ErrNoWindow {
		t.Fatalf("err = %v, want ErrNoWindow", err)
	}
	sel := stats.Snapshot().Selects["AMP"]
	if sel.Searches != 1 || sel.Found != 0 {
		t.Errorf("selection stats = %+v", sel)
	}
}

// TestObservedSpanTimeline sanity-checks span timestamps: non-negative
// start, bounded duration.
func TestObservedSpanTimeline(t *testing.T) {
	n1 := testNode(1, 4, 1)
	l := sorted(slot(n1, 0, 100))
	req := job.Request{TaskCount: 1, Volume: 60}

	tr := obs.NewTrace(16)
	if _, err := FindObserved(AMP{}, l, &req, tr); err != nil {
		t.Fatal(err)
	}
	for _, sp := range tr.Spans() {
		if sp.Start < 0 {
			t.Errorf("span %q starts before process start: %v", sp.Name, sp.Start)
		}
		if sp.Dur < 0 || sp.Dur > time.Minute {
			t.Errorf("span %q has implausible duration %v", sp.Name, sp.Dur)
		}
	}
}
