package core_test

import (
	"math"
	"testing"

	"slotsel/internal/baseline"
	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

// FuzzScanWindow cross-checks the Scan-based AMP against the exhaustive
// enumerator of internal/baseline on small random instances: both must
// agree on feasibility, on the exact minimal window start, and every window
// AMP returns must validate against the request. The instance is derived
// from the fuzzed seed; the remaining arguments steer the request into the
// budget/deadline/heterogeneity corners.
func FuzzScanWindow(f *testing.F) {
	f.Add(uint64(1), 2, 60.0, 0.0, 0.0)
	f.Add(uint64(7), 1, 30.0, 50.0, 0.0)
	f.Add(uint64(42), 3, 120.0, 0.0, 400.0)
	f.Add(uint64(99), 4, 90.0, 80.0, 250.0)
	f.Fuzz(func(t *testing.T, seed uint64, taskCount int, volume, deadline, budget float64) {
		if math.IsNaN(volume) || math.IsInf(volume, 0) ||
			math.IsNaN(deadline) || math.IsInf(deadline, 0) ||
			math.IsNaN(budget) || math.IsInf(budget, 0) {
			t.Skip()
		}
		// Clamp into the small-instance regime the exponential oracle can
		// afford: at most 4 tasks over at most 4 nodes x 3 slots.
		taskCount = 1 + ((taskCount%4)+4)%4
		volume = 1 + math.Mod(math.Abs(volume), 200)
		deadline = math.Mod(math.Abs(deadline), 150) // 0 = unconstrained
		budget = math.Mod(math.Abs(budget), 1000)    // 0 = unconstrained

		rng := randx.New(seed)
		list := testkit.RandomList(rng, 4, 3, 100)
		req := job.Request{TaskCount: taskCount, Volume: volume, Deadline: deadline, MaxCost: budget}

		ampW, ampErr := core.AMP{}.Find(list, &req)
		bfW, bfErr := baseline.BruteForce{Obj: baseline.ObjStart}.Find(list, &req)

		if (ampErr == nil) != (bfErr == nil) {
			t.Fatalf("seed=%d req=%+v: feasibility diverged: AMP err=%v, brute force err=%v",
				seed, req, ampErr, bfErr)
		}
		if ampErr != nil {
			return
		}
		if ampW.Start != bfW.Start {
			t.Fatalf("seed=%d req=%+v: AMP start %x, brute-force minimal start %x",
				seed, req, ampW.Start, bfW.Start)
		}
		if err := ampW.Validate(&req); err != nil {
			t.Fatalf("seed=%d req=%+v: AMP window invalid: %v\n%s",
				seed, req, err, testkit.WindowSignature(ampW))
		}

		// Cross-check the incremental WindowIndex kernels against the
		// retained copy+sort oracle kernels on the same fuzzed instance:
		// every shipped algorithm must match its oracle twin signature-
		// for-signature (or agree the instance is infeasible).
		for _, alg := range catalogue(seed) {
			oracle, ok := core.Oracle(alg)
			if !ok {
				t.Fatalf("no oracle twin for %s", alg.Name())
			}
			r1, r2 := req, req
			incW, incErr := alg.Find(list, &r1)
			orcW, orcErr := oracle.Find(list, &r2)
			if (incErr == nil) != (orcErr == nil) {
				t.Fatalf("seed=%d req=%+v alg=%s: feasibility diverged: incremental err=%v, oracle err=%v",
					seed, req, alg.Name(), incErr, orcErr)
			}
			if incErr != nil {
				continue
			}
			is, os := testkit.WindowSignature(incW), testkit.WindowSignature(orcW)
			if is != os {
				t.Fatalf("seed=%d req=%+v alg=%s: incremental and oracle kernels diverged\nincremental: %s\noracle:      %s",
					seed, req, alg.Name(), is, os)
			}
		}
	})
}
