package core

import (
	"fmt"
	"time"

	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// Candidate is a slot considered for the current window position, with the
// request-specific execution time and reservation cost precomputed.
type Candidate struct {
	// Slot is the underlying availability window.
	Slot *slots.Slot

	// Exec is the execution time of one task of the request on the slot's
	// node.
	Exec float64

	// Cost is Exec x per-unit node price.
	Cost float64
}

// VisitFunc is invoked by Scan at every scan position where at least
// req.TaskCount suitable slots are available. start is the current window
// start time (the start of the most recently added slots); cands holds the
// suitable candidates — every candidate can host a task over
// [start, start+Exec] within its slot (and within the request deadline).
// Slots sharing a start time are coalesced into one visit: the window
// already contains every suitable slot starting at start.
//
// The cands slice is reused between calls: implementations must copy
// whatever they keep. Returning true stops the scan early.
//
// Candidate values may be copied freely — a Candidate aliases its *Slot,
// which is immutable for the duration of the search (see the slots.List
// contract) — but the cands slice itself is the scan's live window state:
// retaining it (or a sub-slice of it) is an aliasing bug that the
// testkit.PoisonVisit detector exists to catch.
type VisitFunc func(start float64, cands []Candidate) (stop bool)

// IndexedVisitFunc is the selection-kernel variant of VisitFunc: instead of
// the raw candidate slice the visit receives the scan's incrementally
// maintained WindowIndex, whose Select* methods run the per-criterion
// selection procedures without re-sorting the window. The index (and every
// slice it exposes) is reused between calls under the same
// copy-what-you-keep contract; testkit.PoisonIndexedVisit is the matching
// aliasing detector.
type IndexedVisitFunc func(start float64, win *WindowIndex) (stop bool)

// visitWrap, when non-nil, wraps every plain visit function before Scan
// uses it. It is a test-only seam (set via SetVisitWrapForTest) that lets
// the aliasing regression tests interpose testkit.PoisonVisit between Scan
// and the per-algorithm selection procedures; production builds pay one
// nil check per Scan call.
var visitWrap func(VisitFunc) VisitFunc

// indexWrap is visitWrap's twin for the indexed scan path (set via
// SetIndexedVisitWrapForTest, interposing testkit.PoisonIndexedVisit).
var indexWrap func(IndexedVisitFunc) IndexedVisitFunc

// Scan is the AEP general scheme: a single pass over the slot list in order
// of non-decreasing start time, maintaining the set of slots that remain
// suitable for a window starting at the current position, and invoking
// visit whenever a window of the requested size could be formed.
//
// The list must be sorted by start time (slots.List.SortByStart); Scan
// returns an error otherwise, because an unsorted list silently breaks the
// linear-scan correctness argument of §2.1.
//
// Concurrency (audited for the parallel engine): Scan only READS the list,
// its slots and their nodes — it never writes through a *slots.Slot — and
// all of its mutable state (the window index, the Candidate values) is
// local to the call. Any number of Scans may therefore run concurrently
// over one shared list, provided callers uphold the slots.List contract of
// not mutating a published list during searches. The cands slice handed to
// visit is owned by the scan; implementations copy what they keep (the
// aliasing regression tests in this package enforce that for every
// shipped algorithm).
func Scan(list slots.List, req *job.Request, visit VisitFunc) error {
	return ScanObserved(list, req, visit, nil)
}

// ScanObserved is Scan with instrumentation: the pass accumulates
// obs.ScanStats in locals and publishes them to col — together with a
// "scan" span — once the pass completes. col == nil means observability
// off; the disabled path is the plain Scan plus a handful of register
// increments, benchmark-verified (BenchmarkScanObservedOverhead) to stay
// within the ≤2% hot-path budget.
func ScanObserved(list slots.List, req *job.Request, visit VisitFunc, col obs.Collector) error {
	if visitWrap != nil {
		visit = visitWrap(visit)
	}
	sc := AcquireScanner()
	defer ReleaseScanner(sc)
	return scanLoop(list, req, col, false, &sc.win, func(start float64, ix *WindowIndex) bool {
		return visit(start, ix.cands)
	})
}

// ScanIndexed is the scan entry of the incremental selection kernels: the
// same pass as Scan, but the visit receives the maintained WindowIndex —
// cost-ordered mirror, prefix-cost sums, lazily activated exec mirror —
// instead of the raw candidate slice. All shipped algorithms run on this
// path; ScanObserved remains for third-party VisitFunc implementations and
// for the copy+sort oracle kernels the differential tests compare against.
func ScanIndexed(list slots.List, req *job.Request, visit IndexedVisitFunc, col obs.Collector) error {
	if indexWrap != nil {
		visit = indexWrap(visit)
	}
	sc := AcquireScanner()
	defer ReleaseScanner(sc)
	return scanLoop(list, req, col, true, &sc.win, visit)
}

// scanLoop is the single shared scan implementation. Slots sharing a start
// time are coalesced into one visit: every suitable slot at the current
// start joins the window before the selection runs, so a first-feasible
// algorithm (AMP) sees the complete candidate set at a tied start instead
// of a partially built window, and the other algorithms pay one selection
// call per distinct start rather than one per tied slot.
//
// win is caller-provided recycled state (a Scanner's index): the loop
// resets it and reuses its capacity, so a warmed-up scan allocates nothing
// for window maintenance. Its size is bounded by the node count (per node,
// free slots are disjoint, and every retained slot contains the current
// start), which is what makes the per-step maintenance cost O(nodes) and
// the whole scan O(m x nodes).
func scanLoop(list slots.List, req *job.Request, col obs.Collector, indexed bool, win *WindowIndex, visit IndexedVisitFunc) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if !list.IsSortedByStart() {
		return fmt.Errorf("core: slot list is not ordered by start time")
	}
	var begin time.Duration
	if col != nil {
		begin = obs.Now()
	}
	var st obs.ScanStats

	win.reset()
	win.mirror = indexed

	for i := 0; i < len(list); {
		start := list[i].Start
		added := false
		// Coalesce: admit every suitable slot sharing this start time
		// before filtering and visiting once.
		for ; i < len(list) && list[i].Start == start; i++ {
			s := list[i]
			st.Slots++
			if !req.Matches(s.Node) {
				continue // the slot does not meet the requirements
			}
			st.Matched++
			exec := req.ExecTime(s.Node)
			if effEnd(s, req) < start+exec {
				// The slot can never host the task, not even starting at its
				// own beginning; skip it entirely.
				continue
			}
			if req.Deadline > 0 && start+exec > req.Deadline {
				// Windows only start later from here on; with the fastest
				// possible start already past the deadline for this node, the
				// slot is useless — but faster nodes may still fit, so only
				// skip this slot, not the scan.
				continue
			}
			st.Candidates++
			win.add(Candidate{Slot: s, Exec: exec, Cost: exec * s.Node.Price})
			added = true
		}
		if !added {
			continue
		}

		// Advance the window start to the newest slots' start and drop
		// every slot that no longer provides its minimum required length.
		win.expire(func(c Candidate) bool {
			return effEnd(c.Slot, req)-start >= c.Exec
		})
		if win.Len() > st.PeakWindow {
			st.PeakWindow = win.Len()
		}

		if win.Len() >= req.TaskCount {
			st.Visits++
			if visit(start, win) {
				st.EarlyStop = true
				break
			}
		}
	}
	if col != nil {
		col.ScanDone(st)
		// No Arg on the scan span: formatting one would be the only heap
		// allocation on the observed steady-state path (the zero-alloc
		// gate in internal/telemetry pins this), and the per-scan counters
		// already travel in the ScanDone event above.
		col.Span(obs.Span{
			Name:  "scan",
			Cat:   "scan",
			Start: begin,
			Dur:   obs.Now() - begin,
		})
	}
	return nil
}

// effEnd returns the effective end of a slot under the request's deadline:
// a task must finish both within the slot and by the deadline.
func effEnd(s *slots.Slot, req *job.Request) float64 {
	if req.Deadline > 0 && req.Deadline < s.End {
		return req.Deadline
	}
	return s.End
}

// CountSuitable returns the number of slots in the list whose node matches
// the request and which are long enough to ever host one task. It is a
// cheap feasibility diagnostic used by callers before launching searches.
func CountSuitable(list slots.List, req *job.Request) int {
	n := 0
	for _, s := range list {
		if !req.Matches(s.Node) {
			continue
		}
		if effEnd(s, req)-s.Start >= req.ExecTime(s.Node) {
			n++
		}
	}
	return n
}
