package core_test

import (
	"math"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

// catalogue returns every shipped algorithm implementation; the aliasing
// regression runs all of them, because each has its own selection procedure
// and any of them could sneak in a retained cands sub-slice.
func catalogue(seed uint64) []core.Algorithm {
	return []core.Algorithm{
		core.AMP{},
		core.MinCost{},
		core.MinRunTime{},
		core.MinRunTime{Exact: true},
		core.MinFinish{},
		core.MinFinish{Exact: true},
		core.MinProcTime{Seed: seed},
		core.MinProcTimeGreedy{},
		core.MinEnergy{},
	}
}

// TestAlgorithmsCopyWhatTheyKeep proves the VisitFunc contract ("the cands
// slice is reused between calls: copy what you keep") for all six algorithm
// families: each algorithm is run twice on the same instance, once plain and
// once with testkit.PoisonVisit interposed, which hands the selection a
// private candidate copy and poisons it (NaN fields, node -1) the moment
// the visit returns. An implementation that aliases the slice instead of
// copying builds its window from poisoned memory, so the two runs diverge.
func TestAlgorithmsCopyWhatTheyKeep(t *testing.T) {
	defer core.SetVisitWrapForTest(nil)
	for seed := uint64(1); seed <= 30; seed++ {
		rng := randx.New(seed)
		list := testkit.RandomList(rng, 6, 4, 200)
		req := job.Request{
			TaskCount: rng.IntRange(1, 4),
			Volume:    float64(rng.IntRange(40, 120)),
			MaxCost:   float64(rng.IntRange(100, 900)),
		}
		for _, alg := range catalogue(seed) {
			core.SetVisitWrapForTest(nil)
			r1 := req
			cleanW, cleanErr := alg.Find(list, &r1)

			core.SetVisitWrapForTest(testkit.PoisonVisit)
			r2 := req
			poisonW, poisonErr := alg.Find(list, &r2)
			core.SetVisitWrapForTest(nil)

			if (cleanErr == nil) != (poisonErr == nil) {
				t.Fatalf("seed=%d alg=%s: errors diverged under poisoning: %v vs %v",
					seed, alg.Name(), cleanErr, poisonErr)
			}
			cs, ps := testkit.WindowSignature(cleanW), testkit.WindowSignature(poisonW)
			if cs != ps {
				t.Errorf("seed=%d alg=%s: window built from retained candidates\nclean:    %s\npoisoned: %s",
					seed, alg.Name(), cs, ps)
			}
		}
	}
}

// TestPoisonVisitCatchesAliasing is the detector's negative control: a
// deliberately buggy selection that retains the cands slice must produce a
// visibly poisoned window, proving the regression above has teeth.
func TestPoisonVisitCatchesAliasing(t *testing.T) {
	defer core.SetVisitWrapForTest(nil)
	n := testkit.Node(1, 5, 1)
	list := testkit.SlotList(testkit.Slot(n, 0, 100))
	req := job.Request{TaskCount: 1, Volume: 50}

	buggyFind := func() *core.Window {
		var keptStart float64
		var kept []core.Candidate
		_ = core.Scan(list, &req, func(start float64, cands []core.Candidate) bool {
			keptStart, kept = start, cands // BUG: aliases the scan's slice
			return true
		})
		return core.NewWindow(keptStart, kept)
	}

	clean := buggyFind()
	core.SetVisitWrapForTest(testkit.PoisonVisit)
	poisoned := buggyFind()
	core.SetVisitWrapForTest(nil)

	if math.IsNaN(clean.Cost) {
		t.Fatal("clean run already poisoned; detector wiring is broken")
	}
	if !math.IsNaN(poisoned.Cost) && poisoned.Placements[0].Node().ID != -1 {
		t.Fatalf("aliasing selection was not caught: %s", testkit.WindowSignature(poisoned))
	}
}
