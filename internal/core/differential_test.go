package core_test

import (
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

// diffSeeds is the seed count of the differential suite; the acceptance
// criterion demands signature-equal windows for all shipped algorithms
// across at least 60 seeds.
const diffSeeds = 64

// TestDifferentialIncrementalVsOracle is the tentpole's correctness proof:
// every shipped algorithm (running on the incremental WindowIndex kernels)
// must return a window with exactly the signature of its copy+sort oracle
// twin, across diffSeeds random heterogeneous instances — both on clean
// runs and with the aliasing poisoners interposed on both scan paths.
func TestDifferentialIncrementalVsOracle(t *testing.T) {
	for _, tc := range []struct {
		name   string
		poison bool
	}{
		{"clean", false},
		{"poisoned", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer core.SetVisitWrapForTest(nil)
			defer core.SetIndexedVisitWrapForTest(nil)
			if tc.poison {
				core.SetVisitWrapForTest(testkit.PoisonVisit)
				core.SetIndexedVisitWrapForTest(testkit.PoisonIndexedVisit)
			}
			for seed := uint64(1); seed <= diffSeeds; seed++ {
				rng := randx.New(seed)
				list := testkit.HeteroList(rng, 8, 4, 300)
				req := job.Request{
					TaskCount: rng.IntRange(1, 4),
					Volume:    float64(rng.IntRange(40, 150)),
					MaxCost:   float64(rng.IntRange(100, 1200)),
				}
				if rng.Intn(3) == 0 {
					req.Deadline = float64(rng.IntRange(100, 300))
				}
				for _, alg := range catalogue(seed) {
					oracle, ok := core.Oracle(alg)
					if !ok {
						t.Fatalf("no oracle twin for %s", alg.Name())
					}
					r1, r2 := req, req
					incW, incErr := alg.Find(list, &r1)
					orcW, orcErr := oracle.Find(list, &r2)
					if (incErr == nil) != (orcErr == nil) {
						t.Fatalf("seed=%d alg=%s: feasibility diverged: incremental err=%v, oracle err=%v",
							seed, alg.Name(), incErr, orcErr)
					}
					if incErr != nil {
						continue
					}
					is, os := testkit.WindowSignature(incW), testkit.WindowSignature(orcW)
					if is != os {
						t.Errorf("seed=%d alg=%s: incremental and oracle windows diverged\nincremental: %s\noracle:      %s",
							seed, alg.Name(), is, os)
					}
				}
			}
		})
	}
}

// TestAMPTiedStartCoalescing is the regression test of the equal-start scan
// bugfix: two nodes publish slots starting at the same instant, ordered so
// the costlier node's slot precedes the cheaper one in the sorted list
// (SortByStart breaks start ties by node ID). Before the fix the scan
// visited after admitting only the first slot, so AMP — which commits to
// the first feasible window — locked in the costlier node; with equal-start
// slots coalesced into one visit, AMP sees the full candidate set and picks
// the true cheapest sub-window at the earliest feasible start.
func TestAMPTiedStartCoalescing(t *testing.T) {
	costly := testkit.Node(1, 5, 4) // exec = 60/5 = 12, cost = 12*4 = 48
	cheap := testkit.Node(2, 5, 1)  // exec = 12, cost = 12*1 = 12
	list := testkit.SlotList(
		testkit.Slot(costly, 0, 100),
		testkit.Slot(cheap, 0, 100),
	)
	req := job.Request{TaskCount: 1, Volume: 60}

	// Pin the scenario's premise: the slot the scan admits first (node ID
	// tie-break) really is the strictly costlier candidate — the pre-fix
	// AMP window.
	preFixCost := req.ExecTime(costly) * costly.Price
	fixedCost := req.ExecTime(cheap) * cheap.Price
	if preFixCost <= fixedCost {
		t.Fatalf("bad fixture: pre-fix cost %v not strictly above post-fix cost %v", preFixCost, fixedCost)
	}

	w, err := core.AMP{}.Find(list, &req)
	if err != nil {
		t.Fatal(err)
	}
	if w.Start != 0 {
		t.Fatalf("AMP start = %v, want 0 (coalescing must not delay the first visit)", w.Start)
	}
	if got := w.Placements[0].Node().ID; got != cheap.ID {
		t.Fatalf("AMP picked node %d (cost %v) at the tied start, want node %d (cost %v)",
			got, w.Cost, cheap.ID, fixedCost)
	}
	if w.Cost != fixedCost {
		t.Fatalf("AMP window cost = %v, want %v", w.Cost, fixedCost)
	}

	// The oracle twin runs the same coalescing scan; both paths must agree.
	oracle, _ := core.Oracle(core.AMP{})
	ow, err := oracle.Find(list, &req)
	if err != nil {
		t.Fatal(err)
	}
	if testkit.WindowSignature(ow) != testkit.WindowSignature(w) {
		t.Fatalf("oracle twin diverged at tied start:\nincremental: %s\noracle:      %s",
			testkit.WindowSignature(w), testkit.WindowSignature(ow))
	}
}

// TestWindowIndexTiedCostDeterminism pins the index's documented tie-break:
// candidates with equal cost order by execution time, and candidates with
// equal cost and execution time order by node ID — regardless of insertion
// order.
func TestWindowIndexTiedCostDeterminism(t *testing.T) {
	// Six candidates, all cost 24: two exec classes, three nodes each.
	// Perf picked so exec differs (60/5=12 vs 60/10=6) while price keeps
	// cost tied (12*2 = 6*4 = 24).
	mk := func(id int, perf, price float64) core.Candidate {
		n := testkit.Node(id, perf, price)
		exec := 60 / perf
		return core.Candidate{Slot: testkit.Slot(n, 0, 100), Exec: exec, Cost: exec * price}
	}
	cands := []core.Candidate{
		mk(11, 10, 4), mk(12, 10, 4), mk(13, 10, 4), // exec 6
		mk(21, 5, 2), mk(22, 5, 2), mk(23, 5, 2), // exec 12
	}
	wantOrder := []int{11, 12, 13, 21, 22, 23} // exec asc, then node ID

	for seed := uint64(1); seed <= 20; seed++ {
		rng := randx.New(seed)
		shuffled := append([]core.Candidate(nil), cands...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		ix := core.NewWindowIndex(shuffled)
		got := ix.ByCost()
		if len(got) != len(wantOrder) {
			t.Fatalf("seed=%d: index holds %d candidates, want %d", seed, len(got), len(wantOrder))
		}
		for i, want := range wantOrder {
			if got[i].Slot.Node.ID != want {
				t.Fatalf("seed=%d: ByCost[%d] = node %d, want node %d (cost→exec→node-ID tie-break)",
					seed, i, got[i].Slot.Node.ID, want)
			}
		}
	}
}

// TestIndexedAlgorithmsCopyWhatTheyKeep is the aliasing regression for the
// indexed scan path: the shipped algorithms now receive the scan's live
// WindowIndex, so the detector rebuilds a private index per visit and
// poisons its views after the inner visit returns. A kernel that retains a
// live view diverges from the clean run.
func TestIndexedAlgorithmsCopyWhatTheyKeep(t *testing.T) {
	defer core.SetIndexedVisitWrapForTest(nil)
	for seed := uint64(1); seed <= 30; seed++ {
		rng := randx.New(seed)
		list := testkit.RandomList(rng, 6, 4, 200)
		req := job.Request{
			TaskCount: rng.IntRange(1, 4),
			Volume:    float64(rng.IntRange(40, 120)),
			MaxCost:   float64(rng.IntRange(100, 900)),
		}
		for _, alg := range catalogue(seed) {
			core.SetIndexedVisitWrapForTest(nil)
			r1 := req
			cleanW, cleanErr := alg.Find(list, &r1)

			core.SetIndexedVisitWrapForTest(testkit.PoisonIndexedVisit)
			r2 := req
			poisonW, poisonErr := alg.Find(list, &r2)
			core.SetIndexedVisitWrapForTest(nil)

			if (cleanErr == nil) != (poisonErr == nil) {
				t.Fatalf("seed=%d alg=%s: errors diverged under poisoning: %v vs %v",
					seed, alg.Name(), cleanErr, poisonErr)
			}
			cs, ps := testkit.WindowSignature(cleanW), testkit.WindowSignature(poisonW)
			if cs != ps {
				t.Errorf("seed=%d alg=%s: window built from retained index views\nclean:    %s\npoisoned: %s",
					seed, alg.Name(), cs, ps)
			}
		}
	}
}
