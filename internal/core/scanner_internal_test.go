package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// This file is the dirty-pool adversarial suite: it poisons every piece of
// recycled Scanner state a previous (buggy or malicious) user could have
// left behind and asserts that searches on the recycled scanner are
// bit-identical to searches on a fresh one. It lives in package core —
// not core_test — because poisoning private fields is the point; it
// cannot use testkit (import cycle), so it carries small local twins of
// the list generator and the window signature.

// scannerCatalogue mirrors the shipped algorithm catalogue.
func scannerCatalogue(seed uint64) []Algorithm {
	return []Algorithm{
		AMP{},
		MinCost{},
		MinRunTime{},
		MinRunTime{Exact: true},
		MinRunTime{LiteralBudget: true},
		MinFinish{},
		MinFinish{Exact: true},
		MinFinish{EarlyStop: true},
		MinProcTime{Seed: seed},
		MinProcTimeGreedy{},
		MinEnergy{},
	}
}

// randomScanList is testkit.RandomList's local twin (same shape, private
// stream) — heterogeneous nodes, a few disjoint slots per node, sorted.
func randomScanList(rng *randx.Rand, nodeCount, maxSlotsPerNode int, horizon float64) slots.List {
	var l slots.List
	for id := 0; id < nodeCount; id++ {
		n := &nodes.Node{
			ID: id, Perf: float64(rng.IntRange(2, 10)), Price: 0.3 + 3*rng.Float64(),
			RAMMB: 4096, DiskGB: 100, OS: nodes.Linux, Arch: nodes.AMD64,
		}
		cursor := 0.0
		k := rng.Intn(maxSlotsPerNode + 1)
		for s := 0; s < k && cursor < horizon-1; s++ {
			start := cursor + rng.FloatRange(0, horizon/4)
			end := start + rng.FloatRange(1, horizon/2)
			if end > horizon {
				end = horizon
			}
			if end-start >= 1 {
				l = append(l, &slots.Slot{Node: n, Interval: slots.Interval{Start: start, End: end}})
			}
			cursor = end + 0.5
		}
	}
	l.SortByStart()
	return l
}

// sigWindow is testkit.WindowSignature's local twin: exact %x rendering of
// every field, so equality is bit-identity.
func sigWindow(w *Window) string {
	if w == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "start=%x runtime=%x cost=%x proc=%x n=%d", w.Start, w.Runtime, w.Cost, w.ProcTime, len(w.Placements))
	for _, p := range w.Placements {
		fmt.Fprintf(&b, " [node=%d slot=%x..%x start=%x exec=%x cost=%x]",
			p.Node().ID, p.Slot.Start, p.Slot.End, p.Start, p.Exec, p.Cost)
	}
	return b.String()
}

// poisonScanner scribbles adversarial garbage over every recycled buffer
// and state field a scanner owns: NaN candidates in all index mirrors and
// scratch, a stale visitor mid-search, poisoned result windows, a dirty
// CSA working copy with a fully handed-out arena, and a mis-seeded RNG.
func poisonScanner(sc *Scanner) {
	nan := math.NaN()
	pn := &nodes.Node{ID: -1, Perf: nan, Price: nan}
	badSlot := func() *slots.Slot {
		return &slots.Slot{Node: pn, Interval: slots.Interval{Start: nan, End: nan}}
	}
	bad := Candidate{Slot: badSlot(), Exec: nan, Cost: nan}
	for i := 0; i < 8; i++ {
		sc.win.cands = append(sc.win.cands, bad)
		sc.win.byCost = append(sc.win.byCost, bad)
		sc.win.byExec = append(sc.win.byExec, bad)
		sc.win.prefix = append(sc.win.prefix, nan)
		sc.win.scratch = append(sc.win.scratch, bad)
		sc.sample = append(sc.sample, -7)
		sc.chosen = append(sc.chosen, bad)
		sc.work = append(sc.work, badSlot())
		sc.arena = append(sc.arena, badSlot())
	}
	sc.win.trackExec = true
	sc.win.mirror = true
	sc.slotUsed = len(sc.arena)
	poisonedWin := Window{Start: nan, Runtime: nan, Cost: nan, ProcTime: nan,
		Placements: []Placement{{Slot: badSlot(), Start: nan, Exec: nan, Cost: nan}}}
	sc.winA = poisonedWin
	sc.winB = Window{Start: nan, Runtime: nan, Cost: nan, ProcTime: nan,
		Placements: append([]Placement(nil), poisonedWin.Placements...)}
	sc.vis.kind = vkMinEnergy
	sc.vis.req = &job.Request{TaskCount: -3, Volume: nan}
	sc.vis.exact, sc.vis.literalBudget, sc.vis.earlyStop = true, true, true
	sc.vis.weight = func(Candidate) float64 { return nan }
	sc.vis.best = &poisonedWin
	sc.vis.spare = &poisonedWin
	sc.vis.hasBest = true
	sc.vis.bestVal = nan
	if sc.rng == nil {
		sc.rng = randx.New(0xdeadbeef)
	} else {
		sc.rng.Seed(0xdeadbeef)
	}
}

func scanRequest(rng *randx.Rand) job.Request {
	return job.Request{
		TaskCount: rng.IntRange(1, 4),
		Volume:    float64(rng.IntRange(40, 120)),
		MaxCost:   float64(rng.IntRange(100, 900)),
	}
}

// TestScannerDirtyReset proves that Reset fully neutralizes poisoned
// state: a freshly constructed scanner and a poisoned-then-Reset scanner
// (Reset is exactly what ReleaseScanner applies on the way into the pool)
// return bit-identical windows for every algorithm over many instances.
func TestScannerDirtyReset(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := randx.New(seed)
		list := randomScanList(rng, 6, 4, 200)
		req := scanRequest(rng)
		for _, alg := range scannerCatalogue(seed) {
			fresh := NewScanner()
			r1 := req
			wantW, wantErr := fresh.FindObserved(alg, list, &r1, nil)
			want := sigWindow(wantW)

			dirty := NewScanner()
			poisonScanner(dirty)
			dirty.Reset()
			r2 := req
			gotW, gotErr := dirty.FindObserved(alg, list, &r2, nil)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed=%d alg=%s: errors diverged: fresh=%v dirty=%v", seed, alg.Name(), wantErr, gotErr)
			}
			if got := sigWindow(gotW); got != want {
				t.Errorf("seed=%d alg=%s: dirty-reset scanner diverged\nfresh: %s\ndirty: %s", seed, alg.Name(), want, got)
			}
		}
	}
}

// TestScannerPoisonedPool floods the package pool with poisoned released
// scanners and asserts the public pooled Find path still returns the same
// windows as fresh explicit scanners: whatever a previous pool user left
// behind must not leak into the next search.
func TestScannerPoisonedPool(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := randx.New(seed)
		list := randomScanList(rng, 6, 4, 200)
		req := scanRequest(rng)
		for _, alg := range scannerCatalogue(seed) {
			fresh := NewScanner()
			r1 := req
			wantW, wantErr := fresh.FindObserved(alg, list, &r1, nil)
			want := sigWindow(wantW)

			// Poison a batch of scanners and release them all, so the
			// subsequent Find very likely draws a poisoned pool entry.
			for i := 0; i < 4; i++ {
				sc := AcquireScanner()
				poisonScanner(sc)
				ReleaseScanner(sc)
			}
			r2 := req
			gotW, gotErr := alg.Find(list, &r2)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed=%d alg=%s: errors diverged: fresh=%v pooled=%v", seed, alg.Name(), wantErr, gotErr)
			}
			if got := sigWindow(gotW); got != want {
				t.Errorf("seed=%d alg=%s: poisoned pool leaked into result\nfresh:  %s\npooled: %s", seed, alg.Name(), want, got)
			}
		}
	}
}

// TestScannerSequentialReuse runs one scanner across the whole catalogue
// and many instances back to back — no Reset between searches — and
// checks every result against a fresh scanner's: per-search
// reinitialization inside FindObserved must not depend on which algorithm
// (or which instance) ran before.
func TestScannerSequentialReuse(t *testing.T) {
	shared := NewScanner()
	for seed := uint64(1); seed <= 40; seed++ {
		rng := randx.New(seed)
		list := randomScanList(rng, 6, 4, 200)
		req := scanRequest(rng)
		for _, alg := range scannerCatalogue(seed) {
			fresh := NewScanner()
			r1 := req
			wantW, wantErr := fresh.FindObserved(alg, list, &r1, nil)
			want := sigWindow(wantW)

			r2 := req
			gotW, gotErr := shared.FindObserved(alg, list, &r2, nil)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed=%d alg=%s: errors diverged: fresh=%v shared=%v", seed, alg.Name(), wantErr, gotErr)
			}
			// Signature must be taken before the next search recycles the
			// shared scanner's result window.
			if got := sigWindow(gotW); got != want {
				t.Errorf("seed=%d alg=%s: reused scanner diverged\nfresh:  %s\nshared: %s", seed, alg.Name(), want, got)
			}
		}
	}
}

// TestScannerResultDetach pins the ownership contract: a scanner-owned
// result is invalidated by the next search, and Detach makes it safe to
// keep. The detached copy must be deep enough to survive scanner reuse.
func TestScannerResultDetach(t *testing.T) {
	rng := randx.New(7)
	list := randomScanList(rng, 6, 4, 200)
	req := job.Request{TaskCount: 1, Volume: 60} // no budget: always feasible on a non-empty list
	sc := NewScanner()
	r1 := req
	w, err := sc.FindObserved(MinCost{}, list, &r1, nil)
	if err != nil {
		t.Fatalf("MinCost find: %v", err)
	}
	kept := w.Detach()
	want := sigWindow(kept)
	for i := 0; i < 5; i++ {
		r := req
		r.TaskCount = 1 + i%3
		_, _ = sc.FindObserved(MinFinish{}, list, &r, nil)
	}
	if got := sigWindow(kept); got != want {
		t.Errorf("detached window mutated by scanner reuse\nbefore: %s\nafter:  %s", want, got)
	}
}
