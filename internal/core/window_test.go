package core

import (
	"strings"
	"testing"

	"slotsel/internal/job"
)

func buildTestWindow() (*Window, job.Request) {
	n1 := testNode(1, 5, 2) // exec 30, cost 60
	n2 := testNode(2, 3, 1) // exec 50, cost 50
	s1 := slot(n1, 0, 100)
	s2 := slot(n2, 0, 100)
	req := job.Request{TaskCount: 2, Volume: 150, MaxCost: 200}
	cands := []Candidate{
		{Slot: s1, Exec: 30, Cost: 60},
		{Slot: s2, Exec: 50, Cost: 50},
	}
	return NewWindow(10, cands), req
}

func TestNewWindowAggregates(t *testing.T) {
	w, _ := buildTestWindow()
	if w.Start != 10 {
		t.Errorf("start %g", w.Start)
	}
	if w.Runtime != 50 {
		t.Errorf("runtime %g, want 50", w.Runtime)
	}
	if w.Finish() != 60 {
		t.Errorf("finish %g, want 60", w.Finish())
	}
	if w.Cost != 110 {
		t.Errorf("cost %g, want 110", w.Cost)
	}
	if w.ProcTime != 80 {
		t.Errorf("proc time %g, want 80", w.ProcTime)
	}
	if w.Size() != 2 {
		t.Errorf("size %d", w.Size())
	}
}

func TestWindowValidateAccepts(t *testing.T) {
	w, req := buildTestWindow()
	if err := w.Validate(&req); err != nil {
		t.Fatal(err)
	}
}

func TestWindowValidateRejects(t *testing.T) {
	t.Run("wrong task count", func(t *testing.T) {
		w, req := buildTestWindow()
		req.TaskCount = 3
		if err := w.Validate(&req); err == nil {
			t.Error("accepted wrong task count")
		}
	})
	t.Run("duplicate node", func(t *testing.T) {
		w, req := buildTestWindow()
		w.Placements[1] = w.Placements[0]
		if err := w.Validate(&req); err == nil {
			t.Error("accepted duplicate node")
		}
	})
	t.Run("budget violation", func(t *testing.T) {
		w, req := buildTestWindow()
		req.MaxCost = 100
		if err := w.Validate(&req); err == nil {
			t.Error("accepted budget violation")
		}
	})
	t.Run("deadline violation", func(t *testing.T) {
		w, req := buildTestWindow()
		req.Deadline = 55
		if err := w.Validate(&req); err == nil {
			t.Error("accepted deadline violation")
		}
	})
	t.Run("requirement mismatch", func(t *testing.T) {
		w, req := buildTestWindow()
		req.MinPerf = 4 // node 2 has perf 3
		if err := w.Validate(&req); err == nil {
			t.Error("accepted non-matching node")
		}
	})
	t.Run("placement outside slot", func(t *testing.T) {
		w, req := buildTestWindow()
		w.Placements[0].Slot.End = 35 // task runs [10,40)
		if err := w.Validate(&req); err == nil {
			t.Error("accepted overhanging placement")
		}
	})
	t.Run("desynchronized start", func(t *testing.T) {
		w, req := buildTestWindow()
		w.Placements[0].Start = 12
		if err := w.Validate(&req); err == nil {
			t.Error("accepted desynchronized placement")
		}
	})
	t.Run("wrong exec", func(t *testing.T) {
		w, req := buildTestWindow()
		w.Placements[0].Exec = 31
		if err := w.Validate(&req); err == nil {
			t.Error("accepted wrong exec time")
		}
	})
}

func TestUsedIntervals(t *testing.T) {
	w, _ := buildTestWindow()
	used := w.UsedIntervals()
	if len(used) != 2 {
		t.Fatalf("%d used nodes", len(used))
	}
	for _, p := range w.Placements {
		ivs, ok := used[p.Node().ID]
		if !ok || len(ivs) != 1 {
			t.Fatalf("node %d missing from UsedIntervals: %v", p.Node().ID, used)
		}
		if ivs[0].Start != w.Start || ivs[0].End != w.Start+p.Exec {
			t.Errorf("used interval %v, want [%g,%g)", ivs[0], w.Start, w.Start+p.Exec)
		}
	}
}

func TestSortPlacementsByNode(t *testing.T) {
	w, _ := buildTestWindow()
	w.Placements[0], w.Placements[1] = w.Placements[1], w.Placements[0]
	w.SortPlacementsByNode()
	if w.Placements[0].Node().ID != 1 || w.Placements[1].Node().ID != 2 {
		t.Errorf("placements not sorted by node: %v", w.Placements)
	}
}

func TestWindowString(t *testing.T) {
	w, _ := buildTestWindow()
	s := w.String()
	if !strings.Contains(s, "start=10.00") || !strings.Contains(s, "n=2") {
		t.Errorf("String() = %q", s)
	}
}

func TestPlacementAccessors(t *testing.T) {
	w, _ := buildTestWindow()
	p := w.Placements[0]
	if p.Node().ID != 1 {
		t.Errorf("Node() = %v", p.Node())
	}
	if p.Finish() != 40 {
		t.Errorf("Finish() = %g, want 40", p.Finish())
	}
	if u := p.Used(); u.Start != 10 || u.End != 40 {
		t.Errorf("Used() = %v", u)
	}
}
