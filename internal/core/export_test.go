package core

// SetVisitWrapForTest installs (or, with nil, removes) the scan's visit
// wrapper — the seam the aliasing regression tests use to interpose
// testkit.PoisonVisit between Scan and the algorithms' selection
// procedures. Tests must restore the previous wrapper when done and must
// not run in parallel with other tests while a wrapper is installed.
func SetVisitWrapForTest(w func(VisitFunc) VisitFunc) { visitWrap = w }

// SetIndexedVisitWrapForTest is SetVisitWrapForTest's twin for the indexed
// scan path, interposing testkit.PoisonIndexedVisit between ScanIndexed and
// the incremental selection kernels. Same discipline: restore when done, no
// parallel tests while installed.
func SetIndexedVisitWrapForTest(w func(IndexedVisitFunc) IndexedVisitFunc) { indexWrap = w }
