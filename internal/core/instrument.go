package core

import (
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// ObservedFinder is implemented by algorithms whose search can thread an
// obs.Collector down into the scan layer, so scan-level counters (slots
// examined, window sizes, visits) are attributed to the search. Every
// algorithm shipped by this package implements it; third-party Algorithm
// implementations fall back to select-level instrumentation only (see
// FindObserved).
type ObservedFinder interface {
	Algorithm

	// FindObserved is Find with scan-level instrumentation delivered to
	// col. col == nil must behave exactly like Find.
	FindObserved(list slots.List, req *job.Request, col obs.Collector) (*Window, error)
}

// FindObserved runs one algorithm search with full instrumentation: a
// SelectDone event and a "select" span are emitted for the search itself,
// and — when the algorithm implements ObservedFinder — the collector is
// threaded into the scan for per-scan counters. col == nil runs the plain
// search with zero added work.
func FindObserved(alg Algorithm, list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	if col == nil {
		return alg.Find(list, req)
	}
	begin := obs.Now()
	var w *Window
	var err error
	if of, ok := alg.(ObservedFinder); ok {
		w, err = of.FindObserved(list, req, col)
	} else {
		w, err = alg.Find(list, req)
	}
	elapsed := obs.Now() - begin
	col.SelectDone(obs.SelectStats{Alg: alg.Name(), Found: w != nil, Elapsed: elapsed})
	col.Span(obs.Span{Name: alg.Name(), Cat: "select", Start: begin, Dur: elapsed})
	return w, err
}

// FindObservedScanner is FindObserved on a caller-provided Scanner: the
// same SelectDone/span emission, but the search runs on sc's recycled
// state, so a long-lived caller (a parallel worker, the inventory's
// retry loop) amortizes all search allocations to zero. The returned
// window is scanner-owned — valid until sc's next search — and must be
// Detached if kept.
func FindObservedScanner(sc *Scanner, alg Algorithm, list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	if col == nil {
		return sc.FindObserved(alg, list, req, nil)
	}
	begin := obs.Now()
	w, err := sc.FindObserved(alg, list, req, col)
	elapsed := obs.Now() - begin
	col.SelectDone(obs.SelectStats{Alg: alg.Name(), Found: w != nil, Elapsed: elapsed})
	col.Span(obs.Span{Name: alg.Name(), Cat: "select", Start: begin, Dur: elapsed})
	return w, err
}

// Instrument wraps alg so that every Find reports to col, for call sites
// that accept a plain Algorithm and cannot thread a collector explicitly
// (e.g. batchsched.ScheduleDirected). Instrument(alg, nil) returns alg
// unchanged, preserving the nil-means-off convention.
func Instrument(alg Algorithm, col obs.Collector) Algorithm {
	if col == nil {
		return alg
	}
	return instrumented{alg: alg, col: col}
}

type instrumented struct {
	alg Algorithm
	col obs.Collector
}

// Name implements Algorithm.
func (ia instrumented) Name() string { return ia.alg.Name() }

// Find implements Algorithm.
func (ia instrumented) Find(list slots.List, req *job.Request) (*Window, error) {
	return FindObserved(ia.alg, list, req, ia.col)
}
