package core_test

import (
	"errors"
	"testing"
	"testing/quick"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/slots"
	"slotsel/internal/testkit"
)

// cutList removes a window's reserved spans from a slot list (the CSA cut).
func cutList(l slots.List, w *core.Window) slots.List {
	return slots.Cut(l, w.UsedIntervals(), 10)
}

// TestAlgorithmDominanceProperty checks, over randomly generated
// environments and request shapes, the defining dominance of each exact
// optimizer on its own criterion: no other algorithm's window may beat
//
//   - AMP on start time,
//   - MinCost on total cost,
//   - core.MinRunTime{Exact} on runtime,
//   - core.MinFinish{Exact} on finish time.
func TestAlgorithmDominanceProperty(t *testing.T) {
	check := func(seed uint64, nodesRaw, tasksRaw, budgetRaw uint8) bool {
		nodeCount := int(nodesRaw%20) + 4
		taskCount := int(tasksRaw%4) + 1
		e := testkit.SmallEnv(seed, nodeCount, 300)
		req := job.Request{
			TaskCount: taskCount,
			Volume:    60,
			MaxCost:   float64(budgetRaw%200)*2 + float64(taskCount)*40,
		}

		amp, errAMP := (core.AMP{}).Find(e.Slots, &req)
		minCost, errCost := (core.MinCost{}).Find(e.Slots, &req)
		minRun, errRun := (core.MinRunTime{Exact: true}).Find(e.Slots, &req)
		minFin, errFin := (core.MinFinish{Exact: true}).Find(e.Slots, &req)

		found := 0
		for _, err := range []error{errAMP, errCost, errRun, errFin} {
			switch {
			case err == nil:
				found++
			case !errors.Is(err, core.ErrNoWindow):
				return false
			}
		}
		if found == 0 {
			return true
		}
		if found != 4 {
			return false // exact optimizers must agree on feasibility
		}
		for _, w := range []*core.Window{amp, minCost, minRun, minFin} {
			if w.Validate(&req) != nil {
				return false
			}
		}
		const eps = 1e-9
		others := []*core.Window{amp, minCost, minRun, minFin}
		for _, w := range others {
			if w.Start < amp.Start-eps {
				return false
			}
			if w.Cost < minCost.Cost-eps {
				return false
			}
			if w.Runtime < minRun.Runtime-eps {
				return false
			}
			if w.Finish() < minFin.Finish()-eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCSADominanceProperty checks that CSA's criterion-selected alternative
// never beats the dedicated exact optimizer: CSA optimizes over the subset
// of disjoint AMP windows, the optimizer over the full space.
func TestCSADominanceProperty(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		e := testkit.SmallEnv(seed, 15, 300)
		req := testkit.SmallRequest(3, 300)
		minCost, err := (core.MinCost{}).Find(e.Slots, &req)
		if errors.Is(err, core.ErrNoWindow) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		minRun, err := (core.MinRunTime{Exact: true}).Find(e.Slots, &req)
		if err != nil {
			t.Fatal(err)
		}
		// Emulate CSA via repeated AMP + cutting, as csa.Search does (the
		// csa package cannot be imported from core's tests without a
		// dependency inversion, and the loop is three lines).
		work := e.Slots.Clone()
		var bestCost, bestRun float64
		first := true
		for {
			w, err := (core.AMP{}).Find(work, &req)
			if errors.Is(err, core.ErrNoWindow) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if first || w.Cost < bestCost {
				bestCost = w.Cost
			}
			if first || w.Runtime < bestRun {
				bestRun = w.Runtime
			}
			first = false
			work = cutList(work, w)
		}
		if first {
			t.Fatalf("seed %d: AMP feasible but CSA emulation found nothing", seed)
		}
		if bestCost < minCost.Cost-1e-9 {
			t.Fatalf("seed %d: CSA cost %g beats exact MinCost %g", seed, bestCost, minCost.Cost)
		}
		if bestRun < minRun.Runtime-1e-9 {
			t.Fatalf("seed %d: CSA runtime %g beats exact MinRunTime %g", seed, bestRun, minRun.Runtime)
		}
	}
}
