package core

import (
	"sort"

	"slotsel/internal/randx"
)

// WindowIndex is the incrementally maintained candidate index of one AEP
// scan: alongside the append-order window it keeps a cost-ordered mirror
// (the (Cost, Exec, NodeID) total order of cheapestN) with running
// prefix-cost sums, so the per-visit selection procedures read sorted
// candidates instead of copying and re-sorting the window at every scan
// position. The window changes by a handful of insertions and expiries per
// step, so maintenance is amortized O(w) per step (one binary search plus
// one memmove per insertion, one in-place compaction per expiry round)
// where the oracle kernels pay O(w log w) per visit.
//
// A second, execution-time-ordered mirror backs the exact runtime kernel;
// it is activated lazily on the first SelectMinRuntimeExact call of a scan
// so algorithms that never ask for it pay nothing.
//
// Lifetime: a WindowIndex handed to an IndexedVisitFunc is owned by the
// scan and reused between visits; the slices returned by Cands, ByCost and
// ByExec are live views under the same copy-what-you-keep contract as the
// plain VisitFunc candidate slice. Every Select* method returns a freshly
// allocated chosen slice.
type WindowIndex struct {
	// cands is the window in scan append order (non-decreasing slot start).
	cands []Candidate

	// byCost mirrors cands in the (Cost, Exec, NodeID) order.
	byCost []Candidate

	// prefix holds running cost sums over byCost: prefix[i] is the total
	// cost of the i cheapest candidates (prefix[0] = 0), always accumulated
	// left to right so it is bit-identical to summing byCost[:i] directly.
	prefix []float64

	// byExec mirrors cands in the (Exec, Cost, NodeID) order; empty until
	// the exact runtime kernel activates tracking.
	byExec    []Candidate
	trackExec bool

	// mirror enables cost-mirror and prefix-sum maintenance. The indexed
	// scan path sets it; the plain VisitFunc path leaves it off so callers
	// that only ever see the raw candidate slice do not pay for an index
	// they cannot reach.
	mirror bool

	// scratch is the reusable chosen-slice buffer of the unexported
	// select*Scratch kernels: one buffer, recycled across visits, consumed
	// by the caller before the next selection. The exported Select* methods
	// keep their fresh-slice contract by copying out of it.
	scratch []Candidate
}

// NewWindowIndex builds an index over a snapshot of the given candidates
// (the slice is copied). It is the entry point for tests and tools that
// want the incremental kernels outside a scan; inside a scan the index is
// maintained incrementally and this constructor is never on the hot path.
func NewWindowIndex(cands []Candidate) *WindowIndex {
	ix := &WindowIndex{mirror: true}
	for _, c := range cands {
		ix.add(c)
	}
	return ix
}

// costLess is the cheapestN total order: cost, then execution time, then
// node ID. Node IDs are unique within a scan window (per node, free slots
// are disjoint and every retained slot contains the current start), so the
// order is total and the mirror is deterministic.
func costLess(a, b Candidate) bool {
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	if a.Exec != b.Exec {
		return a.Exec < b.Exec
	}
	return a.Slot.Node.ID < b.Slot.Node.ID
}

// execLess is the exact runtime kernel's total order: execution time, then
// cost, then node ID.
func execLess(a, b Candidate) bool {
	if a.Exec != b.Exec {
		return a.Exec < b.Exec
	}
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return a.Slot.Node.ID < b.Slot.Node.ID
}

// Len returns the current window size.
func (ix *WindowIndex) Len() int { return len(ix.cands) }

// Cands returns the window in scan append order. The slice is live scan
// state: copy what you keep.
func (ix *WindowIndex) Cands() []Candidate { return ix.cands }

// ByCost returns the cost-ordered mirror. The slice is live scan state:
// copy what you keep.
func (ix *WindowIndex) ByCost() []Candidate { return ix.byCost }

// ByExec returns the execution-time-ordered mirror; it is empty unless the
// exact runtime kernel has run on this index. The slice is live scan
// state: copy what you keep.
func (ix *WindowIndex) ByExec() []Candidate { return ix.byExec }

// PrefixCost returns the total cost of the n cheapest candidates, an O(1)
// read of the running prefix sums. n must be within [0, Len()].
func (ix *WindowIndex) PrefixCost(n int) float64 {
	if n == 0 {
		return 0
	}
	return ix.prefix[n]
}

// add inserts a candidate: append-order window, binary-search insertion
// into the cost mirror (and the exec mirror when tracked), prefix sums
// recomputed from the insertion point.
func (ix *WindowIndex) add(c Candidate) {
	ix.cands = append(ix.cands, c)
	if !ix.mirror {
		return
	}

	pos := sort.Search(len(ix.byCost), func(i int) bool { return costLess(c, ix.byCost[i]) })
	ix.byCost = append(ix.byCost, Candidate{})
	copy(ix.byCost[pos+1:], ix.byCost[pos:])
	ix.byCost[pos] = c

	if len(ix.prefix) == 0 {
		ix.prefix = append(ix.prefix, 0)
	}
	ix.prefix = append(ix.prefix, 0)
	for i := pos; i < len(ix.byCost); i++ {
		ix.prefix[i+1] = ix.prefix[i] + ix.byCost[i].Cost
	}

	if ix.trackExec {
		pos := sort.Search(len(ix.byExec), func(i int) bool { return execLess(c, ix.byExec[i]) })
		ix.byExec = append(ix.byExec, Candidate{})
		copy(ix.byExec[pos+1:], ix.byExec[pos:])
		ix.byExec[pos] = c
	}
}

// expire drops every candidate for which keep is false, compacting all
// mirrors in place (order preserved) and recomputing prefix sums from the
// first removal.
func (ix *WindowIndex) expire(keep func(Candidate) bool) {
	kept := ix.cands[:0]
	for _, c := range ix.cands {
		if keep(c) {
			kept = append(kept, c)
		}
	}
	if len(kept) == len(ix.cands) {
		return // nothing expired; mirrors are untouched
	}
	ix.cands = kept
	if !ix.mirror {
		return
	}

	out := ix.byCost[:0]
	first := -1
	for i, c := range ix.byCost {
		if keep(c) {
			out = append(out, c)
		} else if first < 0 {
			first = i
		}
	}
	ix.byCost = out
	ix.prefix = ix.prefix[:len(out)+1]
	for i := first; i < len(out); i++ {
		ix.prefix[i+1] = ix.prefix[i] + out[i].Cost
	}

	if ix.trackExec {
		outE := ix.byExec[:0]
		for _, c := range ix.byExec {
			if keep(c) {
				outE = append(outE, c)
			}
		}
		ix.byExec = outE
	}
}

// reset empties the index, retaining capacity, for reuse across scans.
func (ix *WindowIndex) reset() {
	ix.cands = ix.cands[:0]
	ix.byCost = ix.byCost[:0]
	ix.prefix = ix.prefix[:0]
	ix.byExec = ix.byExec[:0]
	ix.trackExec = false
	ix.scratch = ix.scratch[:0]
}

// activateExec lazily builds the exec-ordered mirror; from then on add and
// expire maintain it incrementally. The one-shot build is a binary
// insertion sort rather than sort.Slice: execLess is a strict total order,
// so the result is identical, and the insertion sort works in place
// without sort.Slice's reflection allocation.
func (ix *WindowIndex) activateExec() {
	if ix.trackExec {
		return
	}
	ix.trackExec = true
	s := append(ix.byExec[:0], ix.cands...)
	for i := 1; i < len(s); i++ {
		c := s[i]
		pos := sort.Search(i, func(j int) bool { return execLess(c, s[j]) })
		copy(s[pos+1:i+1], s[pos:i])
		s[pos] = c
	}
	ix.byExec = s
}

// CheapestN returns a fresh copy of the n cheapest candidates, in the
// cheapestN oracle order.
func (ix *WindowIndex) CheapestN(n int) []Candidate {
	return append([]Candidate(nil), ix.byCost[:n]...)
}

// SelectMinCost is the incremental twin of the selectMinCost oracle: the n
// cheapest candidates are a prefix of the cost mirror and their total is a
// prefix-sum read, so the per-visit work is O(n) (the copy) instead of
// O(w log w).
func (ix *WindowIndex) SelectMinCost(n int, budget float64) (chosen []Candidate, cost float64, ok bool) {
	s, cost, ok := ix.selectMinCostScratch(n, budget)
	if !ok {
		return nil, 0, false
	}
	return append([]Candidate(nil), s...), cost, true
}

// selectMinCostScratch is SelectMinCost into the index's scratch buffer:
// same selection, no allocation. The returned slice is the scratch — valid
// only until the next select on this index.
func (ix *WindowIndex) selectMinCostScratch(n int, budget float64) (chosen []Candidate, cost float64, ok bool) {
	if len(ix.byCost) < n {
		return nil, 0, false
	}
	cost = ix.PrefixCost(n)
	if budget > 0 && cost > budget {
		return nil, 0, false
	}
	s := append(ix.scratch[:0], ix.byCost[:n]...)
	ix.scratch = s
	return s, cost, true
}

// SelectMinRuntimeGreedy is the incremental twin of selectMinRuntimeGreedy:
// the initial window is the cost mirror's prefix (its cost a prefix-sum
// read) and the extend slots are the mirror's tail, already in
// non-decreasing cost order — no per-visit sort. The substitution loop is
// unchanged, so the output is candidate-for-candidate identical to the
// oracle's.
func (ix *WindowIndex) SelectMinRuntimeGreedy(n int, budget float64, literalBudget bool) (chosen []Candidate, runtime float64, ok bool) {
	s, runtime, ok := ix.selectMinRuntimeGreedyScratch(n, budget, literalBudget)
	if !ok {
		return nil, 0, false
	}
	return append([]Candidate(nil), s...), runtime, true
}

// selectMinRuntimeGreedyScratch is SelectMinRuntimeGreedy into the index's
// scratch buffer; the returned slice is valid until the next select.
func (ix *WindowIndex) selectMinRuntimeGreedyScratch(n int, budget float64, literalBudget bool) (chosen []Candidate, runtime float64, ok bool) {
	if len(ix.byCost) < n {
		return nil, 0, false
	}
	cost := ix.PrefixCost(n)
	if budget > 0 && cost > budget {
		return nil, 0, false
	}
	result := append(ix.scratch[:0], ix.byCost[:n]...)
	ix.scratch = result
	for _, short := range ix.byCost[n:] {
		longIdx := maxExecIndex(result)
		long := result[longIdx]
		if short.Exec >= long.Exec {
			continue
		}
		feasible := true
		if budget > 0 {
			if literalBudget {
				feasible = cost+short.Cost <= budget
			} else {
				feasible = cost-long.Cost+short.Cost <= budget
			}
		}
		if feasible {
			cost += short.Cost - long.Cost
			result[longIdx] = short
		}
	}
	return result, maxExec(result), true
}

// SelectMinAdditiveGreedy is the incremental twin of
// selectMinAdditiveGreedy for an arbitrary additive per-slot weight.
func (ix *WindowIndex) SelectMinAdditiveGreedy(n int, budget float64, weight func(Candidate) float64) (chosen []Candidate, total float64, ok bool) {
	s, total, ok := ix.selectMinAdditiveGreedyScratch(n, budget, weight)
	if !ok {
		return nil, 0, false
	}
	return append([]Candidate(nil), s...), total, true
}

// selectMinAdditiveGreedyScratch is SelectMinAdditiveGreedy into the
// index's scratch buffer; the returned slice is valid until the next
// select.
func (ix *WindowIndex) selectMinAdditiveGreedyScratch(n int, budget float64, weight func(Candidate) float64) (chosen []Candidate, total float64, ok bool) {
	if len(ix.byCost) < n {
		return nil, 0, false
	}
	cost := ix.PrefixCost(n)
	if budget > 0 && cost > budget {
		return nil, 0, false
	}
	result := append(ix.scratch[:0], ix.byCost[:n]...)
	ix.scratch = result
	for _, short := range ix.byCost[n:] {
		heavyIdx := 0
		for i := range result {
			if weight(result[i]) > weight(result[heavyIdx]) {
				heavyIdx = i
			}
		}
		heavy := result[heavyIdx]
		if weight(short) >= weight(heavy) {
			continue
		}
		if budget > 0 && cost-heavy.Cost+short.Cost > budget {
			continue
		}
		cost += short.Cost - heavy.Cost
		result[heavyIdx] = short
	}
	total = 0
	for _, c := range result {
		total += weight(c)
	}
	return result, total, true
}

// SelectMinRuntimeExact is the incremental entry path of the exact
// minimum-runtime oracle: the exec-ordered prefix walk and cost heap are
// unchanged, but the exec ordering comes from the incrementally maintained
// mirror instead of a per-visit sort. The first call of a scan sorts the
// current window once to activate the mirror; later visits reuse it.
func (ix *WindowIndex) SelectMinRuntimeExact(n int, budget float64) (chosen []Candidate, runtime float64, ok bool) {
	s, runtime, ok := ix.selectMinRuntimeExactScratch(n, budget)
	if !ok {
		return nil, 0, false
	}
	return append([]Candidate(nil), s...), runtime, true
}

// selectMinRuntimeExactScratch is SelectMinRuntimeExact with the cost heap
// living in the index's scratch buffer; the returned slice is valid until
// the next select.
func (ix *WindowIndex) selectMinRuntimeExactScratch(n int, budget float64) (chosen []Candidate, runtime float64, ok bool) {
	if len(ix.cands) < n {
		return nil, 0, false
	}
	ix.activateExec()
	heap := ix.scratch[:0]
	sum := 0.0
	for i, c := range ix.byExec {
		if len(heap) < n {
			heapPush(&heap, c)
			sum += c.Cost
		} else if c.Cost < heap[0].Cost {
			sum += c.Cost - heap[0].Cost
			heapReplace(heap, c)
		}
		if len(heap) == n {
			if i+1 < len(ix.byExec) && ix.byExec[i+1].Exec == ix.byExec[i].Exec {
				continue
			}
			if budget <= 0 || sum <= budget {
				ix.scratch = heap
				return heap, ix.byExec[i].Exec, true
			}
		}
	}
	ix.scratch = heap
	return nil, 0, false
}

// SelectRandom is the index entry of the paper's simplified MinProcTime
// step: a uniformly random n-subset of the append-order window, rejected
// when over budget. It draws from Cands so the stream of samples is
// identical to the oracle's.
func (ix *WindowIndex) SelectRandom(n int, budget float64, rng *randx.Rand) (chosen []Candidate, ok bool) {
	return selectRandom(ix.cands, n, budget, rng)
}
