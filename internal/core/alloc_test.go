package core_test

import (
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/job"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

// This file is the zero-allocation regression gate (run by CI's bench-smoke
// job without the race detector): every indexed algorithm must perform ZERO
// steady-state heap allocations per Find on a warmed-up Scanner, and the
// public pooled entry points must stay within their small documented
// budgets. The tests use explicit Scanners, not the pool: sync.Pool entries
// are droppable by GC, which would make a pool-based zero-budget test flaky.

// allocBudget pairs an algorithm with its per-Find budgets: zero on a
// warmed-up scanner for every algorithm, and the public pooled Find's
// small documented cost — two allocations for the result detach (Window
// struct + placements array), plus one interface re-boxing of the
// receiver inside findPooled for the flag-carrying algorithm structs
// (the zero-sized and small-word receivers box for free via the
// runtime's static singletons).
type allocBudget struct {
	alg     core.Algorithm
	scanner float64
	public  float64
}

// scannerBudgets is the steady-state contract of Scanner.FindObserved: all
// nine catalogue algorithms at zero — including MinProcTime, whose RNG path
// draws its sample through randx.SampleInto into scanner-owned scratch.
func scannerBudgets() []allocBudget {
	return []allocBudget{
		{core.AMP{}, 0, 2},
		{core.MinCost{}, 0, 2},
		{core.MinRunTime{}, 0, 3},
		{core.MinRunTime{Exact: true}, 0, 3},
		{core.MinFinish{}, 0, 3},
		{core.MinFinish{Exact: true}, 0, 3},
		{core.MinProcTimeGreedy{}, 0, 2},
		{core.MinEnergy{}, 0, 2},
		{core.MinProcTime{Seed: 11}, 0, 2},
	}
}

// TestScannerFindAllocs is the tentpole's acceptance gate: steady-state
// Finds on a reused Scanner allocate nothing, for every catalogue
// algorithm.
func TestScannerFindAllocs(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	rng := randx.New(3)
	list := testkit.RandomList(rng, 16, 4, 400)
	req := job.Request{TaskCount: 3, Volume: 80, MaxCost: 5000}
	for _, ab := range scannerBudgets() {
		sc := core.NewScanner()
		r := req // outside the closure: the visitor retains &r for the search
		// Warm up past lazy capacity growth (byExec activation, arena).
		if _, err := sc.FindObserved(ab.alg, list, &r, nil); err != nil {
			t.Fatalf("%s: warm-up find failed: %v", ab.alg.Name(), err)
		}
		got := testing.AllocsPerRun(50, func() {
			_, _ = sc.FindObserved(ab.alg, list, &r, nil)
		})
		if got > ab.scanner {
			t.Errorf("%s: %v allocs/op on a warmed-up scanner, budget %v", ab.alg.Name(), got, ab.scanner)
		}
	}
}

// TestPublicFindAllocs documents the public Algorithm.Find budget: the
// pooled path costs the result detach (one Window struct + one placements
// array, the price of the caller-owned result contract) plus at most one
// interface re-boxing (see allocBudget). Pool Get/Put of pointers is free.
func TestPublicFindAllocs(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	rng := randx.New(3)
	list := testkit.RandomList(rng, 16, 4, 400)
	req := job.Request{TaskCount: 3, Volume: 80, MaxCost: 5000}
	for _, ab := range scannerBudgets() {
		r := req
		if _, err := ab.alg.Find(list, &r); err != nil {
			t.Fatalf("%s: warm-up find failed: %v", ab.alg.Name(), err)
		}
		got := testing.AllocsPerRun(50, func() {
			_, _ = ab.alg.Find(list, &r)
		})
		if got > ab.public {
			t.Errorf("%s: %v allocs/op through the public Find, budget %v", ab.alg.Name(), got, ab.public)
		}
	}
}
