package core

import (
	"sort"

	"slotsel/internal/randx"
)

// The per-step selection procedures: given the suitable candidates at one
// scan position, pick the n-slot sub-window that is best by the criterion,
// subject to the budget. Each returns the chosen candidates (a fresh slice)
// and whether a feasible choice exists.

// cheapestN returns the n candidates with the smallest cost. The returned
// slice is freshly allocated; cands is not modified.
func cheapestN(cands []Candidate, n int) []Candidate {
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		// Tie-break on execution time then node ID for determinism.
		if a.Exec != b.Exec {
			return a.Exec < b.Exec
		}
		return a.Slot.Node.ID < b.Slot.Node.ID
	})
	return sorted[:n]
}

// selectMinCost picks the n cheapest candidates; that choice is by
// construction the minimum-total-cost sub-window at this scan position.
// ok is false when even the cheapest choice exceeds the budget.
func selectMinCost(cands []Candidate, n int, budget float64) (chosen []Candidate, cost float64, ok bool) {
	if len(cands) < n {
		return nil, 0, false
	}
	chosen = cheapestN(cands, n)
	for _, c := range chosen {
		cost += c.Cost
	}
	if budget > 0 && cost > budget {
		return nil, 0, false
	}
	return chosen, cost, true
}

// selectMinRuntimeGreedy implements the paper's §2.2 runtime-minimizing
// procedure: start from the n cheapest slots, then repeatedly try to
// substitute the longest slot of the forming window with the cheapest
// not-yet-considered slot, if it is shorter and the budget allows.
//
// literalBudget reproduces the paper's pseudocode condition verbatim —
// it charges the replacement cost WITHOUT refunding the replaced slot
// (resultWindow.cost + shortSlot.cost <= S), which is stricter than
// intended. The default (false) checks the cost after the swap.
//
// Because the initial choice is the n cheapest slots and extend slots are
// examined in non-decreasing cost order, every swap weakly increases cost,
// so an infeasible initial choice can never become feasible: ok is then
// false.
func selectMinRuntimeGreedy(cands []Candidate, n int, budget float64, literalBudget bool) (chosen []Candidate, runtime float64, ok bool) {
	if len(cands) < n {
		return nil, 0, false
	}
	sorted := cheapestN(cands, len(cands))
	result := append([]Candidate(nil), sorted[:n]...)
	extend := sorted[n:]

	cost := 0.0
	for _, c := range result {
		cost += c.Cost
	}
	if budget > 0 && cost > budget {
		return nil, 0, false
	}

	for _, short := range extend {
		longIdx := maxExecIndex(result)
		long := result[longIdx]
		if short.Exec >= long.Exec {
			continue
		}
		feasible := true
		if budget > 0 {
			if literalBudget {
				feasible = cost+short.Cost <= budget
			} else {
				feasible = cost-long.Cost+short.Cost <= budget
			}
		}
		if feasible {
			cost += short.Cost - long.Cost
			result[longIdx] = short
		}
	}
	return result, maxExec(result), true
}

// selectMinRuntimeExact finds the true minimum-runtime sub-window: sort the
// candidates by execution time, and for each prefix (i.e. each possible
// runtime bound) take the n cheapest slots inside the prefix; the first
// prefix whose cheapest choice fits the budget yields the optimum. This is
// an extension over the paper's greedy procedure and serves as its oracle
// in tests. O(m log m).
func selectMinRuntimeExact(cands []Candidate, n int, budget float64) (chosen []Candidate, runtime float64, ok bool) {
	if len(cands) < n {
		return nil, 0, false
	}
	byExec := append([]Candidate(nil), cands...)
	sort.Slice(byExec, func(i, j int) bool {
		a, b := byExec[i], byExec[j]
		if a.Exec != b.Exec {
			return a.Exec < b.Exec
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Slot.Node.ID < b.Slot.Node.ID
	})
	// Maintain the n cheapest of the prefix with a max-heap on cost.
	heap := make([]Candidate, 0, n)
	sum := 0.0
	for i, c := range byExec {
		if len(heap) < n {
			heapPush(&heap, c)
			sum += c.Cost
		} else if c.Cost < heap[0].Cost {
			sum += c.Cost - heap[0].Cost
			heapReplace(heap, c)
		}
		if len(heap) == n {
			// The prefix bound is byExec[i].Exec; don't finalize while the
			// next candidate has the identical exec (it may be cheaper).
			if i+1 < len(byExec) && byExec[i+1].Exec == byExec[i].Exec {
				continue
			}
			if budget <= 0 || sum <= budget {
				return append([]Candidate(nil), heap...), byExec[i].Exec, true
			}
		}
	}
	return nil, 0, false
}

// heapPush inserts c into the max-heap (on Cost).
func heapPush(h *[]Candidate, c Candidate) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].Cost >= (*h)[i].Cost {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// heapReplace replaces the max element with c and sifts down.
func heapReplace(h []Candidate, c Candidate) {
	h[0] = c
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && h[l].Cost > h[largest].Cost {
			largest = l
		}
		if r < len(h) && h[r].Cost > h[largest].Cost {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

func maxExecIndex(cs []Candidate) int {
	idx := 0
	for i, c := range cs {
		if c.Exec > cs[idx].Exec {
			idx = i
		}
	}
	return idx
}

func maxExec(cs []Candidate) float64 {
	m := 0.0
	for _, c := range cs {
		if c.Exec > m {
			m = c.Exec
		}
	}
	return m
}

func sumCost(cs []Candidate) float64 {
	s := 0.0
	for _, c := range cs {
		s += c.Cost
	}
	return s
}

func sumExec(cs []Candidate) float64 {
	s := 0.0
	for _, c := range cs {
		s += c.Exec
	}
	return s
}

// selectRandom picks a uniformly random n-subset; this is the paper's
// *simplified* MinProcTime step ("a random window is selected"). ok is
// false when the random choice violates the budget — the scan step then
// contributes no window, matching the no-optimization spirit of the scheme.
func selectRandom(cands []Candidate, n int, budget float64, rng *randx.Rand) (chosen []Candidate, ok bool) {
	if len(cands) < n {
		return nil, false
	}
	idx := rng.Sample(len(cands), n)
	chosen = make([]Candidate, 0, n)
	cost := 0.0
	for _, i := range idx {
		chosen = append(chosen, cands[i])
		cost += cands[i].Cost
	}
	if budget > 0 && cost > budget {
		return nil, false
	}
	return chosen, true
}

// SelectAdditiveGreedy exposes the additive-greedy substitution to extension
// packages (the generic extreme-criterion algorithm builds on it). See
// selectMinAdditiveGreedy.
func SelectAdditiveGreedy(cands []Candidate, n int, budget float64, weight func(Candidate) float64) (chosen []Candidate, total float64, ok bool) {
	return selectMinAdditiveGreedy(cands, n, budget, weight)
}

// selectMinAdditiveGreedy generalizes the runtime-minimizing substitution to
// any additive per-slot weight (total processor time, energy, ...): start
// from the n cheapest slots and substitute the heaviest slot with cheaper
// lighter ones while the budget allows. Swaps weakly increase cost and
// strictly decrease total weight, so the loop terminates with a feasible
// (not necessarily optimal) window.
func selectMinAdditiveGreedy(cands []Candidate, n int, budget float64, weight func(Candidate) float64) (chosen []Candidate, total float64, ok bool) {
	if len(cands) < n {
		return nil, 0, false
	}
	sorted := cheapestN(cands, len(cands))
	result := append([]Candidate(nil), sorted[:n]...)
	extend := sorted[n:]

	cost := 0.0
	for _, c := range result {
		cost += c.Cost
	}
	if budget > 0 && cost > budget {
		return nil, 0, false
	}
	for _, short := range extend {
		heavyIdx := 0
		for i := range result {
			if weight(result[i]) > weight(result[heavyIdx]) {
				heavyIdx = i
			}
		}
		heavy := result[heavyIdx]
		if weight(short) >= weight(heavy) {
			continue
		}
		if budget > 0 && cost-heavy.Cost+short.Cost > budget {
			continue
		}
		cost += short.Cost - heavy.Cost
		result[heavyIdx] = short
	}
	total = 0
	for _, c := range result {
		total += weight(c)
	}
	return result, total, true
}
