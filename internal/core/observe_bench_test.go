package core

import (
	"fmt"
	"testing"

	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/obs"
	"slotsel/internal/slots"
)

// benchList builds a synthetic 50-node environment with several staggered
// slots per node — enough scan positions to exercise the window subroutine.
func benchList() (slots.List, job.Request) {
	l := make(slots.List, 0, 50*8)
	for i := 0; i < 50; i++ {
		n := &nodes.Node{
			ID: i, Perf: 2 + float64(i%9), Price: 1 + float64(i%5)/4,
			RAMMB: 4096, DiskGB: 100, OS: nodes.Linux, Arch: nodes.AMD64,
		}
		for s := 0; s < 8; s++ {
			start := float64(s*70 + i%13)
			l = append(l, &slots.Slot{Node: n, Interval: slots.Interval{Start: start, End: start + 60}})
		}
	}
	l.SortByStart()
	return l, job.Request{TaskCount: 5, Volume: 150, MaxCost: 1500}
}

// scanPlain is a verbatim copy of the pre-instrumentation Scan loop. It
// exists only as the benchmark control: comparing it against ScanObserved
// WITHIN ONE BINARY factors out build-to-build code-layout variance, which
// on shared CI hardware swings microbenchmarks by far more than the ≤2%
// budget under test. Keep it in sync with ScanObserved's loop structure.
func scanPlain(list slots.List, req *job.Request, visit VisitFunc) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if !list.IsSortedByStart() {
		return fmt.Errorf("core: slot list is not ordered by start time")
	}
	var window []Candidate
	for _, s := range list {
		if !req.Matches(s.Node) {
			continue
		}
		exec := req.ExecTime(s.Node)
		start := s.Start
		if effEnd(s, req) < start+exec {
			continue
		}
		if req.Deadline > 0 && start+exec > req.Deadline {
			continue
		}
		window = append(window, Candidate{Slot: s, Exec: exec, Cost: exec * s.Node.Price})
		kept := window[:0]
		for _, c := range window {
			if effEnd(c.Slot, req)-start >= c.Exec {
				kept = append(kept, c)
			}
		}
		window = kept
		if len(window) >= req.TaskCount {
			if visit(start, window) {
				return nil
			}
		}
	}
	return nil
}

// BenchmarkScanObservedOverhead is the acceptance benchmark for the
// tentpole's hot-path budget: the disabled-collector path (nil) must stay
// within 2% of the pre-instrumentation Scan (the "baseline" control below),
// and the enabled variants show what turning observability on costs.
func BenchmarkScanObservedOverhead(b *testing.B) {
	l, req := benchList()
	visit := func(_ float64, cands []Candidate) bool { return false }

	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := scanPlain(l, &req, visit); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ScanObserved(l, &req, visit, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stats", func(b *testing.B) {
		var stats obs.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ScanObserved(l, &req, visit, &stats); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stats+trace", func(b *testing.B) {
		col := obs.Combine(&obs.Stats{}, obs.NewTrace(obs.DefaultTraceCapacity))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ScanObserved(l, &req, visit, col); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFindObservedDisabled measures the full algorithm path with a nil
// collector against the same selection logic driven by the pre-
// instrumentation scan loop (same-binary control, see scanPlain).
func BenchmarkFindObservedDisabled(b *testing.B) {
	l, req := benchList()

	// findPlain is MinCost.Find rebuilt on the uninstrumented scan loop.
	findPlain := func(req *job.Request) (*Window, error) {
		var best *Window
		err := scanPlain(l, req, func(start float64, cands []Candidate) bool {
			chosen, cost, ok := selectMinCost(cands, req.TaskCount, req.MaxCost)
			if !ok {
				return false
			}
			if best == nil || cost < best.Cost {
				best = NewWindow(start, chosen)
			}
			return false
		})
		if err != nil {
			return nil, err
		}
		if best == nil {
			return nil, ErrNoWindow
		}
		return best, nil
	}

	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := req
			if _, err := findPlain(&r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nil", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := req
			if _, err := FindObserved(MinCost{}, l, &r, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
