package core

import (
	"testing"

	"slotsel/internal/job"
	"slotsel/internal/nodes"
	"slotsel/internal/slots"
)

func testNode(id int, perf, price float64) *nodes.Node {
	return &nodes.Node{
		ID: id, Perf: perf, Price: price,
		RAMMB: 4096, DiskGB: 100, OS: nodes.Linux, Arch: nodes.AMD64,
	}
}

func slot(n *nodes.Node, start, end float64) *slots.Slot {
	return &slots.Slot{Node: n, Interval: slots.Interval{Start: start, End: end}}
}

func sorted(ss ...*slots.Slot) slots.List {
	l := slots.List(ss)
	l.SortByStart()
	return l
}

func TestScanRejectsUnsortedList(t *testing.T) {
	n := testNode(1, 4, 1)
	l := slots.List{slot(n, 50, 100), slot(n, 0, 40)}
	req := job.Request{TaskCount: 1, Volume: 40}
	err := Scan(l, &req, func(float64, []Candidate) bool { return false })
	if err == nil {
		t.Fatal("unsorted list accepted")
	}
}

func TestScanRejectsInvalidRequest(t *testing.T) {
	req := job.Request{TaskCount: 0, Volume: 40}
	if err := Scan(nil, &req, func(float64, []Candidate) bool { return false }); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestScanVisitsWithEnoughCandidates(t *testing.T) {
	// Two nodes with slots starting at different times; a 2-task request
	// can only be visited once both slots are in the window.
	n1, n2 := testNode(1, 4, 1), testNode(2, 4, 1)
	l := sorted(slot(n1, 0, 200), slot(n2, 50, 200))
	req := job.Request{TaskCount: 2, Volume: 60} // exec 15 on both
	var starts []float64
	if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
		starts = append(starts, start)
		if len(cands) < 2 {
			t.Errorf("visited with %d candidates", len(cands))
		}
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if len(starts) != 1 || starts[0] != 50 {
		t.Fatalf("visited starts %v, want [50]", starts)
	}
}

func TestScanStartsNonDecreasing(t *testing.T) {
	n1, n2, n3 := testNode(1, 4, 1), testNode(2, 2, 1), testNode(3, 10, 1)
	l := sorted(
		slot(n1, 0, 100), slot(n2, 10, 300), slot(n3, 20, 80),
		slot(n1, 150, 400), slot(n3, 90, 500),
	)
	req := job.Request{TaskCount: 2, Volume: 60}
	prev := -1.0
	if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
		if start < prev {
			t.Errorf("starts decreased: %g after %g", start, prev)
		}
		prev = start
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanCandidatesAlwaysFit(t *testing.T) {
	n1, n2, n3 := testNode(1, 2, 1), testNode(2, 5, 1), testNode(3, 10, 1)
	l := sorted(
		slot(n1, 0, 100), slot(n2, 5, 40), slot(n3, 12, 30),
		slot(n2, 60, 200), slot(n1, 140, 180),
	)
	req := job.Request{TaskCount: 2, Volume: 60}
	if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
		for _, c := range cands {
			if !c.Slot.FitsAt(start, req.Volume) {
				t.Errorf("candidate %v does not fit at %g", c.Slot, start)
			}
			if c.Exec != req.ExecTime(c.Slot.Node) {
				t.Errorf("candidate exec %g, want %g", c.Exec, req.ExecTime(c.Slot.Node))
			}
			if c.Cost != c.Exec*c.Slot.Node.Price {
				t.Errorf("candidate cost %g inconsistent", c.Cost)
			}
		}
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanSkipsNonMatchingNodes(t *testing.T) {
	fast := testNode(1, 10, 1)
	slow := testNode(2, 2, 1)
	l := sorted(slot(fast, 0, 100), slot(slow, 0, 100))
	req := job.Request{TaskCount: 1, Volume: 60, MinPerf: 5}
	visited := false
	if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
		visited = true
		for _, c := range cands {
			if c.Slot.Node.Perf < 5 {
				t.Errorf("non-matching node %v offered", c.Slot.Node)
			}
		}
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if !visited {
		t.Fatal("matching node never visited")
	}
}

func TestScanDeadlineFiltering(t *testing.T) {
	n1, n2 := testNode(1, 4, 1), testNode(2, 4, 1) // exec 15
	l := sorted(slot(n1, 0, 200), slot(n2, 0, 200))
	req := job.Request{TaskCount: 2, Volume: 60, Deadline: 10}
	count := 0
	if err := Scan(l, &req, func(float64, []Candidate) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("deadline 10 cannot host exec 15, but visited %d times", count)
	}

	req.Deadline = 15
	if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
		count++
		if start != 0 {
			t.Errorf("only start 0 is deadline-feasible, got %g", start)
		}
		if len(cands) != 2 {
			t.Errorf("expected both slots as candidates, got %d", len(cands))
		}
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("expected 1 visit (window completes on the second slot), got %d", count)
	}
}

func TestScanStopEarly(t *testing.T) {
	n1, n2 := testNode(1, 4, 1), testNode(2, 4, 1)
	l := sorted(slot(n1, 0, 100), slot(n2, 0, 100), slot(n1, 150, 300), slot(n2, 150, 300))
	req := job.Request{TaskCount: 1, Volume: 60}
	visits := 0
	if err := Scan(l, &req, func(float64, []Candidate) bool {
		visits++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if visits != 1 {
		t.Fatalf("stop=true did not stop the scan: %d visits", visits)
	}
}

func TestScanWindowDropsExpiredSlots(t *testing.T) {
	// Slot on n1 ends at 30; with exec 15, from start > 15 it must vanish.
	n1, n2, n3 := testNode(1, 4, 1), testNode(2, 4, 1), testNode(3, 4, 1)
	l := sorted(slot(n1, 0, 30), slot(n2, 20, 100), slot(n3, 40, 100))
	req := job.Request{TaskCount: 2, Volume: 60}
	if err := Scan(l, &req, func(start float64, cands []Candidate) bool {
		if start == 40 {
			for _, c := range cands {
				if c.Slot.Node.ID == 1 {
					t.Error("expired slot on node 1 still in window at start 40")
				}
			}
		}
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCountSuitable(t *testing.T) {
	n1 := testNode(1, 4, 1)  // exec 15
	n2 := testNode(2, 2, 1)  // exec 30
	n3 := testNode(3, 10, 1) // exec 6
	l := sorted(
		slot(n1, 0, 10),  // too short for exec 15
		slot(n1, 20, 50), // fits
		slot(n2, 0, 25),  // too short for exec 30
		slot(n3, 0, 7),   // fits exactly... 7 >= 6
	)
	req := job.Request{TaskCount: 1, Volume: 60}
	if got := CountSuitable(l, &req); got != 2 {
		t.Fatalf("CountSuitable = %d, want 2", got)
	}
	req.MinPerf = 5
	if got := CountSuitable(l, &req); got != 1 {
		t.Fatalf("CountSuitable with MinPerf = %d, want 1", got)
	}
	req.MinPerf = 0
	req.Deadline = 26
	// n3's slot [0,7) fits (finish 6 <= 26); n1's [20,50) would finish at 35 > 26.
	if got := CountSuitable(l, &req); got != 1 {
		t.Fatalf("CountSuitable with deadline = %d, want 1", got)
	}
}
