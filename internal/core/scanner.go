package core

import (
	"sort"
	"sync"

	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// Scanner is the reusable search state of one goroutine: the scan's
// WindowIndex, the per-criterion selection scratch, the result Window
// buffers and the CSA working copy all live here and are recycled between
// searches, so a steady-state Find performs no heap allocation at all
// (the AllocsPerRun regression suite pins that at 0 for every indexed
// algorithm).
//
// A Scanner is NOT safe for concurrent use: it is one goroutine's private
// state. Use one Scanner per worker (the parallel engine does), or go
// through the package pool (AcquireScanner/ReleaseScanner) which hands
// each caller its own instance.
//
// Windows returned by Scanner.FindObserved are owned by the scanner and
// remain valid only until the next FindObserved, Reset or release back to
// the pool; callers that retain a result across searches must copy it
// first (Window.Detach / Window.DetachDeep). The public Algorithm.Find
// entry points do exactly that, so their results stay caller-owned.
type Scanner struct {
	// win is the incrementally maintained window index of the current scan.
	win WindowIndex

	// vis is the per-algorithm visitor state; visitFn/plainFn/plainIxFn are
	// adapters bound once at construction so per-Find dispatch does not
	// allocate a closure.
	vis       visitor
	visitFn   IndexedVisitFunc
	plainFn   VisitFunc
	plainIxFn IndexedVisitFunc

	// winA and winB are the result scratch: the visitor builds candidate
	// windows into whichever one is not the current best and swaps on
	// improvement, so build-then-compare criteria (MinFinish, MinProcTime)
	// reuse two buffers instead of allocating one window per visit.
	winA, winB Window

	// rng backs MinProcTime's random selection; reseeded per search so the
	// stream matches a freshly constructed generator. sample and chosen are
	// its index and candidate scratch.
	rng    *randx.Rand
	sample []int
	chosen []Candidate

	// work is the CSA working copy: slot values copied into arena-owned
	// structs so repeated cutting mutates scanner-private memory and reuses
	// the same backing arrays across searches. arena holds every slot
	// struct the scanner ever allocated; arena[:slotUsed] are handed out
	// since the last BeginWork.
	work     slots.List
	arena    []*slots.Slot
	slotUsed int
}

// NewScanner returns a fresh scanner. Most callers should prefer
// AcquireScanner, which recycles warmed-up instances; NewScanner exists for
// long-lived per-worker state and for tests that need full control over the
// instance's lifetime.
func NewScanner() *Scanner {
	sc := &Scanner{}
	sc.vis.sc = sc
	sc.visitFn = func(start float64, win *WindowIndex) bool { return sc.vis.visit(start, win) }
	sc.plainFn = func(start float64, cands []Candidate) bool { return sc.vis.visitPlain(start, cands) }
	sc.plainIxFn = func(start float64, win *WindowIndex) bool { return sc.vis.visitPlain(start, win.cands) }
	return sc
}

// Reset returns the scanner to its post-construction state while keeping
// every buffer's capacity: the window index, result windows, selection
// scratch and CSA working copy are emptied, not freed. ReleaseScanner
// calls it on the way into the pool; per-search state is additionally
// re-initialized at the start of every FindObserved, so results never
// depend on what a previous search (or a previous pool user) left behind —
// the dirty-pool adversarial test poisons every buffer to pin that down.
func (sc *Scanner) Reset() {
	sc.win.reset()
	sc.win.mirror = false
	sc.vis.reset(nil)
	sc.winA = Window{Placements: sc.winA.Placements[:0]}
	sc.winB = Window{Placements: sc.winB.Placements[:0]}
	sc.sample = sc.sample[:0]
	sc.chosen = sc.chosen[:0]
	sc.work = sc.work[:0]
	sc.slotUsed = 0
}

// scannerPool recycles Scanners process-wide. sync.Pool may drop idle
// entries at any GC, so pooling is an amortization, not a guarantee — the
// zero-allocation regression tests therefore run on explicit Scanners.
var scannerPool = sync.Pool{New: func() any { return NewScanner() }}

// AcquireScanner returns a scanner from the package pool (allocating a
// fresh one only when the pool is empty). Pair it with ReleaseScanner.
func AcquireScanner() *Scanner {
	return scannerPool.Get().(*Scanner)
}

// ReleaseScanner resets the scanner and returns it to the pool. The
// scanner — and any Window obtained from it — must not be used afterwards.
// ReleaseScanner(nil) is a no-op.
func ReleaseScanner(sc *Scanner) {
	if sc == nil {
		return
	}
	sc.Reset()
	scannerPool.Put(sc)
}

// WarmScanners pre-populates the pool with n scanners so the first n
// concurrent searches skip construction. The server sizes this by its
// MaxInflight admission bound. Best-effort: the pool may still shed
// entries under GC pressure.
func WarmScanners(n int) {
	if n <= 0 {
		return
	}
	warmed := make([]*Scanner, 0, n)
	for i := 0; i < n; i++ {
		warmed = append(warmed, NewScanner())
	}
	for _, sc := range warmed {
		scannerPool.Put(sc)
	}
}

// FindObserved runs one algorithm search on the scanner's recycled state
// and returns the best window, ErrNoWindow when none is feasible, or an
// input error. The returned window is scanner-owned: valid until the next
// FindObserved/Reset/release, shared placements with the scanner's scratch.
// Callers that keep it must Detach (the public Find entry points do).
//
// Every algorithm shipped by this package dispatches onto the scanner's
// allocation-free visitor; unknown third-party algorithms fall back to
// their own Find/FindObserved.
func (sc *Scanner) FindObserved(alg Algorithm, list slots.List, req *job.Request, col obs.Collector) (*Window, error) {
	v := &sc.vis
	v.reset(req)
	indexed := true
	switch a := alg.(type) {
	case AMP:
		v.kind = vkAMP
	case MinCost:
		v.kind = vkMinCost
	case MinRunTime:
		v.kind = vkMinRunTime
		v.exact, v.literalBudget = a.Exact, a.LiteralBudget
	case MinFinish:
		v.kind = vkMinFinish
		v.exact, v.earlyStop = a.Exact, a.EarlyStop
	case MinProcTimeGreedy:
		v.kind = vkMinProcGreedy
		v.weight = execWeight
	case MinEnergy:
		v.kind = vkMinEnergy
		if a.Model == nil {
			v.weight = defaultEnergyWeight
		} else {
			model := a.Model
			v.weight = func(c Candidate) float64 { return model(c.Slot.Node.Perf, c.Exec) }
		}
	case MinProcTime:
		// The random sub-window step reads the window in append order only,
		// so it runs on the plain scan path (see MinProcTime.FindObserved).
		v.kind = vkMinProcRandom
		if sc.rng == nil {
			sc.rng = randx.New(a.Seed)
		} else {
			sc.rng.Seed(a.Seed)
		}
		indexed = false
	default:
		// Unknown algorithm: no visitor dispatch; run its own search. Its
		// result is already caller-owned, which Detach treats as a plain
		// copy, so the calling convention stays uniform.
		if of, ok := alg.(ObservedFinder); ok {
			return of.FindObserved(list, req, col)
		}
		return alg.Find(list, req)
	}

	var err error
	if indexed {
		fn := sc.visitFn
		if indexWrap != nil {
			fn = indexWrap(fn)
		}
		err = scanLoop(list, req, col, true, &sc.win, fn)
	} else {
		fn := sc.plainIxFn
		if visitWrap != nil {
			wrapped := visitWrap(sc.plainFn)
			fn = func(start float64, win *WindowIndex) bool { return wrapped(start, win.cands) }
		}
		err = scanLoop(list, req, col, false, &sc.win, fn)
	}
	if err != nil {
		return nil, err
	}
	if !v.hasBest {
		return nil, ErrNoWindow
	}
	return v.best, nil
}

// visitKind selects the per-visit comparison the visitor applies; each
// value replicates one shipped algorithm's selection-and-compare step
// exactly (same kernels, same comparison expressions), so the scanner path
// is window-for-window identical to the closure-based implementations the
// differential suite retains as oracles.
type visitKind int

const (
	vkNone visitKind = iota
	vkAMP
	vkMinCost
	vkMinRunTime
	vkMinFinish
	vkMinProcGreedy
	vkMinEnergy
	vkMinProcRandom
)

// execWeight is MinProcTimeGreedy's additive weight. Package-level so
// assigning it to the visitor never allocates.
func execWeight(c Candidate) float64 { return c.Exec }

// defaultEnergyWeight is MinEnergy's weight under DefaultEnergyModel
// (perf^2 x exec), statically bound for the nil-Model configuration.
func defaultEnergyWeight(c Candidate) float64 {
	return c.Slot.Node.Perf * c.Slot.Node.Perf * c.Exec
}

// visitor is the scanner's per-search algorithm state: which criterion to
// apply, the request, and the current best window. Its visit methods are
// reached through the scanner's pre-bound adapters, so a search installs
// plain struct fields instead of allocating per-Find closures.
type visitor struct {
	sc   *Scanner
	kind visitKind
	req  *job.Request

	exact         bool
	literalBudget bool
	earlyStop     bool
	weight        func(Candidate) float64

	best    *Window
	spare   *Window
	hasBest bool
	bestVal float64
}

// reset rebinds the visitor for a new search. best/spare point at the
// scanner's two window buffers; builds go into whichever is not best.
func (v *visitor) reset(req *job.Request) {
	v.kind = vkNone
	v.req = req
	v.exact, v.literalBudget, v.earlyStop = false, false, false
	v.weight = nil
	v.best, v.spare = &v.sc.winA, &v.sc.winB
	v.hasBest = false
	v.bestVal = 0
}

// visit is the indexed-path dispatch. The selection kernels run on the win
// argument — not on the scanner's own index — because the aliasing tests
// interpose private rebuilt indexes through the scan's wrap seam.
func (v *visitor) visit(start float64, win *WindowIndex) bool {
	switch v.kind {
	case vkAMP:
		chosen, _, ok := win.selectMinCostScratch(v.req.TaskCount, v.req.MaxCost)
		if !ok {
			return false
		}
		buildWindow(v.best, start, chosen)
		v.hasBest = true
		return true // earliest start found; later positions cannot improve

	case vkMinCost:
		chosen, cost, ok := win.selectMinCostScratch(v.req.TaskCount, v.req.MaxCost)
		if !ok {
			return false
		}
		if !v.hasBest || cost < v.best.Cost {
			buildWindow(v.best, start, chosen)
			v.hasBest = true
		}
		return false

	case vkMinRunTime:
		var chosen []Candidate
		var runtime float64
		var ok bool
		if v.exact {
			chosen, runtime, ok = win.selectMinRuntimeExactScratch(v.req.TaskCount, v.req.MaxCost)
		} else {
			chosen, runtime, ok = win.selectMinRuntimeGreedyScratch(v.req.TaskCount, v.req.MaxCost, v.literalBudget)
		}
		if !ok {
			return false
		}
		if !v.hasBest || runtime < v.best.Runtime {
			buildWindow(v.best, start, chosen)
			v.hasBest = true
		}
		return false

	case vkMinFinish:
		if v.earlyStop && v.hasBest && start >= v.best.Finish() {
			return true // every further window finishes after start >= best
		}
		var chosen []Candidate
		var ok bool
		if v.exact {
			chosen, _, ok = win.selectMinRuntimeExactScratch(v.req.TaskCount, v.req.MaxCost)
		} else {
			chosen, _, ok = win.selectMinRuntimeGreedyScratch(v.req.TaskCount, v.req.MaxCost, false)
		}
		if !ok {
			return false
		}
		w := v.spare
		buildWindow(w, start, chosen)
		if !v.hasBest || w.Finish() < v.best.Finish() {
			v.best, v.spare = w, v.best
			v.hasBest = true
		}
		return false

	case vkMinProcGreedy:
		chosen, total, ok := win.selectMinAdditiveGreedyScratch(v.req.TaskCount, v.req.MaxCost, v.weight)
		if !ok {
			return false
		}
		if !v.hasBest || total < v.best.ProcTime {
			buildWindow(v.best, start, chosen)
			v.hasBest = true
		}
		return false

	case vkMinEnergy:
		chosen, total, ok := win.selectMinAdditiveGreedyScratch(v.req.TaskCount, v.req.MaxCost, v.weight)
		if !ok {
			return false
		}
		if !v.hasBest || total < v.bestVal {
			buildWindow(v.best, start, chosen)
			v.hasBest = true
			v.bestVal = total
		}
		return false
	}
	return false
}

// visitPlain is the plain-path dispatch (MinProcTime's random step).
func (v *visitor) visitPlain(start float64, cands []Candidate) bool {
	chosen, ok := v.sc.selectRandomScratch(cands, v.req.TaskCount, v.req.MaxCost)
	if !ok {
		return false
	}
	w := v.spare
	buildWindow(w, start, chosen)
	if !v.hasBest || w.ProcTime < v.best.ProcTime {
		v.best, v.spare = w, v.best
		v.hasBest = true
	}
	return false
}

// selectRandomScratch is selectRandom drawing into the scanner's index and
// candidate scratch: the Sample stream (drawn before the budget check) and
// the chosen order are identical to the allocating oracle's.
func (sc *Scanner) selectRandomScratch(cands []Candidate, n int, budget float64) ([]Candidate, bool) {
	if len(cands) < n {
		return nil, false
	}
	idx := sc.rng.SampleInto(sc.sample[:0], len(cands), n)
	sc.sample = idx
	chosen := sc.chosen[:0]
	cost := 0.0
	for _, i := range idx {
		chosen = append(chosen, cands[i])
		cost += cands[i].Cost
	}
	sc.chosen = chosen
	if budget > 0 && cost > budget {
		return nil, false
	}
	return chosen, true
}

// ---- CSA working-copy machinery ----

// slotLess is the SortByStart comparator as a predicate: (start, node ID,
// end). Per-node slots are disjoint, so no two slots of a valid list share
// (start, node ID) and the order is total — which is what lets the cutting
// edits below maintain sortedness incrementally with the exact same
// resulting sequence a full re-sort would produce.
func slotLess(a, b *slots.Slot) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Node.ID != b.Node.ID {
		return a.Node.ID < b.Node.ID
	}
	return a.End < b.End
}

// BeginWork loads a mutable working copy of the list into the scanner:
// slot values are copied into arena-recycled structs (the input list and
// its slots are never touched), so repeated CutWindow calls edit
// scanner-private memory and successive searches reuse the same backing
// arrays instead of cloning the list per search.
func (sc *Scanner) BeginWork(list slots.List) {
	sc.slotUsed = 0
	sc.work = sc.work[:0]
	for _, s := range list {
		ns := sc.newSlot()
		*ns = *s
		sc.work = append(sc.work, ns)
	}
}

// Work returns the current working copy. The list is scanner-owned,
// mutated by CutWindow and recycled by BeginWork/Reset; it must not be
// retained or published.
func (sc *Scanner) Work() slots.List { return sc.work }

// newSlot hands out an arena slot struct, recycling structs from earlier
// searches before allocating.
func (sc *Scanner) newSlot() *slots.Slot {
	if sc.slotUsed < len(sc.arena) {
		s := sc.arena[sc.slotUsed]
		sc.slotUsed++
		return s
	}
	s := &slots.Slot{}
	sc.arena = append(sc.arena, s)
	sc.slotUsed++
	return s
}

// CutWindow removes the window's used spans from the working copy in
// place. The result is value-identical, slot for slot, to the persistent
// slots.Cut(work, w.UsedIntervals(), minLength) it replaces: each
// placement's used interval lies inside its own slot and placements sit on
// pairwise distinct nodes, so every cut touches exactly one working slot —
// shrink it, split it, or drop it — and remainders shorter than minLength
// are suppressed exactly as slots.Subtract would. Sort order is maintained
// by in-place edits (see slotLess), so no re-sort is needed.
//
// The window's placements must reference slots of the current working copy
// (i.e. a window returned by FindObserved over Work()). Detach any
// alternative you keep BEFORE cutting: cutting mutates the very slot
// structs the scanner-owned window points at.
func (sc *Scanner) CutWindow(w *Window, minLength float64) {
	for i := range w.Placements {
		p := &w.Placements[i]
		sc.cutSlot(p.Slot, p.Start, p.Start+p.Exec, minLength)
	}
}

func (sc *Scanner) cutSlot(s *slots.Slot, cutStart, cutEnd, minLength float64) {
	if !s.Overlaps(slots.Interval{Start: cutStart, End: cutEnd}) {
		return
	}
	i := sc.workIndex(s)
	if i < 0 {
		return // not part of the working copy; nothing to edit
	}
	leftLen := cutStart - s.Start
	rightLen := s.End - cutEnd
	keepL := leftLen >= minLength && leftLen > 0
	keepR := rightLen >= minLength && rightLen > 0
	switch {
	case keepL && keepR:
		right := sc.newSlot()
		*right = slots.Slot{Node: s.Node, Interval: slots.Interval{Start: cutEnd, End: s.End}}
		s.End = cutStart // start and node unchanged: sort position is stable
		sc.insertWork(right)
	case keepL:
		s.End = cutStart
	case keepR:
		sc.removeWork(i)
		s.Interval = slots.Interval{Start: cutEnd, End: s.End}
		sc.insertWork(s) // start moved forward: reinsert at the new position
	default:
		sc.removeWork(i)
	}
}

// workIndex locates a working slot by binary search on (start, node, end),
// confirming by identity.
func (sc *Scanner) workIndex(s *slots.Slot) int {
	i := sort.Search(len(sc.work), func(j int) bool { return !slotLess(sc.work[j], s) })
	for ; i < len(sc.work); i++ {
		if sc.work[i] == s {
			return i
		}
		if slotLess(s, sc.work[i]) {
			break
		}
	}
	return -1
}

func (sc *Scanner) insertWork(s *slots.Slot) {
	pos := sort.Search(len(sc.work), func(j int) bool { return slotLess(s, sc.work[j]) })
	sc.work = append(sc.work, nil)
	copy(sc.work[pos+1:], sc.work[pos:])
	sc.work[pos] = s
}

func (sc *Scanner) removeWork(i int) {
	copy(sc.work[i:], sc.work[i+1:])
	sc.work = sc.work[:len(sc.work)-1]
}
