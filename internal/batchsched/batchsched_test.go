package batchsched

import (
	"math"
	"testing"

	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/job"
	"slotsel/internal/slots"
	"slotsel/internal/testkit"
)

func testBatch() *job.Batch {
	b := &job.Batch{}
	b.Add(&job.Job{ID: 1, Name: "a", Priority: 2, Request: job.Request{TaskCount: 3, Volume: 60, MaxCost: 300}})
	b.Add(&job.Job{ID: 2, Name: "b", Priority: 1, Request: job.Request{TaskCount: 2, Volume: 90, MaxCost: 250}})
	b.Add(&job.Job{ID: 3, Name: "c", Priority: 3, Request: job.Request{TaskCount: 2, Volume: 45, MaxCost: 200}})
	return b
}

func TestFindAlternativesDisjointAcrossJobs(t *testing.T) {
	e := testkit.SmallEnv(1, 25, 500)
	alts, err := FindAlternatives(e.Slots, testBatch(), Options{CSA: csa.Options{MinSlotLength: 10, MaxAlternatives: 10}})
	if err != nil {
		t.Fatal(err)
	}
	var all []*core.Window
	for _, ja := range alts {
		all = append(all, ja.Alts...)
		for i, w := range ja.Alts {
			if verr := w.Validate(&ja.Job.Request); verr != nil {
				t.Fatalf("job %v alternative %d invalid: %v", ja.Job, i, verr)
			}
		}
	}
	if len(all) == 0 {
		t.Skip("no alternatives at all on this seed")
	}
	if !csa.Disjoint(all) {
		t.Fatal("alternatives overlap across jobs")
	}
}

func TestFindAlternativesPriorityOrder(t *testing.T) {
	e := testkit.SmallEnv(2, 25, 500)
	alts, err := FindAlternatives(e.Slots, testBatch(), Options{CSA: csa.Options{MinSlotLength: 10, MaxAlternatives: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Output order must be priority order: job 3 (prio 3), 1 (2), 2 (1).
	wantIDs := []int{3, 1, 2}
	if len(alts) != len(wantIDs) {
		t.Fatalf("%d jobs in output", len(alts))
	}
	for i, ja := range alts {
		if ja.Job.ID != wantIDs[i] {
			t.Fatalf("output order %v, want IDs %v", alts, wantIDs)
		}
	}
}

func TestSelectCombinationRespectsBudget(t *testing.T) {
	e := testkit.SmallEnv(3, 25, 500)
	for _, budget := range []float64{200, 400, 600, 900} {
		plan, err := Schedule(e.Slots, testBatch(), csa.Options{MinSlotLength: 10, MaxAlternatives: 8},
			SelectConfig{Budget: budget, Criterion: csa.ByFinish})
		if err != nil {
			t.Fatal(err)
		}
		if plan.TotalCost > budget*(1+1e-9) {
			t.Fatalf("budget %g: plan cost %g", budget, plan.TotalCost)
		}
	}
}

func TestSelectCombinationMoreBudgetSchedulesMore(t *testing.T) {
	e := testkit.SmallEnv(4, 30, 500)
	opts := csa.Options{MinSlotLength: 10, MaxAlternatives: 8}
	tight, err := Schedule(e.Slots, testBatch(), opts, SelectConfig{Budget: 150, Criterion: csa.ByCost})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Schedule(e.Slots, testBatch(), opts, SelectConfig{Budget: 2000, Criterion: csa.ByCost})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Scheduled < tight.Scheduled {
		t.Fatalf("more budget scheduled fewer jobs: %d vs %d", loose.Scheduled, tight.Scheduled)
	}
}

// bruteSelect exhaustively searches the combination space (small inputs).
func bruteSelect(alts []JobAlternatives, cfg SelectConfig) (float64, float64) {
	bestVal := math.Inf(1)
	bestCost := 0.0
	var rec func(i int, cost, val float64)
	rec = func(i int, cost, val float64) {
		if cfg.Budget > 0 && cost > cfg.Budget {
			return
		}
		if i == len(alts) {
			if val < bestVal {
				bestVal, bestCost = val, cost
			}
			return
		}
		rec(i+1, cost, val+cfg.RejectPenalty) // reject job i
		for _, w := range alts[i].Alts {
			rec(i+1, cost+w.Cost, val+cfg.Criterion.Value(w))
		}
	}
	rec(0, 0, 0)
	return bestVal, bestCost
}

func TestSelectCombinationNearOptimal(t *testing.T) {
	// The DP discretizes costs upward, so it is optimal on the grid; with a
	// fine grid its objective must match the exhaustive optimum for every
	// criterion on small instances (up to grid slack on feasibility).
	for seed := uint64(1); seed <= 8; seed++ {
		e := testkit.SmallEnv(seed, 20, 400)
		alts, err := FindAlternatives(e.Slots, testBatch(), Options{CSA: csa.Options{MinSlotLength: 10, MaxAlternatives: 4}})
		if err != nil {
			t.Fatal(err)
		}
		cfg := SelectConfig{Budget: 600, Criterion: csa.ByFinish, RejectPenalty: 1e6, BudgetSteps: 6000}
		plan, err := SelectCombination(alts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantVal, _ := bruteSelect(alts, cfg)
		// Grid rounding can only exclude solutions very close to the budget;
		// allow the DP to be at most one reject worse only if the optimum
		// sits within grid slack of the budget. In practice they agree.
		if plan.TotalValue > wantVal+1e-6 {
			// Verify the gap is explained by grid rounding: re-run with an
			// even finer grid.
			cfg.BudgetSteps = 120000
			plan2, err := SelectCombination(alts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plan2.TotalValue > wantVal+1e-6 {
				t.Fatalf("seed %d: DP value %g, exhaustive %g", seed, plan2.TotalValue, wantVal)
			}
		}
	}
}

func TestSelectUnconstrainedPicksPerJobBest(t *testing.T) {
	e := testkit.SmallEnv(5, 25, 500)
	alts, err := FindAlternatives(e.Slots, testBatch(), Options{CSA: csa.Options{MinSlotLength: 10, MaxAlternatives: 6}})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := SelectCombination(alts, SelectConfig{Criterion: csa.ByCost})
	if err != nil {
		t.Fatal(err)
	}
	for i, ja := range alts {
		want := csa.Best(ja.Alts, csa.ByCost)
		got := plan.Assignments[i].Chosen
		if (want == nil) != (got == nil) {
			t.Fatalf("job %v: chosen %v, want %v", ja.Job, got, want)
		}
		if want != nil && got != want {
			t.Fatalf("job %v: chosen %v, want per-job best %v", ja.Job, got, want)
		}
	}
}

func TestPlanMakespan(t *testing.T) {
	n1, n2 := testkit.Node(1, 5, 1), testkit.Node(2, 5, 1)
	w1 := core.NewWindow(0, []core.Candidate{{Slot: testkit.Slot(n1, 0, 100), Exec: 30, Cost: 30}})
	w2 := core.NewWindow(10, []core.Candidate{{Slot: testkit.Slot(n2, 0, 100), Exec: 50, Cost: 50}})
	p := &Plan{Assignments: []Assignment{{Chosen: w1}, {Chosen: w2}, {Chosen: nil}}}
	if got := p.Makespan(); got != 60 {
		t.Errorf("Makespan = %g, want 60", got)
	}
	empty := &Plan{Assignments: []Assignment{{Chosen: nil}}}
	if got := empty.Makespan(); got != 0 {
		t.Errorf("empty plan Makespan = %g", got)
	}
}

func TestScheduleJobWithNoAlternatives(t *testing.T) {
	// A job that cannot fit anywhere must be rejected, not error out.
	b := &job.Batch{}
	b.Add(&job.Job{ID: 1, Request: job.Request{TaskCount: 50, Volume: 60, MaxCost: 10}})
	e := testkit.SmallEnv(6, 10, 200)
	plan, err := Schedule(e.Slots, b, csa.Options{MinSlotLength: 10}, SelectConfig{Budget: 100, Criterion: csa.ByCost})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheduled != 0 {
		t.Fatalf("impossible job scheduled: %+v", plan)
	}
	if plan.Assignments[0].Chosen != nil {
		t.Fatal("impossible job has a window")
	}
}

func TestScheduleInvalidJobFails(t *testing.T) {
	b := &job.Batch{}
	b.Add(&job.Job{ID: 1, Request: job.Request{TaskCount: 0, Volume: 60}})
	e := testkit.SmallEnv(7, 10, 200)
	if _, err := Schedule(e.Slots, b, csa.Options{MinSlotLength: 10}, SelectConfig{Criterion: csa.ByCost}); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestScheduleDirected(t *testing.T) {
	e := testkit.SmallEnv(10, 25, 500)
	for _, alg := range []core.Algorithm{core.AMP{}, core.MinCost{}} {
		plan, err := ScheduleDirected(e.Slots, testBatch(), 700, alg, 10)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if plan.TotalCost > 700 {
			t.Fatalf("%s: plan cost %g exceeds the VO budget", alg.Name(), plan.TotalCost)
		}
		var chosen []*core.Window
		for _, a := range plan.Assignments {
			if a.Chosen != nil {
				if verr := a.Chosen.Validate(&a.Job.Request); verr != nil {
					// The per-job budget may have been tightened to the
					// remaining VO budget; validate against that instead.
					req := a.Job.Request
					req.MaxCost = 0
					if verr2 := a.Chosen.Validate(&req); verr2 != nil {
						t.Fatalf("%s: invalid window: %v", alg.Name(), verr2)
					}
				}
				chosen = append(chosen, a.Chosen)
			}
		}
		if len(chosen) >= 2 && !csa.Disjoint(chosen) {
			t.Fatalf("%s: directed plan windows overlap", alg.Name())
		}
	}
}

func TestScheduleDirectedUnconstrainedBudget(t *testing.T) {
	e := testkit.SmallEnv(11, 25, 500)
	plan, err := ScheduleDirected(e.Slots, testBatch(), 0, core.AMP{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scheduled == 0 {
		t.Fatal("unconstrained directed pipeline scheduled nothing")
	}
}

func TestScheduledWindowsAreDisjoint(t *testing.T) {
	e := testkit.SmallEnv(8, 25, 500)
	plan, err := Schedule(e.Slots, testBatch(), csa.Options{MinSlotLength: 10, MaxAlternatives: 8},
		SelectConfig{Budget: 900, Criterion: csa.ByFinish})
	if err != nil {
		t.Fatal(err)
	}
	var chosen []*core.Window
	for _, a := range plan.Assignments {
		if a.Chosen != nil {
			chosen = append(chosen, a.Chosen)
		}
	}
	if len(chosen) >= 2 && !csa.Disjoint(chosen) {
		t.Fatal("plan windows overlap")
	}
	_ = slots.List{}
}
