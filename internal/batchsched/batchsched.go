// Package batchsched completes the two-stage scheduling scheme the paper's
// slot selection algorithms plug into (references [6, 7] of the paper):
//
//	stage 1 — for every job of the batch, in priority order, find a set of
//	          alternative windows (CSA over a shared slot list, cutting each
//	          found alternative so ALL alternatives of ALL jobs are pairwise
//	          disjoint by slots);
//	stage 2 — choose one alternative per job so that the whole-batch
//	          criterion is optimized under the VO budget (dynamic
//	          programming over a discretized budget).
//
// Disjointness established at stage 1 means any stage-2 combination is
// conflict-free, which is what makes the combination selection a clean
// knapsack-style problem.
package batchsched

import (
	"errors"
	"fmt"
	"math"

	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/job"
	"slotsel/internal/obs"
	"slotsel/internal/parallel"
	"slotsel/internal/slots"
)

// JobAlternatives is the stage-1 output for one job.
type JobAlternatives struct {
	Job  *job.Job
	Alts []*core.Window
}

// Options configures the stage-1 alternative search.
type Options struct {
	// CSA configures the per-job CSA searches (alternative bound, minimum
	// slot length for remainder suppression when cutting).
	CSA csa.Options

	// Workers runs the per-job searches on the speculative worker pool of
	// internal/parallel. 0 and 1 select the plain sequential loop; any
	// value produces results identical (by value) to the sequential path —
	// parallelism only changes wall-clock time. Negative values select
	// GOMAXPROCS.
	Workers int

	// Collector receives instrumentation events from the stage-1 search
	// (scan counters, spans, batch/speculation statistics). nil means
	// observability off, at no cost.
	Collector obs.Collector
}

// FindAlternatives runs stage 1: CSA per job in priority order over a shared
// working list, cutting every found alternative so all alternatives of all
// jobs are pairwise disjoint by slots. Jobs for which no window exists get
// an empty alternative set (the caller decides whether that is an error).
//
// With opts.Workers > 1 the searches run on a speculative worker pool with
// a deterministic commit order (see parallel.Alternatives for the
// determinism proof); the output is identical to the sequential path.
func FindAlternatives(list slots.List, batch *job.Batch, opts Options) ([]JobAlternatives, error) {
	ordered := batch.ByPriority()
	alts, err := parallel.AlternativesObserved(list, ordered, opts.CSA, normalizeWorkers(opts.Workers), opts.Collector)
	if err != nil {
		var je *parallel.JobError
		if errors.As(err, &je) {
			return nil, fmt.Errorf("batchsched: job %v: %w", je.Job, je.Err)
		}
		return nil, fmt.Errorf("batchsched: %w", err)
	}
	out := make([]JobAlternatives, len(ordered))
	for i, j := range ordered {
		out[i] = JobAlternatives{Job: j, Alts: alts[i]}
	}
	return out, nil
}

// normalizeWorkers maps the Options.Workers convention (0/1 sequential,
// negative = GOMAXPROCS) onto parallel.Alternatives' argument.
func normalizeWorkers(w int) int {
	if w == 0 {
		return 1 // explicit sequential default; parallel treats <=0 as GOMAXPROCS
	}
	return w
}

// Assignment is a stage-2 result: the chosen alternative per job (nil when
// the job was left unscheduled).
type Assignment struct {
	Job    *job.Job
	Chosen *core.Window
}

// Plan is the complete batch schedule.
type Plan struct {
	Assignments []Assignment

	// TotalCost is the summed cost of the chosen alternatives.
	TotalCost float64

	// TotalValue is the summed criterion value of the chosen alternatives
	// plus the rejection penalties of unscheduled jobs.
	TotalValue float64

	// Scheduled is the number of jobs that received a window.
	Scheduled int
}

// Makespan returns the latest finish among the scheduled jobs (0 when none).
func (p *Plan) Makespan() float64 {
	m := 0.0
	for _, a := range p.Assignments {
		if a.Chosen != nil && a.Chosen.Finish() > m {
			m = a.Chosen.Finish()
		}
	}
	return m
}

// SelectConfig parametrizes the stage-2 combination selection.
type SelectConfig struct {
	// Budget is the VO budget over the whole batch; <= 0 means
	// unconstrained.
	Budget float64

	// Criterion is the per-window value to minimize across the batch.
	Criterion csa.Criterion

	// RejectPenalty is added to the objective for every unscheduled job; it
	// must exceed any realistic window value so that scheduling a job is
	// always preferred when the budget allows.
	RejectPenalty float64

	// BudgetSteps discretizes the budget axis of the DP (default 1000).
	// Costs are rounded UP to the grid, so the budget is never exceeded.
	BudgetSteps int
}

// SelectCombination runs stage 2: a dynamic program over (job index, budget
// grid) choosing at most one alternative per job, minimizing the total
// criterion value plus rejection penalties, subject to the VO budget.
//
// Complexity O(jobs x alternatives x BudgetSteps).
func SelectCombination(alts []JobAlternatives, cfg SelectConfig) (*Plan, error) {
	if cfg.RejectPenalty <= 0 {
		cfg.RejectPenalty = 1e9
	}
	steps := cfg.BudgetSteps
	if steps <= 0 {
		steps = 1000
	}
	if cfg.Budget <= 0 {
		return selectUnconstrained(alts, cfg), nil
	}
	unit := cfg.Budget / float64(steps)

	// costGrid rounds a cost up to grid units so a feasible DP path never
	// exceeds the real budget.
	costGrid := func(c float64) int {
		return int(math.Ceil(c/unit - 1e-12))
	}

	const inf = math.MaxFloat64 / 4
	nJobs := len(alts)
	// dp[b] = minimal objective using the jobs processed so far with total
	// grid cost exactly <= b. choice[i][b] records the alternative index
	// taken for job i at budget b (-1 = rejected).
	dp := make([]float64, steps+1)
	next := make([]float64, steps+1)
	choice := make([][]int, nJobs)

	for i := range dp {
		dp[i] = 0
	}
	for i, ja := range alts {
		choice[i] = make([]int, steps+1)
		for b := 0; b <= steps; b++ {
			// Option: reject the job.
			best := dp[b] + cfg.RejectPenalty
			bestChoice := -1
			for ai, w := range ja.Alts {
				gc := costGrid(w.Cost)
				if gc > b {
					continue
				}
				v := dp[b-gc] + cfg.Criterion.Value(w)
				if v < best {
					best = v
					bestChoice = ai
				}
			}
			next[b] = best
			choice[i][b] = bestChoice
		}
		dp, next = next, dp
	}

	// Trace back from the full budget.
	plan := &Plan{Assignments: make([]Assignment, nJobs)}
	b := steps
	for i := nJobs - 1; i >= 0; i-- {
		ai := choice[i][b]
		plan.Assignments[i] = Assignment{Job: alts[i].Job}
		if ai >= 0 {
			w := alts[i].Alts[ai]
			plan.Assignments[i].Chosen = w
			plan.TotalCost += w.Cost
			plan.TotalValue += cfg.Criterion.Value(w)
			plan.Scheduled++
			b -= costGrid(w.Cost)
		} else {
			plan.TotalValue += cfg.RejectPenalty
		}
	}
	if plan.TotalCost > cfg.Budget*(1+1e-9) {
		return nil, fmt.Errorf("batchsched: internal error: plan cost %.4f exceeds budget %.4f", plan.TotalCost, cfg.Budget)
	}
	return plan, nil
}

// selectUnconstrained picks the per-job minimum-criterion alternative when
// no VO budget applies.
func selectUnconstrained(alts []JobAlternatives, cfg SelectConfig) *Plan {
	plan := &Plan{Assignments: make([]Assignment, len(alts))}
	for i, ja := range alts {
		plan.Assignments[i] = Assignment{Job: ja.Job}
		if best := csa.Best(ja.Alts, cfg.Criterion); best != nil {
			plan.Assignments[i].Chosen = best
			plan.TotalCost += best.Cost
			plan.TotalValue += cfg.Criterion.Value(best)
			plan.Scheduled++
		} else {
			plan.TotalValue += cfg.RejectPenalty
		}
	}
	return plan
}

// Schedule runs both stages sequentially with the given CSA options and
// returns the plan. It is the single-threaded convenience wrapper around
// ScheduleOpts.
func Schedule(list slots.List, batch *job.Batch, csaOpts csa.Options, sel SelectConfig) (*Plan, error) {
	return ScheduleOpts(list, batch, Options{CSA: csaOpts}, sel)
}

// ScheduleOpts runs both stages with full stage-1 options (including the
// worker pool) and returns the plan. The plan is identical to Schedule's
// for any worker count.
func ScheduleOpts(list slots.List, batch *job.Batch, opts Options, sel SelectConfig) (*Plan, error) {
	alts, err := FindAlternatives(list, batch, opts)
	if err != nil {
		return nil, err
	}
	return SelectCombination(alts, sel)
}

// ScheduleDirected is the single-alternative pipeline: each job (priority
// order) gets one window found by alg on the remaining slots, accepted
// while the VO budget lasts, with its allocation cut before the next job.
// With core.AMP it is the FCFS earliest-start (backfilling-like) policy;
// with core.MinCost the economy-directed one. minSlotLength controls
// remainder suppression when cutting.
func ScheduleDirected(list slots.List, batch *job.Batch, voBudget float64, alg core.Algorithm, minSlotLength float64) (*Plan, error) {
	work := list.Clone()
	plan := &Plan{}
	remaining := voBudget
	for _, j := range batch.ByPriority() {
		req := j.Request
		if voBudget > 0 && (req.MaxCost <= 0 || req.MaxCost > remaining) {
			req.MaxCost = remaining
		}
		a := Assignment{Job: j}
		w, err := alg.Find(work, &req)
		if err != nil && !errors.Is(err, core.ErrNoWindow) {
			return nil, fmt.Errorf("batchsched: directed pipeline, job %v: %w", j, err)
		}
		if err == nil && (voBudget <= 0 || w.Cost <= remaining) {
			a.Chosen = w
			plan.TotalCost += w.Cost
			plan.Scheduled++
			remaining -= w.Cost
			work = slots.Cut(work, w.UsedIntervals(), minSlotLength)
		}
		plan.Assignments = append(plan.Assignments, a)
	}
	return plan, nil
}
