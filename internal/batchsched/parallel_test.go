package batchsched

import (
	"testing"

	"slotsel/internal/csa"
	"slotsel/internal/randx"
	"slotsel/internal/testkit"
)

// TestFindAlternativesWorkersMatchSequential is the batch-level differential
// suite: for every seed, FindAlternatives with Workers 2 and 8 must return
// exactly the alternatives of the sequential path (Workers 1), job by job
// and field by field. A divergence prints the seed for reproduction.
func TestFindAlternativesWorkersMatchSequential(t *testing.T) {
	for seed := uint64(1); seed <= 120; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, rng.IntRange(4, 12), 4, 300)
		batch := testkit.RandomBatch(rng, rng.IntRange(2, 7))
		opts := csa.Options{MaxAlternatives: 3, MinSlotLength: 1}

		want, err := FindAlternatives(list, batch, Options{CSA: opts, Workers: 1})
		if err != nil {
			t.Fatalf("seed=%d: sequential FindAlternatives: %v", seed, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := FindAlternatives(list, batch, Options{CSA: opts, Workers: workers})
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d workers=%d: %d jobs, want %d", seed, workers, len(got), len(want))
			}
			for i := range want {
				if got[i].Job != want[i].Job {
					t.Errorf("seed=%d workers=%d: job order diverged at %d: %v vs %v",
						seed, workers, i, got[i].Job, want[i].Job)
				}
				gs, ws := testkit.WindowsSignature(got[i].Alts), testkit.WindowsSignature(want[i].Alts)
				if gs != ws {
					t.Errorf("seed=%d workers=%d job=%v: alternatives diverged\n got: %s\nwant: %s",
						seed, workers, want[i].Job, gs, ws)
				}
			}
		}
	}
}

// TestScheduleOptsWorkersMatchSchedule checks the end-to-end plan: both
// stages with a worker pool must produce the plan of the sequential
// scheduler, including costs, values and the chosen windows.
func TestScheduleOptsWorkersMatchSchedule(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		rng := randx.New(seed)
		list := testkit.HeteroList(rng, 8, 4, 300)
		batch := testkit.RandomBatch(rng, 5)
		opts := csa.Options{MaxAlternatives: 3, MinSlotLength: 1}
		sel := SelectConfig{Budget: 1500, Criterion: csa.ByFinish}

		want, err := Schedule(list, batch, opts, sel)
		if err != nil {
			t.Fatalf("seed=%d: Schedule: %v", seed, err)
		}
		got, err := ScheduleOpts(list, batch, Options{CSA: opts, Workers: 8}, sel)
		if err != nil {
			t.Fatalf("seed=%d: ScheduleOpts: %v", seed, err)
		}
		if got.TotalCost != want.TotalCost || got.TotalValue != want.TotalValue || got.Scheduled != want.Scheduled {
			t.Fatalf("seed=%d: plan diverged: cost %v/%v value %v/%v scheduled %d/%d",
				seed, got.TotalCost, want.TotalCost, got.TotalValue, want.TotalValue, got.Scheduled, want.Scheduled)
		}
		for i := range want.Assignments {
			gs := testkit.WindowSignature(got.Assignments[i].Chosen)
			ws := testkit.WindowSignature(want.Assignments[i].Chosen)
			if gs != ws {
				t.Fatalf("seed=%d job=%v: chosen window diverged\n got: %s\nwant: %s",
					seed, want.Assignments[i].Job, gs, ws)
			}
		}
	}
}
