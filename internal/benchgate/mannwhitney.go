package benchgate

import (
	"math"
	"sort"
)

// MannWhitney returns the two-sided p-value of the Mann-Whitney U test for
// H0: x and y are drawn from the same distribution — the location test
// benchstat applies to benchmark samples. For small tie-free samples the
// exact null distribution of the rank sum is enumerated (a subset-sum
// count over the ranks); larger or tied samples use the normal
// approximation with tie correction and continuity correction. Degenerate
// inputs (an empty sample, or every value identical across both samples)
// return 1: no evidence of a difference.
func MannWhitney(x, y []float64) float64 {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return 1
	}
	ranks, tieTerm, tied := midranks(x, y)
	// Rank sum of sample x.
	w := 0.0
	for i := 0; i < n1; i++ {
		w += ranks[i]
	}

	if !tied && n1+n2 <= 24 {
		return exactRankSumP(w, n1, n2)
	}

	// Normal approximation. The tie correction shrinks the variance by the
	// standard sum over tie groups; with every observation identical the
	// variance is 0 and the test is uninformative.
	n := float64(n1 + n2)
	mean := float64(n1) * (n + 1) / 2
	variance := float64(n1) * float64(n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if variance <= 0 {
		return 1
	}
	// Continuity correction pulls |w-mean| in by 0.5.
	z := math.Abs(w-mean) - 0.5
	if z < 0 {
		z = 0
	}
	z /= math.Sqrt(variance)
	return 2 * normalUpperTail(z)
}

// midranks ranks the pooled sample, assigning tie groups their average
// rank. Returns the ranks pooled in (x..., y...) order, the tie-correction
// term sum(t^3 - t), and whether any tie exists.
func midranks(x, y []float64) (ranks []float64, tieTerm float64, tied bool) {
	n := len(x) + len(y)
	pooled := make([]float64, 0, n)
	pooled = append(pooled, x...)
	pooled = append(pooled, y...)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pooled[idx[a]] < pooled[idx[b]] })

	ranks = make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && pooled[idx[j+1]] == pooled[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		if t := float64(j - i + 1); t > 1 {
			tied = true
			tieTerm += t*t*t - t
		}
		i = j + 1
	}
	return ranks, tieTerm, tied
}

// exactRankSumP computes the exact two-sided p-value of rank sum w for
// sample size n1 out of n1+n2 tie-free observations: the fraction of the
// C(n1+n2, n1) equally likely rank subsets whose sum is at least as
// extreme as w. counts[k][s] (built incrementally rank by rank) is the
// number of k-subsets of {1..r} summing to s.
func exactRankSumP(w float64, n1, n2 int) float64 {
	n := n1 + n2
	maxSum := n1 * (2*n - n1 + 1) / 2 // largest ranks: n-n1+1 .. n
	counts := make([][]float64, n1+1)
	for k := range counts {
		counts[k] = make([]float64, maxSum+1)
	}
	counts[0][0] = 1
	for r := 1; r <= n; r++ {
		for k := min(r, n1); k >= 1; k-- {
			row, prev := counts[k], counts[k-1]
			for s := maxSum; s >= r; s-- {
				row[s] += prev[s-r]
			}
		}
	}

	mean := float64(n1) * float64(n+1) / 2
	dev := math.Abs(w - mean)
	// Two-sided: mass of rank sums at least dev away from the mean, by the
	// symmetry of the null distribution around its mean.
	total, extreme := 0.0, 0.0
	for s, c := range counts[n1] {
		if c == 0 {
			continue
		}
		total += c
		if math.Abs(float64(s)-mean) >= dev-1e-9 {
			extreme += c
		}
	}
	return extreme / total
}

// normalUpperTail is P(Z >= z) for the standard normal, via the
// complementary error function.
func normalUpperTail(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
