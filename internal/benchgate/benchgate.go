// Package benchgate is the performance-regression gate over Go benchmark
// output: it parses benchstat-compatible `BenchmarkXxx ... ns/op` lines,
// pairs a baseline file against a current run, and flags every benchmark
// whose median moved past a threshold with statistical significance
// (two-sided Mann-Whitney U, the same test benchstat applies).
//
// The baseline is checked into the repository (results/bench_baseline.txt)
// and may have been recorded on different hardware than the run under
// test. Raw ns/op therefore carries a machine-speed factor that would
// drown real regressions in false positives, so the ns/op comparison is
// calibrated: the median new/old ratio across ALL paired benchmarks is
// taken as the machine factor, and a benchmark regresses only when its own
// ratio exceeds that shared factor by more than the threshold. A uniform
// slowdown (slower CI runner) calibrates away; one kernel getting slower
// relative to the rest of the grid does not. allocs/op is deterministic
// and machine-independent, so it is compared uncalibrated.
package benchgate

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Set holds parsed benchmark samples: benchmark name -> unit -> one value
// per repetition line.
type Set struct {
	Benchmarks map[string]map[string][]float64
}

// ParseSet reads Go benchmark output (one `Benchmark...` line per
// repetition; headers and unrelated lines are skipped) and collects the
// per-unit sample vectors.
func ParseSet(r io.Reader) (*Set, error) {
	s := &Set{Benchmarks: make(map[string]map[string][]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// fields: name, iterations, then (value, unit) pairs.
		name := trimGOMAXPROCS(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("line %d: iteration count %q: %w", lineno, fields[1], err)
		}
		if (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("line %d: odd value/unit tail", lineno)
		}
		for i := 2; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: value %q: %w", lineno, fields[i], err)
			}
			unit := fields[i+1]
			if s.Benchmarks[name] == nil {
				s.Benchmarks[name] = make(map[string][]float64)
			}
			s.Benchmarks[name][unit] = append(s.Benchmarks[name][unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// trimGOMAXPROCS drops the `-N` procs suffix Go appends to benchmark
// names, so baselines recorded at different GOMAXPROCS still pair up.
func trimGOMAXPROCS(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Options configures a comparison.
type Options struct {
	// Threshold is the fractional regression bound (0.10 = fail past +10%).
	Threshold float64

	// Alpha is the significance level for the Mann-Whitney test.
	Alpha float64

	// Units lists the units gated, in report order. A unit absent from
	// either file is skipped silently (old baselines may predate a metric).
	Units []string

	// Calibrated marks units whose cross-machine speed factor must be
	// normalized out before thresholding (time-like units).
	Calibrated map[string]bool
}

// DefaultOptions is the gate the CI job runs: >10% significant regression
// in ns/op (machine-calibrated) or allocs/op (raw).
func DefaultOptions() Options {
	return Options{
		Threshold:  0.10,
		Alpha:      0.05,
		Units:      []string{"ns/op", "allocs/op"},
		Calibrated: map[string]bool{"ns/op": true},
	}
}

// Delta is one benchmark/unit pair's comparison outcome.
type Delta struct {
	Name      string
	Unit      string
	OldMedian float64
	NewMedian float64

	// Ratio is NewMedian/OldMedian after calibration (1.0 = unchanged
	// relative to the rest of the grid).
	Ratio float64

	// P is the two-sided Mann-Whitney p-value over the raw samples.
	P float64

	Regressed bool

	// Improved mirrors Regressed on the other side: the calibrated ratio
	// moved past the threshold downward with significance. Improvements
	// never fail the gate; they feed the baseline auto-ratchet.
	Improved bool
}

// Result is a full comparison: every paired delta plus the calibration
// factors that were divided out.
type Result struct {
	Deltas []Delta

	// Factor is the per-unit machine-speed factor (median new/old ratio)
	// applied to calibrated units; 1.0 for uncalibrated units.
	Factor map[string]float64

	// Compared counts benchmark/unit pairs present in both sets.
	Compared int
}

// Regressions returns only the failing deltas.
func (r *Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Improvements returns the deltas that moved significantly past the
// threshold in the good direction.
func (r *Result) Improvements() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Improved {
			out = append(out, d)
		}
	}
	return out
}

// ShouldRatchet reports whether the current run qualifies as a
// replacement baseline: at least one significant improvement and no
// regression anywhere. Ratcheting on anything weaker would let noise
// walk the baseline downward one lucky run at a time; requiring zero
// regressions keeps a mixed run (one kernel faster, another slower)
// from laundering the slowdown into the new reference numbers.
func (r *Result) ShouldRatchet() bool {
	if len(r.Regressions()) > 0 {
		return false
	}
	return len(r.Improvements()) > 0
}

// Compare pairs old (baseline) against new (current run) per Options. A
// benchmark missing from either side is skipped: baselines are allowed to
// trail the benchmark catalogue by one PR.
func Compare(oldSet, newSet *Set, opts Options) *Result {
	res := &Result{Factor: make(map[string]float64)}
	names := make([]string, 0, len(oldSet.Benchmarks))
	for name := range oldSet.Benchmarks {
		if _, ok := newSet.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	for _, unit := range opts.Units {
		// Calibration pass: the shared machine factor is the median of the
		// per-benchmark median ratios, so a uniformly slower runner moves
		// every ratio together and cancels out of the gate below.
		factor := 1.0
		if opts.Calibrated[unit] {
			var ratios []float64
			for _, name := range names {
				om := median(oldSet.Benchmarks[name][unit])
				nm := median(newSet.Benchmarks[name][unit])
				if om > 0 && nm > 0 {
					ratios = append(ratios, nm/om)
				}
			}
			if len(ratios) > 0 {
				factor = median(ratios)
			}
		}
		res.Factor[unit] = factor

		for _, name := range names {
			olds := oldSet.Benchmarks[name][unit]
			news := newSet.Benchmarks[name][unit]
			if len(olds) == 0 || len(news) == 0 {
				continue
			}
			res.Compared++
			d := Delta{
				Name: name, Unit: unit,
				OldMedian: median(olds), NewMedian: median(news),
				P: MannWhitney(olds, news),
			}
			switch {
			case d.OldMedian == 0 && d.NewMedian == 0:
				d.Ratio = 1
			case d.OldMedian == 0:
				// 0 -> nonzero (e.g. a zero-alloc path starting to
				// allocate) is an unconditional regression of the worst
				// kind; significance still applies.
				d.Ratio = inf()
			default:
				d.Ratio = d.NewMedian / d.OldMedian / factor
			}
			d.Regressed = d.Ratio > 1+opts.Threshold && d.P < opts.Alpha
			d.Improved = d.Ratio < 1-opts.Threshold && d.P < opts.Alpha
			res.Deltas = append(res.Deltas, d)
		}
	}
	return res
}

// Gate compares two benchmark files and writes a human-readable verdict to
// w. It returns an error listing the regressions when the gate fails.
func Gate(oldR, newR io.Reader, opts Options, w io.Writer) error {
	_, err := GateResult(oldR, newR, opts, w)
	return err
}

// GateResult is Gate returning the full comparison alongside the verdict,
// for callers that act on the non-failing deltas too — the baseline
// auto-ratchet reads Improvements/ShouldRatchet off the result. The
// Result is nil when either input fails to parse or nothing paired.
func GateResult(oldR, newR io.Reader, opts Options, w io.Writer) (*Result, error) {
	oldSet, err := ParseSet(oldR)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	newSet, err := ParseSet(newR)
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if len(oldSet.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline: no benchmark lines")
	}
	if len(newSet.Benchmarks) == 0 {
		return nil, fmt.Errorf("current: no benchmark lines")
	}
	res := Compare(oldSet, newSet, opts)
	if res.Compared == 0 {
		return nil, fmt.Errorf("no benchmarks in common between baseline and current run")
	}
	for _, unit := range opts.Units {
		if opts.Calibrated[unit] {
			fmt.Fprintf(w, "benchgate: %s machine factor %.3fx (calibrated out)\n", unit, res.Factor[unit])
		}
	}
	regs := res.Regressions()
	for _, d := range regs {
		fmt.Fprintf(w, "benchgate: REGRESSION %s %s: %.4g -> %.4g (%.1f%% over grid, p=%.4f)\n",
			d.Name, d.Unit, d.OldMedian, d.NewMedian, (d.Ratio-1)*100, d.P)
	}
	imps := res.Improvements()
	for _, d := range imps {
		fmt.Fprintf(w, "benchgate: improvement %s %s: %.4g -> %.4g (%.1f%% over grid, p=%.4f)\n",
			d.Name, d.Unit, d.OldMedian, d.NewMedian, (d.Ratio-1)*100, d.P)
	}
	fmt.Fprintf(w, "benchgate: %d benchmark/unit pairs compared, %d regressed, %d improved (threshold %.0f%%, alpha %.2f)\n",
		res.Compared, len(regs), len(imps), opts.Threshold*100, opts.Alpha)
	if len(regs) > 0 {
		return res, fmt.Errorf("%d significant regressions past +%.0f%%", len(regs), opts.Threshold*100)
	}
	return res, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func inf() float64 { return math.Inf(1) }
