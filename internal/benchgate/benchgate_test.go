package benchgate

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestParseSet(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: slotsel/internal/core
BenchmarkFind/MinCost/nodes=64-8   	1	1500 ns/op	0 B/op	0 allocs/op
BenchmarkFind/MinCost/nodes=64-8   	1	1600 ns/op	0 B/op	0 allocs/op
BenchmarkCSA/nodes=64 	1	9000 ns/op
PASS
ok  	slotsel/internal/core	1.2s
`
	s, err := ParseSet(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// The -8 GOMAXPROCS suffix must be trimmed so cross-machine baselines
	// pair with runs at a different core count.
	ns := s.Benchmarks["BenchmarkFind/MinCost/nodes=64"]["ns/op"]
	if len(ns) != 2 || ns[0] != 1500 || ns[1] != 1600 {
		t.Errorf("ns/op samples = %v, want [1500 1600]", ns)
	}
	if al := s.Benchmarks["BenchmarkFind/MinCost/nodes=64"]["allocs/op"]; len(al) != 2 || al[0] != 0 {
		t.Errorf("allocs/op samples = %v", al)
	}
	if got := s.Benchmarks["BenchmarkCSA/nodes=64"]["ns/op"]; len(got) != 1 || got[0] != 9000 {
		t.Errorf("unsuffixed benchmark: %v", got)
	}
}

func TestParseSetRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX\tnotanumber\t12 ns/op\n",
		"BenchmarkX\t1\t12 ns/op trailing\n",
		"BenchmarkX\t1\tbogus ns/op\n",
	} {
		if _, err := ParseSet(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseSet(%q) accepted malformed input", bad)
		}
	}
}

// TestMannWhitney pins the test against known behavior: identical samples
// are insignificant, clearly separated samples are significant, and the
// exact small-sample path agrees with the normal approximation on a
// borderline case to within the approximation's accuracy.
func TestMannWhitney(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	if p := MannWhitney(same, same); p < 0.99 {
		t.Errorf("identical samples: p = %v, want ~1", p)
	}
	lo := []float64{10, 11, 12, 13, 14}
	hi := []float64{20, 21, 22, 23, 24}
	p := MannWhitney(lo, hi)
	// Fully separated n1=n2=5: exact two-sided p = 2/C(10,5) = 0.0079...
	if math.Abs(p-2.0/252) > 1e-9 {
		t.Errorf("separated samples: p = %v, want %v", p, 2.0/252)
	}
	if q := MannWhitney(hi, lo); q != p {
		t.Errorf("test not symmetric: %v vs %v", q, p)
	}
	// Constant samples (zero variance, all tied): uninformative, p = 1.
	if p := MannWhitney([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Errorf("all-tied samples: p = %v, want 1", p)
	}
	// Tied but separated (0-alloc baseline vs 2-alloc run at count=7):
	// the tie-corrected normal path must still reach significance.
	zeros := []float64{0, 0, 0, 0, 0, 0, 0}
	twos := []float64{2, 2, 2, 2, 2, 2, 2}
	if p := MannWhitney(zeros, twos); p >= 0.05 {
		t.Errorf("0->2 allocs at n=7: p = %v, want < 0.05", p)
	}
	if p := MannWhitney(nil, twos); p != 1 {
		t.Errorf("empty sample: p = %v, want 1", p)
	}
}

// TestMannWhitneyInterleaved pins the exact enumeration on a larger
// tie-free sample: perfectly interleaved samples (a constant +1 offset)
// carry only weak evidence of a shift — the exact two-sided p for rank sum
// 144 at n1=n2=12 is 0.7553 — and must stay far from significance.
func TestMannWhitneyInterleaved(t *testing.T) {
	x := []float64{1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23}
	y := []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}
	p := MannWhitney(x, y)
	if math.Abs(p-0.7553) > 0.001 {
		t.Errorf("interleaved samples: p = %v, want 0.7553", p)
	}
}

func benchLines(name string, unit string, vals ...float64) string {
	var b strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&b, "%s\t1\t%g %s\n", name, v, unit)
	}
	return b.String()
}

// TestCompareCalibration is the cross-machine story: a uniform 2x slowdown
// across the whole grid calibrates away, while the one benchmark that got
// 2.6x slower (1.3x past the machine factor) is flagged.
func TestCompareCalibration(t *testing.T) {
	var oldB, newB strings.Builder
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("BenchmarkFind/alg=A%d", i)
		oldB.WriteString(benchLines(name, "ns/op", 100, 101, 102, 103, 104))
		scale := 2.0 // the new machine is uniformly 2x slower
		if i == 7 {
			scale = 2.6 // ...except this kernel genuinely regressed
		}
		newB.WriteString(benchLines(name, "ns/op", 100*scale, 101*scale, 102*scale, 103*scale, 104*scale))
	}
	oldSet, _ := ParseSet(strings.NewReader(oldB.String()))
	newSet, _ := ParseSet(strings.NewReader(newB.String()))
	res := Compare(oldSet, newSet, DefaultOptions())
	if f := res.Factor["ns/op"]; f < 1.9 || f > 2.1 {
		t.Errorf("machine factor = %v, want ~2", f)
	}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkFind/alg=A7" {
		t.Fatalf("regressions = %+v, want exactly alg=A7", regs)
	}
	if r := regs[0].Ratio; r < 1.25 || r > 1.35 {
		t.Errorf("calibrated ratio = %v, want ~1.3", r)
	}
}

// TestCompareAllocsUncalibrated: allocs/op is machine-independent, so a
// 0->2 step fails the gate even when every timing is unchanged.
func TestCompareAllocsUncalibrated(t *testing.T) {
	oldTxt := benchLines("BenchmarkFind", "allocs/op", 0, 0, 0, 0, 0, 0, 0)
	newTxt := benchLines("BenchmarkFind", "allocs/op", 2, 2, 2, 2, 2, 2, 2)
	oldSet, _ := ParseSet(strings.NewReader(oldTxt))
	newSet, _ := ParseSet(strings.NewReader(newTxt))
	res := Compare(oldSet, newSet, DefaultOptions())
	regs := res.Regressions()
	if len(regs) != 1 {
		t.Fatalf("0->2 allocs/op not flagged: %+v", res.Deltas)
	}
	if regs[0].Unit != "allocs/op" {
		t.Errorf("regression unit = %q", regs[0].Unit)
	}
}

// TestCompareInsignificantNoiseIgnored: a +30% median shift with heavily
// overlapping samples must NOT fail the gate — that is the entire point of
// pairing the threshold with a significance test.
func TestCompareInsignificantNoiseIgnored(t *testing.T) {
	oldTxt := benchLines("BenchmarkA", "ns/op", 100, 400, 120, 390, 110) +
		benchLines("BenchmarkB", "ns/op", 100, 100, 100, 100, 100)
	newTxt := benchLines("BenchmarkA", "ns/op", 130, 110, 410, 100, 395) +
		benchLines("BenchmarkB", "ns/op", 100, 100, 100, 100, 100)
	oldSet, _ := ParseSet(strings.NewReader(oldTxt))
	newSet, _ := ParseSet(strings.NewReader(newTxt))
	res := Compare(oldSet, newSet, DefaultOptions())
	for _, d := range res.Regressions() {
		t.Errorf("noise flagged as regression: %+v", d)
	}
}

func TestGate(t *testing.T) {
	base := benchLines("BenchmarkA", "ns/op", 100, 101, 102, 99, 98)
	var out bytes.Buffer
	if err := Gate(strings.NewReader(base), strings.NewReader(base), DefaultOptions(), &out); err != nil {
		t.Errorf("self-comparison failed the gate: %v\n%s", err, out.String())
	}
	worse := benchLines("BenchmarkA", "ns/op", 150, 151, 152, 149, 148)
	out.Reset()
	err := Gate(strings.NewReader(base), strings.NewReader(worse), DefaultOptions(), &out)
	// A single benchmark means the machine factor IS the regression ratio,
	// so calibration absorbs it: the gate needs a grid to tell a slow
	// machine from a slow kernel. Verify the factor is reported.
	if !strings.Contains(out.String(), "machine factor") {
		t.Errorf("gate output missing calibration report:\n%s", out.String())
	}
	_ = err

	// With a grid, the one regressed benchmark fails the gate.
	grid := func(bump float64) string {
		var b strings.Builder
		for i := 0; i < 6; i++ {
			scale := 1.0
			if i == 0 {
				scale = bump
			}
			b.WriteString(benchLines(fmt.Sprintf("BenchmarkG%d", i), "ns/op",
				100*scale, 101*scale, 102*scale, 99*scale, 98*scale))
		}
		return b.String()
	}
	out.Reset()
	err = Gate(strings.NewReader(grid(1)), strings.NewReader(grid(1.5)), DefaultOptions(), &out)
	if err == nil {
		t.Fatalf("50%% regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION BenchmarkG0") {
		t.Errorf("gate output does not name the regression:\n%s", out.String())
	}

	if err := Gate(strings.NewReader(""), strings.NewReader(base), DefaultOptions(), &out); err == nil {
		t.Error("empty baseline accepted")
	}
	if err := Gate(strings.NewReader(base), strings.NewReader(benchLines("BenchmarkZZZ", "ns/op", 1)), DefaultOptions(), &out); err == nil {
		t.Error("disjoint benchmark sets accepted")
	}
}

// scaledGrid builds 6 benchmarks where per-index scale factors apply to a
// stable 5-sample baseline; unlisted indexes stay at 1.0.
func scaledGrid(scales map[int]float64) string {
	var b strings.Builder
	for i := 0; i < 6; i++ {
		scale := 1.0
		if s, ok := scales[i]; ok {
			scale = s
		}
		b.WriteString(benchLines(fmt.Sprintf("BenchmarkG%d", i), "ns/op",
			100*scale, 101*scale, 102*scale, 99*scale, 98*scale))
	}
	return b.String()
}

// TestCompareImprovements: a significant speedup past the threshold is
// marked Improved, never Regressed, and qualifies the run for a ratchet.
func TestCompareImprovements(t *testing.T) {
	oldSet, _ := ParseSet(strings.NewReader(scaledGrid(nil)))
	newSet, _ := ParseSet(strings.NewReader(scaledGrid(map[int]float64{0: 0.5})))
	res := Compare(oldSet, newSet, DefaultOptions())
	imps := res.Improvements()
	if len(imps) != 1 || imps[0].Name != "BenchmarkG0" {
		t.Fatalf("improvements = %+v, want exactly BenchmarkG0", imps)
	}
	if imps[0].Regressed {
		t.Error("an improvement is also marked Regressed")
	}
	if len(res.Regressions()) != 0 {
		t.Errorf("spurious regressions: %+v", res.Regressions())
	}
	if !res.ShouldRatchet() {
		t.Error("clean improvement did not qualify for a ratchet")
	}
}

// TestShouldRatchetRefusals: a mixed run (one kernel faster, another
// slower) and a no-change run must both refuse to become the baseline.
func TestShouldRatchetRefusals(t *testing.T) {
	oldSet, _ := ParseSet(strings.NewReader(scaledGrid(nil)))

	mixed, _ := ParseSet(strings.NewReader(scaledGrid(map[int]float64{0: 0.5, 1: 1.6})))
	res := Compare(oldSet, mixed, DefaultOptions())
	if len(res.Improvements()) == 0 || len(res.Regressions()) == 0 {
		t.Fatalf("mixed run not detected: %d improved, %d regressed",
			len(res.Improvements()), len(res.Regressions()))
	}
	if res.ShouldRatchet() {
		t.Error("mixed run (improvement + regression) qualified for a ratchet")
	}

	same, _ := ParseSet(strings.NewReader(scaledGrid(nil)))
	res = Compare(oldSet, same, DefaultOptions())
	if res.ShouldRatchet() {
		t.Error("unchanged run qualified for a ratchet")
	}

	// Insignificant noise below the threshold must not ratchet either.
	noisy, _ := ParseSet(strings.NewReader(scaledGrid(map[int]float64{0: 0.95})))
	res = Compare(oldSet, noisy, DefaultOptions())
	if res.ShouldRatchet() {
		t.Error("sub-threshold wiggle qualified for a ratchet")
	}
}

// TestGateResultSurfacesImprovements: the gate report names improvements
// (without failing) and hands back the Result the ratchet decision reads.
func TestGateResultSurfacesImprovements(t *testing.T) {
	var out bytes.Buffer
	res, err := GateResult(strings.NewReader(scaledGrid(nil)),
		strings.NewReader(scaledGrid(map[int]float64{0: 0.5})), DefaultOptions(), &out)
	if err != nil {
		t.Fatalf("improvement-only run failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "improvement BenchmarkG0") {
		t.Errorf("gate output does not name the improvement:\n%s", out.String())
	}
	if res == nil || !res.ShouldRatchet() {
		t.Errorf("GateResult did not qualify the run for a ratchet: %+v", res)
	}
}
