package env

import (
	"testing"
	"testing/quick"

	"slotsel/internal/randx"
)

func TestGenerateDefaultValid(t *testing.T) {
	e := Generate(DefaultConfig(), randx.New(1))
	if len(e.Nodes) != 100 {
		t.Fatalf("got %d nodes, want 100", len(e.Nodes))
	}
	if e.Horizon != 600 {
		t.Fatalf("horizon %g, want 600", e.Horizon)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(e.Slots) == 0 {
		t.Fatal("no slots published")
	}
}

func TestGenerateUtilizationBand(t *testing.T) {
	// Realized utilization (including suppressed short gaps) should hover
	// around the configured 10-50% band across several environments.
	rng := randx.New(2)
	sum := 0.0
	const trials = 50
	for i := 0; i < trials; i++ {
		e := Generate(DefaultConfig(), rng)
		u := e.Utilization()
		if u < 0.05 || u > 0.60 {
			t.Fatalf("utilization %g wildly out of band", u)
		}
		sum += u
	}
	if avg := sum / trials; avg < 0.15 || avg > 0.45 {
		t.Errorf("average utilization %g, want around 0.30", avg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(), randx.New(7))
	b := Generate(DefaultConfig(), randx.New(7))
	if len(a.Slots) != len(b.Slots) {
		t.Fatalf("slot counts differ: %d vs %d", len(a.Slots), len(b.Slots))
	}
	for i := range a.Slots {
		if a.Slots[i].Interval != b.Slots[i].Interval || a.Slots[i].Node.ID != b.Slots[i].Node.ID {
			t.Fatalf("slot %d differs", i)
		}
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg := DefaultConfig().WithNodeCount(25).WithHorizon(1200)
	e := Generate(cfg, randx.New(3))
	if len(e.Nodes) != 25 {
		t.Errorf("got %d nodes, want 25", len(e.Nodes))
	}
	if e.Horizon != 1200 {
		t.Errorf("horizon %g, want 1200", e.Horizon)
	}
	for _, s := range e.Slots {
		if s.End > 1200 {
			t.Fatalf("slot %v beyond horizon", s)
		}
	}
}

func TestSlotCountGrowsWithNodesAndHorizon(t *testing.T) {
	rng := randx.New(4)
	base := Generate(DefaultConfig(), rng)
	moreNodes := Generate(DefaultConfig().WithNodeCount(200), rng)
	longer := Generate(DefaultConfig().WithHorizon(1800), rng)
	if len(moreNodes.Slots) <= len(base.Slots) {
		t.Errorf("200 nodes published %d slots, 100 nodes %d", len(moreNodes.Slots), len(base.Slots))
	}
	if len(longer.Slots) <= len(base.Slots) {
		t.Errorf("interval 1800 published %d slots, 600 %d", len(longer.Slots), len(base.Slots))
	}
}

func TestMinSlotLengthRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSlotLength = 25
	e := Generate(cfg, randx.New(5))
	for _, s := range e.Slots {
		if s.Length() < 25 {
			t.Fatalf("slot %v shorter than MinSlotLength", s)
		}
	}
}

func TestZeroHorizonDefaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 0
	e := Generate(cfg, randx.New(6))
	if e.Horizon != 600 {
		t.Errorf("zero horizon not defaulted: %g", e.Horizon)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	t.Run("slot beyond horizon", func(t *testing.T) {
		e := Generate(DefaultConfig().WithNodeCount(5), randx.New(8))
		if len(e.Slots) == 0 {
			t.Skip("no slots")
		}
		e.Slots[len(e.Slots)-1].End = e.Horizon + 50
		if err := e.Validate(); err == nil {
			t.Error("slot beyond horizon passed validation")
		}
	})
	t.Run("foreign node", func(t *testing.T) {
		e := Generate(DefaultConfig().WithNodeCount(5), randx.New(9))
		if len(e.Slots) == 0 {
			t.Skip("no slots")
		}
		foreign := *e.Slots[0].Node
		e.Slots[0].Node = &foreign
		if err := e.Validate(); err == nil {
			t.Error("foreign node passed validation")
		}
	})
	t.Run("unsorted slots", func(t *testing.T) {
		e := Generate(DefaultConfig().WithNodeCount(5), randx.New(10))
		if len(e.Slots) < 2 {
			t.Skip("not enough slots")
		}
		e.Slots[0], e.Slots[len(e.Slots)-1] = e.Slots[len(e.Slots)-1], e.Slots[0]
		if err := e.Validate(); err == nil {
			t.Error("unsorted slot list passed validation")
		}
	})
}

func TestUtilizationEmptyEnvironment(t *testing.T) {
	e := &Environment{Horizon: 100}
	if got := e.Utilization(); got != 0 {
		t.Errorf("empty environment utilization %g", got)
	}
}

func TestGeneratePropertyValid(t *testing.T) {
	check := func(seed uint64, nodesRaw, horizonRaw uint8) bool {
		cfg := DefaultConfig().
			WithNodeCount(int(nodesRaw%40) + 1).
			WithHorizon(float64(horizonRaw%20)*100 + 100)
		e := Generate(cfg, randx.New(seed))
		return e.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
