// Package env ties the resource, load and slot models together into a
// distributed computing environment snapshot for one scheduling cycle: a set
// of heterogeneous CPU nodes plus the list of free slots they publish over
// the scheduling interval.
package env

import (
	"fmt"

	"slotsel/internal/load"
	"slotsel/internal/nodes"
	"slotsel/internal/randx"
	"slotsel/internal/slots"
)

// Environment is the distributed environment state for one scheduling cycle.
type Environment struct {
	// Nodes are the CPU nodes, indexed by ID.
	Nodes []*nodes.Node

	// Slots is the list of all published free slots, ordered by
	// non-decreasing start time (the AEP scan precondition).
	Slots slots.List

	// Horizon is the scheduling interval length; slots live in [0, Horizon).
	Horizon float64
}

// Config parametrizes environment generation. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Nodes configures the node generator.
	Nodes nodes.GenConfig

	// Load configures the initial (local/high-priority) load.
	Load load.Config

	// Horizon is the scheduling interval length (paper default: 600).
	Horizon float64

	// MinSlotLength suppresses published slots shorter than this. The local
	// task minimum length (10) is a natural choice: shorter gaps cannot
	// host even the smallest local job.
	MinSlotLength float64
}

// DefaultConfig reproduces §3.1: 100 nodes, performance U{2..10},
// free-market pricing, 10-50% hypergeometric initial load, interval [0,600].
func DefaultConfig() Config {
	return Config{
		Nodes:         nodes.DefaultGenConfig(),
		Load:          load.DefaultConfig(),
		Horizon:       600,
		MinSlotLength: 10,
	}
}

// WithNodeCount returns a copy of the config with the node count replaced.
func (c Config) WithNodeCount(n int) Config {
	c.Nodes.Count = n
	return c
}

// WithHorizon returns a copy of the config with the scheduling interval
// length replaced.
func (c Config) WithHorizon(h float64) Config {
	c.Horizon = h
	return c
}

// Generate draws a fresh environment snapshot. Generation is deterministic
// given rng's state.
func Generate(cfg Config, rng *randx.Rand) *Environment {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 600
	}
	ns := nodes.Generate(cfg.Nodes, rng)
	var all slots.List
	for _, n := range ns {
		busy := cfg.Load.BusyIntervals(cfg.Horizon, rng)
		all = append(all, slots.FreeSlots(n, busy, cfg.Horizon, cfg.MinSlotLength)...)
	}
	all.SortByStart()
	return &Environment{Nodes: ns, Slots: all, Horizon: cfg.Horizon}
}

// Utilization returns the fraction of the node-time capacity that is NOT
// published as free slots, i.e. the realized initial load (including
// suppressed short gaps).
func (e *Environment) Utilization() float64 {
	capacity := float64(len(e.Nodes)) * e.Horizon
	if capacity == 0 {
		return 0
	}
	return 1 - e.Slots.TotalSpan()/capacity
}

// Validate checks environment invariants: a valid slot list, slot spans
// within [0, Horizon), and slot nodes belonging to the environment.
func (e *Environment) Validate() error {
	if err := e.Slots.Validate(); err != nil {
		return err
	}
	if !e.Slots.IsSortedByStart() {
		return fmt.Errorf("env: slot list not sorted by start time")
	}
	byID := make(map[int]*nodes.Node, len(e.Nodes))
	for _, n := range e.Nodes {
		byID[n.ID] = n
	}
	for _, s := range e.Slots {
		if s.Start < 0 || s.End > e.Horizon {
			return fmt.Errorf("env: slot %v outside horizon %.2f", s, e.Horizon)
		}
		if byID[s.Node.ID] != s.Node {
			return fmt.Errorf("env: slot %v references foreign node", s)
		}
	}
	return nil
}
