package slots

import (
	"testing"
	"testing/quick"

	"slotsel/internal/nodes"
	"slotsel/internal/randx"
)

func node(id int) *nodes.Node {
	return &nodes.Node{ID: id, Perf: 4, Price: 1, RAMMB: 1024, DiskGB: 10, OS: nodes.Linux, Arch: nodes.AMD64}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Start: 2, End: 5}
	if iv.Length() != 3 {
		t.Errorf("Length = %g", iv.Length())
	}
	if !iv.Contains(Interval{Start: 3, End: 4}) {
		t.Error("Contains failed for inner interval")
	}
	if iv.Contains(Interval{Start: 1, End: 4}) {
		t.Error("Contains succeeded for overhanging interval")
	}
	if !iv.Overlaps(Interval{Start: 4, End: 9}) {
		t.Error("Overlaps failed for partial overlap")
	}
	if iv.Overlaps(Interval{Start: 5, End: 9}) {
		t.Error("touching intervals must not overlap")
	}
}

func TestMergeIntervals(t *testing.T) {
	cases := []struct {
		name string
		in   []Interval
		want []Interval
	}{
		{"empty", nil, nil},
		{"single", []Interval{{0, 5}}, []Interval{{0, 5}}},
		{"disjoint", []Interval{{6, 8}, {0, 5}}, []Interval{{0, 5}, {6, 8}}},
		{"overlapping", []Interval{{0, 5}, {3, 8}}, []Interval{{0, 8}}},
		{"touching", []Interval{{0, 5}, {5, 8}}, []Interval{{0, 8}}},
		{"nested", []Interval{{0, 10}, {2, 4}}, []Interval{{0, 10}}},
		{"drops empty", []Interval{{3, 3}, {5, 4}, {0, 1}}, []Interval{{0, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeIntervals(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestMergeIntervalsProperties(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		rng := randx.New(seed)
		n := int(nRaw % 20)
		in := make([]Interval, n)
		for i := range in {
			s := rng.FloatRange(0, 100)
			in[i] = Interval{Start: s, End: s + rng.FloatRange(-2, 20)}
		}
		out := MergeIntervals(in)
		// Sorted, disjoint, non-touching, positive length.
		for i, iv := range out {
			if iv.Length() <= 0 {
				return false
			}
			if i > 0 && out[i-1].End >= iv.Start {
				return false
			}
		}
		// Every positive input interval is covered by some output interval.
		for _, iv := range in {
			if iv.Length() <= 0 {
				continue
			}
			covered := false
			for _, ov := range out {
				if ov.Contains(iv) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFreeSlotsNoLoad(t *testing.T) {
	l := FreeSlots(node(1), nil, 100, 5)
	if len(l) != 1 {
		t.Fatalf("got %d slots, want 1", len(l))
	}
	if l[0].Start != 0 || l[0].End != 100 {
		t.Errorf("slot %v, want [0,100)", l[0])
	}
}

func TestFreeSlotsSplitsAroundBusy(t *testing.T) {
	busy := []Interval{{20, 30}, {50, 60}}
	l := FreeSlots(node(1), busy, 100, 5)
	want := []Interval{{0, 20}, {30, 50}, {60, 100}}
	if len(l) != len(want) {
		t.Fatalf("got %d slots %v, want %d", len(l), l, len(want))
	}
	for i := range want {
		if l[i].Interval != want[i] {
			t.Errorf("slot %d = %v, want %v", i, l[i].Interval, want[i])
		}
	}
}

func TestFreeSlotsSuppressesShortGaps(t *testing.T) {
	busy := []Interval{{10, 20}, {22, 90}}
	l := FreeSlots(node(1), busy, 100, 5)
	// The 2-unit gap [20,22) must be suppressed at minLength 5.
	want := []Interval{{0, 10}, {90, 100}}
	if len(l) != len(want) {
		t.Fatalf("got %v", l)
	}
	for i := range want {
		if l[i].Interval != want[i] {
			t.Errorf("slot %d = %v, want %v", i, l[i].Interval, want[i])
		}
	}
}

func TestFreeSlotsClipsToHorizon(t *testing.T) {
	busy := []Interval{{-10, 5}, {95, 200}}
	l := FreeSlots(node(1), busy, 100, 1)
	if len(l) != 1 || l[0].Interval != (Interval{5, 95}) {
		t.Fatalf("got %v, want [[5,95)]", l)
	}
}

func TestFreeSlotsFullyBusy(t *testing.T) {
	if l := FreeSlots(node(1), []Interval{{0, 100}}, 100, 1); len(l) != 0 {
		t.Fatalf("fully busy node published %v", l)
	}
}

func TestFreeSlotsProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		rng := randx.New(seed)
		n := int(nRaw % 10)
		busy := make([]Interval, n)
		for i := range busy {
			s := rng.FloatRange(0, 90)
			busy[i] = Interval{Start: s, End: s + rng.FloatRange(0, 30)}
		}
		free := FreeSlots(node(1), busy, 100, 2)
		// Free slots never overlap busy time and respect minLength.
		for _, f := range free {
			if f.Length() < 2 {
				return false
			}
			if f.Start < 0 || f.End > 100 {
				return false
			}
			for _, b := range busy {
				if b.Length() > 0 && f.Overlaps(b) {
					return false
				}
			}
		}
		return List(free).Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortByStartAndIsSorted(t *testing.T) {
	n1, n2 := node(1), node(2)
	l := List{
		{Node: n2, Interval: Interval{5, 10}},
		{Node: n1, Interval: Interval{0, 10}},
		{Node: n1, Interval: Interval{20, 30}},
		{Node: n2, Interval: Interval{0, 4}},
	}
	if l.IsSortedByStart() {
		t.Fatal("unsorted list reported sorted")
	}
	l.SortByStart()
	if !l.IsSortedByStart() {
		t.Fatal("sorted list reported unsorted")
	}
	// Deterministic tie-break: node 1 before node 2 at start 0.
	if l[0].Node.ID != 1 || l[1].Node.ID != 2 {
		t.Errorf("tie-break wrong: %v", l)
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := List{{Node: node(1), Interval: Interval{0, 10}}}
	c := l.Clone()
	c[0].End = 99
	if l[0].End != 10 {
		t.Fatal("clone shares slot structs with original")
	}
	if c[0].Node != l[0].Node {
		t.Fatal("clone must share node pointers")
	}
}

func TestTotalSpan(t *testing.T) {
	l := List{
		{Node: node(1), Interval: Interval{0, 10}},
		{Node: node(2), Interval: Interval{5, 7}},
	}
	if got := l.TotalSpan(); got != 12 {
		t.Errorf("TotalSpan = %g, want 12", got)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	n := node(1)
	l := List{
		{Node: n, Interval: Interval{0, 10}},
		{Node: n, Interval: Interval{5, 15}},
	}
	if err := l.Validate(); err == nil {
		t.Fatal("overlapping same-node slots passed validation")
	}
}

func TestValidateCatchesBadSlots(t *testing.T) {
	if err := (List{{Node: nil, Interval: Interval{0, 1}}}).Validate(); err == nil {
		t.Error("nil node passed validation")
	}
	if err := (List{{Node: node(1), Interval: Interval{5, 5}}}).Validate(); err == nil {
		t.Error("empty slot passed validation")
	}
	if err := (List{nil}).Validate(); err == nil {
		t.Error("nil slot passed validation")
	}
}

func TestSlotFitsAt(t *testing.T) {
	s := &Slot{Node: node(1), Interval: Interval{10, 40}} // perf 4
	// volume 60 -> exec 15
	if !s.FitsAt(10, 60) {
		t.Error("task should fit at slot start")
	}
	if !s.FitsAt(25, 60) {
		t.Error("task should fit ending exactly at slot end")
	}
	if s.FitsAt(26, 60) {
		t.Error("task must not overhang the slot end")
	}
	if s.FitsAt(9, 60) {
		t.Error("task must not start before the slot")
	}
}

func TestSlotCostFor(t *testing.T) {
	n := node(1)
	n.Price = 2
	s := &Slot{Node: n, Interval: Interval{0, 100}}
	if got := s.CostFor(60); got != 30 { // exec 15 x price 2
		t.Errorf("CostFor = %g, want 30", got)
	}
}

func TestSubtract(t *testing.T) {
	n := node(1)
	s := &Slot{Node: n, Interval: Interval{10, 50}}
	t.Run("middle", func(t *testing.T) {
		out := Subtract(s, Interval{20, 30}, 1)
		if len(out) != 2 || out[0].Interval != (Interval{10, 20}) || out[1].Interval != (Interval{30, 50}) {
			t.Fatalf("got %v", out)
		}
	})
	t.Run("prefix", func(t *testing.T) {
		out := Subtract(s, Interval{10, 30}, 1)
		if len(out) != 1 || out[0].Interval != (Interval{30, 50}) {
			t.Fatalf("got %v", out)
		}
	})
	t.Run("suffix", func(t *testing.T) {
		out := Subtract(s, Interval{40, 50}, 1)
		if len(out) != 1 || out[0].Interval != (Interval{10, 40}) {
			t.Fatalf("got %v", out)
		}
	})
	t.Run("whole", func(t *testing.T) {
		if out := Subtract(s, Interval{10, 50}, 1); len(out) != 0 {
			t.Fatalf("got %v", out)
		}
	})
	t.Run("no overlap keeps slot", func(t *testing.T) {
		out := Subtract(s, Interval{60, 70}, 1)
		if len(out) != 1 || out[0] != s {
			t.Fatalf("got %v", out)
		}
	})
	t.Run("short remainder suppressed", func(t *testing.T) {
		out := Subtract(s, Interval{12, 48}, 5)
		if len(out) != 0 {
			t.Fatalf("short remainders survived: %v", out)
		}
	})
}

func TestCut(t *testing.T) {
	n1, n2 := node(1), node(2)
	s1 := &Slot{Node: n1, Interval: Interval{0, 100}}
	s2 := &Slot{Node: n2, Interval: Interval{0, 100}}
	l := List{s1, s2}
	used := map[int][]Interval{n1.ID: {{10, 40}}}
	out := Cut(l, used, 5)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if !out.IsSortedByStart() {
		t.Fatal("cut result not sorted")
	}
	// s1 is split into [0,10) and [40,100); s2 untouched.
	if len(out) != 3 {
		t.Fatalf("got %d slots: %v", len(out), out)
	}
	span := out.TotalSpan()
	if span != 100+100-30 {
		t.Errorf("TotalSpan after cut = %g, want 170", span)
	}
}

func TestCutProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := randx.New(seed)
		n := node(1)
		l := List{{Node: n, Interval: Interval{0, 100}}}
		// Cut a random window out of a random slot repeatedly; the list
		// must stay valid and total span must shrink accordingly.
		for step := 0; step < 5 && len(l) > 0; step++ {
			idx := rng.Intn(len(l))
			s := l[idx]
			if s.Length() < 2 {
				break
			}
			a := rng.FloatRange(s.Start, s.End-1)
			b := rng.FloatRange(a+0.5, s.End)
			l = Cut(l, map[int][]Interval{s.Node.ID: {{a, b}}}, 1)
			if err := l.Validate(); err != nil {
				return false
			}
			if !l.IsSortedByStart() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestByNode(t *testing.T) {
	n1, n2 := node(1), node(2)
	l := List{
		{Node: n1, Interval: Interval{0, 10}},
		{Node: n2, Interval: Interval{0, 10}},
		{Node: n1, Interval: Interval{20, 30}},
	}
	m := l.ByNode()
	if len(m[1]) != 2 || len(m[2]) != 1 {
		t.Errorf("ByNode grouping wrong: %v", m)
	}
}
