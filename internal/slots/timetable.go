package slots

import (
	"fmt"
	"sort"

	"slotsel/internal/nodes"
)

// Timetable tracks per-node reservations over an absolute timeline and
// publishes the remaining free slots for any lookahead window. It is the
// bookkeeping a local resource manager performs between scheduling cycles:
// local jobs and accepted broker windows reserve node time; the free
// complement becomes the next cycle's slot list.
type Timetable struct {
	busy map[int][]Interval
}

// NewTimetable returns an empty timetable.
func NewTimetable() *Timetable {
	return &Timetable{busy: make(map[int][]Interval)}
}

// Reserve marks [iv.Start, iv.End) busy on the node. Overlapping or
// touching reservations merge. Empty intervals are ignored.
func (t *Timetable) Reserve(nodeID int, iv Interval) {
	if iv.Length() <= 0 {
		return
	}
	t.busy[nodeID] = MergeIntervals(append(t.busy[nodeID], iv))
}

// ReserveAll records a window's used intervals (as produced by
// core.Window.UsedIntervals).
func (t *Timetable) ReserveAll(used map[int][]Interval) {
	for nodeID, ivs := range used {
		for _, iv := range ivs {
			t.Reserve(nodeID, iv)
		}
	}
}

// Busy returns the merged busy intervals of a node (nil when idle). The
// returned slice must not be modified.
func (t *Timetable) Busy(nodeID int) []Interval {
	return t.busy[nodeID]
}

// BusyWithin returns the node's busy time inside [lo, hi).
func (t *Timetable) BusyWithin(nodeID int, lo, hi float64) float64 {
	total := 0.0
	for _, iv := range t.busy[nodeID] {
		s, e := iv.Start, iv.End
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			total += e - s
		}
	}
	return total
}

// IsFree reports whether the node is fully free over [iv.Start, iv.End).
func (t *Timetable) IsFree(nodeID int, iv Interval) bool {
	for _, b := range t.busy[nodeID] {
		if b.Overlaps(iv) {
			return false
		}
	}
	return true
}

// FreeSlots publishes the free slots of the given nodes over the window
// [lo, hi), suppressing slots shorter than minLength. The result is sorted
// by start time — ready for the AEP scan.
func (t *Timetable) FreeSlots(ns []*nodes.Node, lo, hi, minLength float64) List {
	var out List
	for _, n := range ns {
		cursor := lo
		emit := func(s, e float64) {
			if e-s >= minLength && e > s {
				out = append(out, &Slot{Node: n, Interval: Interval{Start: s, End: e}})
			}
		}
		for _, b := range t.busy[n.ID] {
			if b.End <= lo || b.Start >= hi {
				continue
			}
			start := b.Start
			if start < lo {
				start = lo
			}
			if start > cursor {
				emit(cursor, start)
			}
			if b.End > cursor {
				cursor = b.End
			}
		}
		if cursor < hi {
			emit(cursor, hi)
		}
	}
	out.SortByStart()
	return out
}

// Clone returns an independent copy of the timetable.
func (t *Timetable) Clone() *Timetable {
	c := NewTimetable()
	for id, ivs := range t.busy {
		c.busy[id] = append([]Interval(nil), ivs...)
	}
	return c
}

// Validate checks the structural invariants: merged (sorted, disjoint,
// non-touching) positive-length intervals per node.
func (t *Timetable) Validate() error {
	for id, ivs := range t.busy {
		if !sort.SliceIsSorted(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start }) {
			return fmt.Errorf("slots: timetable node %d intervals unsorted", id)
		}
		for i, iv := range ivs {
			if iv.Length() <= 0 {
				return fmt.Errorf("slots: timetable node %d has empty interval %v", id, iv)
			}
			if i > 0 && ivs[i-1].End >= iv.Start {
				return fmt.Errorf("slots: timetable node %d has unmerged intervals %v, %v", id, ivs[i-1], iv)
			}
		}
	}
	return nil
}
