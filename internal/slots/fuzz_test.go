package slots

import (
	"testing"
)

// The fuzz targets harden the slot calculus against arbitrary interval
// inputs; `go test` runs the seed corpus, `go test -fuzz` explores further.

func FuzzMergeIntervals(f *testing.F) {
	f.Add(0.0, 5.0, 3.0, 8.0, 10.0, 12.0)
	f.Add(5.0, 5.0, -1.0, 2.0, 2.0, 1.0)
	f.Add(-10.0, 100.0, 0.0, 0.0, 99.0, 101.0)
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2, c1, c2 float64) {
		in := []Interval{{a1, a2}, {b1, b2}, {c1, c2}}
		for _, iv := range in {
			if iv.Start != iv.Start || iv.End != iv.End { // NaN guard
				t.Skip()
			}
		}
		out := MergeIntervals(in)
		for i, iv := range out {
			if iv.Length() <= 0 {
				t.Fatalf("merged interval %v has non-positive length", iv)
			}
			if i > 0 && out[i-1].End >= iv.Start {
				t.Fatalf("merged intervals not disjoint: %v", out)
			}
		}
		// Every positive input must be covered.
		for _, iv := range in {
			if iv.Length() <= 0 {
				continue
			}
			covered := false
			for _, ov := range out {
				if ov.Contains(iv) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("input %v not covered by %v", iv, out)
			}
		}
	})
}

func FuzzSubtract(f *testing.F) {
	f.Add(0.0, 100.0, 20.0, 30.0, 5.0)
	f.Add(0.0, 100.0, -10.0, 200.0, 1.0)
	f.Add(10.0, 50.0, 50.0, 60.0, 0.0)
	f.Fuzz(func(t *testing.T, s1, s2, c1, c2, minLen float64) {
		if s1 != s1 || s2 != s2 || c1 != c1 || c2 != c2 || minLen != minLen {
			t.Skip()
		}
		if s2-s1 <= 0 || s2-s1 > 1e12 {
			t.Skip()
		}
		s := &Slot{Node: node(1), Interval: Interval{s1, s2}}
		cut := Interval{c1, c2}
		out := Subtract(s, cut, minLen)
		for _, piece := range out {
			if piece.Length() <= 0 {
				t.Fatalf("piece %v has non-positive length", piece)
			}
			if piece.Start < s.Start || piece.End > s.End {
				t.Fatalf("piece %v outside original %v", piece, s)
			}
			if cut.Length() > 0 && piece.Overlaps(cut) && !(len(out) == 1 && out[0] == s) {
				t.Fatalf("piece %v overlaps the cut %v", piece, cut)
			}
		}
	})
}

func FuzzFreeSlots(f *testing.F) {
	f.Add(100.0, 5.0, 10.0, 30.0, 50.0, 70.0)
	f.Add(600.0, 10.0, -5.0, 20.0, 590.0, 700.0)
	f.Fuzz(func(t *testing.T, horizon, minLen, b1, b2, b3, b4 float64) {
		if horizon != horizon || minLen != minLen || b1 != b1 || b2 != b2 || b3 != b3 || b4 != b4 {
			t.Skip()
		}
		if horizon <= 0 || horizon > 1e9 {
			t.Skip()
		}
		busy := []Interval{{b1, b2}, {b3, b4}}
		free := FreeSlots(node(1), busy, horizon, minLen)
		if err := List(free).Validate(); err != nil {
			t.Fatal(err)
		}
		for _, s := range free {
			if s.Start < 0 || s.End > horizon {
				t.Fatalf("slot %v outside [0, %g)", s, horizon)
			}
			if minLen > 0 && s.Length() < minLen {
				t.Fatalf("slot %v below min length %g", s, minLen)
			}
			for _, b := range busy {
				if b.Length() > 0 && s.Overlaps(b) {
					t.Fatalf("free slot %v overlaps busy %v", s, b)
				}
			}
		}
	})
}
