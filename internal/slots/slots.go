// Package slots implements the slot calculus of the distributed environment:
// a slot is a contiguous span of free time on a single CPU node, published by
// the node's local resource manager for the current scheduling interval.
//
// The package provides slot construction from busy-interval timetables,
// the ordering by non-decreasing start time required by the AEP linear scan,
// and the "cutting" operation used by CSA to remove an allocated window from
// the slot list so that successive alternatives are disjoint.
package slots

import (
	"fmt"
	"sort"

	"slotsel/internal/nodes"
)

// Interval is a half-open time span [Start, End).
type Interval struct {
	Start, End float64
}

// Length returns End-Start.
func (iv Interval) Length() float64 { return iv.End - iv.Start }

// Contains reports whether the interval fully contains other.
func (iv Interval) Contains(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether the two intervals share any positive-length span.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("[%.2f,%.2f)", iv.Start, iv.End)
}

// Slot is a free availability window on one node. Slots associated with
// different resources may have arbitrary, non-matching start and finish
// points — that misalignment is exactly what the co-allocation algorithms
// must cope with.
type Slot struct {
	// Node is the resource offering the span. Never nil.
	Node *nodes.Node

	// Interval is the free span on the node.
	Interval
}

// String implements fmt.Stringer.
func (s *Slot) String() string {
	return fmt.Sprintf("slot{node=%d %s}", s.Node.ID, s.Interval)
}

// ExecTime returns the execution time of a task of the given volume when
// placed on this slot's node.
func (s *Slot) ExecTime(volume float64) float64 {
	return s.Node.ExecTime(volume)
}

// CostFor returns the reservation cost of running a task of the given volume
// on this slot's node: exec time x per-unit price.
func (s *Slot) CostFor(volume float64) float64 {
	return s.Node.ExecTime(volume) * s.Node.Price
}

// FitsAt reports whether a task of the given volume can run on the slot
// starting exactly at time start (synchronous co-allocation start point).
func (s *Slot) FitsAt(start, volume float64) bool {
	return s.Start <= start && start+s.ExecTime(volume) <= s.End
}

// List is a collection of slots. The AEP algorithms require the list to be
// ordered by non-decreasing start time; SortByStart establishes and
// IsSortedByStart verifies that invariant.
//
// # Immutability contract
//
// Once a list is published to a search (core.Scan, any core.Algorithm,
// csa.Search, the batch scheduler), the list, the slots it points to and
// their nodes are immutable: no search mutates them, and callers must not
// either until every search over the list has returned. Everything in this
// package honors the contract — Cut and Subtract are persistent
// operations that build new slices and new slots, leaving their inputs
// (and any aliased snapshot of them) intact; Clone copies slot structs and
// shares the immutable nodes. The contract is what lets the concurrent
// engine (internal/parallel) share one list across any number of searching
// goroutines and treat old list values as free snapshots, with no
// defensive copying on the hot path.
//
// SortByStart is the one mutating method; it belongs to list
// construction, before publication.
type List []*Slot

// SortByStart orders the list by non-decreasing start time, breaking ties by
// node ID then by end time so that ordering is deterministic.
func (l List) SortByStart() {
	sort.Slice(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node.ID != b.Node.ID {
			return a.Node.ID < b.Node.ID
		}
		return a.End < b.End
	})
}

// IsSortedByStart reports whether the list satisfies the AEP scan ordering.
func (l List) IsSortedByStart() bool {
	for i := 1; i < len(l); i++ {
		if l[i].Start < l[i-1].Start {
			return false
		}
	}
	return true
}

// Clone returns a deep-enough copy: slot structs are copied, node pointers
// are shared (nodes are immutable during a scheduling cycle).
func (l List) Clone() List {
	out := make(List, len(l))
	for i, s := range l {
		c := *s
		out[i] = &c
	}
	return out
}

// TotalSpan returns the sum of slot lengths, a measure of the free capacity
// published for the scheduling interval.
func (l List) TotalSpan() float64 {
	sum := 0.0
	for _, s := range l {
		sum += s.Length()
	}
	return sum
}

// ByNode groups the slots by node ID.
func (l List) ByNode() map[int]List {
	m := make(map[int]List)
	for _, s := range l {
		m[s.Node.ID] = append(m[s.Node.ID], s)
	}
	return m
}

// Validate checks structural invariants: positive lengths, non-nil nodes,
// and per-node non-overlap. It returns the first violation found.
func (l List) Validate() error {
	for i, s := range l {
		if s == nil {
			return fmt.Errorf("slots: nil slot at index %d", i)
		}
		if s.Node == nil {
			return fmt.Errorf("slots: slot %d has nil node", i)
		}
		if s.Length() <= 0 {
			return fmt.Errorf("slots: slot %d has non-positive length: %v", i, s)
		}
	}
	for id, group := range l.ByNode() {
		g := append(List(nil), group...)
		sort.Slice(g, func(i, j int) bool { return g[i].Start < g[j].Start })
		for i := 1; i < len(g); i++ {
			if g[i-1].End > g[i].Start {
				return fmt.Errorf("slots: node %d has overlapping slots %v and %v", id, g[i-1], g[i])
			}
		}
	}
	return nil
}

// FreeSlots computes the published slots of a node from its busy intervals
// within the scheduling interval [0, horizon). Busy intervals may be
// unordered and may touch; overlapping busy intervals are merged. Gaps
// shorter than minLength are suppressed (too short to be useful: the local
// resource manager does not publish them).
func FreeSlots(node *nodes.Node, busy []Interval, horizon, minLength float64) List {
	merged := MergeIntervals(busy)
	var out List
	cursor := 0.0
	emit := func(start, end float64) {
		if end-start >= minLength && end-start > 0 {
			out = append(out, &Slot{Node: node, Interval: Interval{Start: start, End: end}})
		}
	}
	for _, b := range merged {
		if b.End <= 0 || b.Start >= horizon {
			continue
		}
		start := b.Start
		if start < 0 {
			start = 0
		}
		if start > cursor {
			emit(cursor, start)
		}
		if b.End > cursor {
			cursor = b.End
		}
	}
	if cursor < horizon {
		emit(cursor, horizon)
	}
	return out
}

// MergeIntervals returns a sorted, disjoint cover of the input intervals.
// Touching intervals are merged; empty and inverted intervals are dropped.
func MergeIntervals(in []Interval) []Interval {
	var ivs []Interval
	for _, iv := range in {
		if iv.Length() > 0 {
			ivs = append(ivs, iv)
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	var out []Interval
	for _, iv := range ivs {
		if len(out) > 0 && iv.Start <= out[len(out)-1].End {
			if iv.End > out[len(out)-1].End {
				out[len(out)-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Subtract removes the span cut from the slot and returns the remaining
// pieces (0, 1 or 2 slots). Pieces shorter than minLength are suppressed.
// If cut does not overlap the slot, the original slot is returned unchanged
// as the single piece.
func Subtract(s *Slot, cut Interval, minLength float64) List {
	if !s.Overlaps(cut) {
		return List{s}
	}
	var out List
	if left := (Interval{Start: s.Start, End: cut.Start}); left.Length() >= minLength && left.Length() > 0 {
		out = append(out, &Slot{Node: s.Node, Interval: left})
	}
	if right := (Interval{Start: cut.End, End: s.End}); right.Length() >= minLength && right.Length() > 0 {
		out = append(out, &Slot{Node: s.Node, Interval: right})
	}
	return out
}

// Cut removes the given reservations from the list: used maps a node ID to
// the intervals consumed on that node. The result is re-sorted by start
// time. Matching is by node and time overlap (not slot identity), so cutting
// works across slot-list clones — a window found on a working copy can be
// cut out of the original list.
//
// CSA uses Cut after each AMP run so the next alternative cannot reuse the
// same reserved spans, making alternatives pairwise disjoint.
func Cut(l List, used map[int][]Interval, minLength float64) List {
	out := make(List, 0, len(l))
	for _, s := range l {
		cuts := used[s.Node.ID]
		pieces := List{s}
		for _, cut := range cuts {
			var next List
			for _, p := range pieces {
				next = append(next, Subtract(p, cut, minLength)...)
			}
			pieces = next
		}
		out = append(out, pieces...)
	}
	out.SortByStart()
	return out
}
