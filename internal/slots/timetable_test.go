package slots

import (
	"testing"
	"testing/quick"

	"slotsel/internal/nodes"
	"slotsel/internal/randx"
)

func TestTimetableReserveMerges(t *testing.T) {
	tt := NewTimetable()
	tt.Reserve(1, Interval{10, 20})
	tt.Reserve(1, Interval{20, 30}) // touching: merges
	tt.Reserve(1, Interval{50, 60})
	tt.Reserve(1, Interval{0, 0}) // empty: ignored
	busy := tt.Busy(1)
	want := []Interval{{10, 30}, {50, 60}}
	if len(busy) != len(want) {
		t.Fatalf("got %v", busy)
	}
	for i := range want {
		if busy[i] != want[i] {
			t.Fatalf("got %v, want %v", busy, want)
		}
	}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimetableIsFree(t *testing.T) {
	tt := NewTimetable()
	tt.Reserve(1, Interval{10, 20})
	if !tt.IsFree(1, Interval{0, 10}) {
		t.Error("touching interval reported busy")
	}
	if tt.IsFree(1, Interval{15, 25}) {
		t.Error("overlapping interval reported free")
	}
	if !tt.IsFree(2, Interval{0, 100}) {
		t.Error("idle node reported busy")
	}
}

func TestTimetableBusyWithin(t *testing.T) {
	tt := NewTimetable()
	tt.Reserve(1, Interval{10, 30})
	tt.Reserve(1, Interval{50, 70})
	if got := tt.BusyWithin(1, 20, 60); got != 20 { // [20,30)+[50,60)
		t.Errorf("BusyWithin = %g, want 20", got)
	}
	if got := tt.BusyWithin(1, 0, 100); got != 40 {
		t.Errorf("BusyWithin full = %g, want 40", got)
	}
	if got := tt.BusyWithin(2, 0, 100); got != 0 {
		t.Errorf("idle BusyWithin = %g", got)
	}
}

func TestTimetableFreeSlots(t *testing.T) {
	n1 := &nodes.Node{ID: 1, Perf: 4, Price: 1}
	n2 := &nodes.Node{ID: 2, Perf: 4, Price: 1}
	tt := NewTimetable()
	tt.Reserve(1, Interval{120, 150})
	tt.Reserve(2, Interval{0, 500}) // node 2 fully busy before 500

	list := tt.FreeSlots([]*nodes.Node{n1, n2}, 100, 300, 10)
	if err := list.Validate(); err != nil {
		t.Fatal(err)
	}
	if !list.IsSortedByStart() {
		t.Fatal("free slots unsorted")
	}
	// node 1: [100,120) and [150,300); node 2: nothing before 300.
	if len(list) != 2 {
		t.Fatalf("got %v", list)
	}
	if list[0].Interval != (Interval{100, 120}) || list[1].Interval != (Interval{150, 300}) {
		t.Fatalf("got %v", list)
	}

	// Reservation outside the window does not affect it.
	later := tt.FreeSlots([]*nodes.Node{n2}, 500, 600, 10)
	if len(later) != 1 || later[0].Interval != (Interval{500, 600}) {
		t.Fatalf("got %v", later)
	}
}

func TestTimetableFreeSlotsSuppressesShort(t *testing.T) {
	n := &nodes.Node{ID: 1, Perf: 4, Price: 1}
	tt := NewTimetable()
	tt.Reserve(1, Interval{5, 95})
	list := tt.FreeSlots([]*nodes.Node{n}, 0, 100, 10)
	if len(list) != 0 {
		t.Fatalf("short gaps survived: %v", list)
	}
}

func TestTimetableCloneIndependent(t *testing.T) {
	tt := NewTimetable()
	tt.Reserve(1, Interval{10, 20})
	c := tt.Clone()
	c.Reserve(1, Interval{30, 40})
	if len(tt.Busy(1)) != 1 {
		t.Fatal("clone shares state with original")
	}
	if len(c.Busy(1)) != 2 {
		t.Fatal("clone lost reservation")
	}
}

func TestTimetableReserveAll(t *testing.T) {
	tt := NewTimetable()
	tt.ReserveAll(map[int][]Interval{
		1: {{0, 10}, {20, 30}},
		2: {{5, 15}},
	})
	if len(tt.Busy(1)) != 2 || len(tt.Busy(2)) != 1 {
		t.Fatalf("ReserveAll wrong: %v / %v", tt.Busy(1), tt.Busy(2))
	}
}

func TestTimetableZeroLengthReservations(t *testing.T) {
	tt := NewTimetable()
	tt.Reserve(1, Interval{10, 10}) // zero length: ignored
	tt.Reserve(1, Interval{20, 15}) // negative length: ignored
	tt.Reserve(1, Interval{30, 30}) // zero length again
	if busy := tt.Busy(1); len(busy) != 0 {
		t.Fatalf("degenerate reservations were recorded: %v", busy)
	}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// A degenerate reservation between two real ones must not bridge them.
	tt.Reserve(1, Interval{0, 10})
	tt.Reserve(1, Interval{10, 10})
	tt.Reserve(1, Interval{20, 30})
	if busy := tt.Busy(1); len(busy) != 2 {
		t.Fatalf("zero-length reservation changed the busy set: %v", busy)
	}
	// Zero-length queries: free at a boundary point (half-open — no time
	// in common), conservatively busy strictly inside a busy span.
	if !tt.IsFree(1, Interval{10, 10}) {
		t.Error("zero-length interval at a busy-span boundary reported busy")
	}
	if tt.IsFree(1, Interval{5, 5}) {
		t.Error("zero-length interval strictly inside a busy span reported free")
	}
}

func TestTimetableAdjacentTouchingWindows(t *testing.T) {
	// Half-open semantics: back-to-back reservations [0,10) [10,20) [20,30)
	// are pairwise non-overlapping — the canonical "touching never
	// conflicts" invariant the inventory relies on.
	tt := NewTimetable()
	tt.Reserve(1, Interval{0, 10})
	tt.Reserve(2, Interval{0, 10})
	if !tt.IsFree(1, Interval{10, 20}) {
		t.Fatal("adjacent window [10,20) reported busy next to [0,10)")
	}
	tt.Reserve(1, Interval{10, 20})
	tt.Reserve(1, Interval{20, 30})
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// The three merge into one span: no gaps, no double counting.
	if busy := tt.Busy(1); len(busy) != 1 || busy[0] != (Interval{0, 30}) {
		t.Fatalf("touching reservations did not merge cleanly: %v", busy)
	}
	if got := tt.BusyWithin(1, 0, 30); got != 30 {
		t.Fatalf("BusyWithin = %g, want 30 (no double counting at joints)", got)
	}
	// Node 2 is independent: only its own [0,10) is busy.
	if !tt.IsFree(2, Interval{10, 30}) {
		t.Fatal("node 2 affected by node 1 reservations")
	}
	// FreeSlots around a merged block has exact boundaries.
	n := &nodes.Node{ID: 1, Perf: 4, Price: 1}
	free := tt.FreeSlots([]*nodes.Node{n}, 0, 100, 0)
	if len(free) != 1 || free[0].Interval != (Interval{30, 100}) {
		t.Fatalf("free slots around touching block: %v", free)
	}
}

func TestTimetableFreeComplementProperty(t *testing.T) {
	// Free slots and busy intervals must tile the window exactly when no
	// minimum length suppression applies.
	check := func(seed uint64, nRaw uint8) bool {
		rng := randx.New(seed)
		tt := NewTimetable()
		n := &nodes.Node{ID: 1, Perf: 4, Price: 1}
		count := int(nRaw % 8)
		for i := 0; i < count; i++ {
			s := rng.FloatRange(0, 90)
			tt.Reserve(1, Interval{Start: s, End: s + rng.FloatRange(0.5, 20)})
		}
		if tt.Validate() != nil {
			return false
		}
		free := tt.FreeSlots([]*nodes.Node{n}, 0, 100, 0)
		freeSpan := free.TotalSpan()
		busySpan := tt.BusyWithin(1, 0, 100)
		if diff := freeSpan + busySpan - 100; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		// Free slots never overlap busy time.
		for _, f := range free {
			if !tt.IsFree(1, f.Interval) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
