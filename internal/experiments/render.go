package experiments

import (
	"fmt"
	"io"

	"slotsel/internal/tablefmt"
)

// RenderFigure writes one quality figure (bar chart plus numeric table) to w.
func (r *QualityResult) RenderFigure(w io.Writer, m FigureMetric, paperLabel string) {
	chart := tablefmt.NewBarChart(fmt.Sprintf("%s — %s (cycles=%d)", paperLabel, m, r.Config.Cycles), "")
	for _, v := range r.Figure(m) {
		chart.Add(v.Algorithm, v.Mean)
	}
	chart.Render(w)
	t := tablefmt.New("algorithm", "mean", "stddev", "found")
	for _, v := range r.Figure(m) {
		t.AddRow(v.Algorithm, fmt.Sprintf("%.1f", v.Mean), fmt.Sprintf("%.1f", v.StdDev), fmt.Sprintf("%d", v.Count))
	}
	t.Render(w)
	fmt.Fprintln(w)
}

// RenderSummary writes the per-algorithm aggregates across all metrics plus
// the CSA statistics to w.
func (r *QualityResult) RenderSummary(w io.Writer) {
	fmt.Fprintf(w, "quality study: %d cycles, %d nodes, interval [0,%.0f), job n=%d vol=%g S=%g\n",
		r.Config.Cycles, r.Config.Env.Nodes.Count, r.Config.Env.Horizon,
		r.Config.Request.TaskCount, r.Config.Request.Volume, r.Config.Request.MaxCost)
	fmt.Fprintf(w, "CSA average alternatives per cycle: %.1f (missed cycles: %d)\n\n",
		r.CSA.Alternatives.Mean(), r.CSA.Missed)
	t := tablefmt.New("algorithm", "start", "runtime", "finish", "cpu-time", "cost", "found", "missed")
	addRow := func(s *WindowStats) {
		t.AddRow(s.Name,
			fmt.Sprintf("%.1f", s.Start.Mean()),
			fmt.Sprintf("%.1f", s.Runtime.Mean()),
			fmt.Sprintf("%.1f", s.Finish.Mean()),
			fmt.Sprintf("%.1f", s.ProcTime.Mean()),
			fmt.Sprintf("%.1f", s.Cost.Mean()),
			fmt.Sprintf("%d", s.Found),
			fmt.Sprintf("%d", s.Missed))
	}
	for _, s := range r.Algos {
		addRow(s)
	}
	for _, c := range AllCriteria {
		addRow(r.CSA.BestWindows[c])
	}
	t.Render(w)
	fmt.Fprintln(w)
}

// RenderTable writes a timing sweep in the layout of the paper's Tables 1-2:
// one column per sweep value, rows for slot counts, CSA alternative counts,
// CSA per-alternative time and per-algorithm times (in milliseconds).
func (r *TimingResult) RenderTable(w io.Writer, title string) {
	fmt.Fprintf(w, "%s (cycles per point: %d)\n", title, r.Config.Cycles)
	header := []string{r.SweepLabel + ":"}
	for _, p := range r.Points {
		header = append(header, fmt.Sprintf("%.0f", p.Param))
	}
	t := tablefmt.New(header...)

	row := func(label string, f func(p *TimingPoint) float64, verb string) {
		cells := []string{label}
		for _, p := range r.Points {
			cells = append(cells, fmt.Sprintf(verb, f(p)))
		}
		t.AddRow(cells...)
	}
	row("Number of slots", func(p *TimingPoint) float64 { return p.SlotCount.Mean() }, "%.1f")
	row("CSA: Alternatives Num", func(p *TimingPoint) float64 { return p.CSAAlternatives.Mean() }, "%.1f")
	row("CSA per Alt (ms)", func(p *TimingPoint) float64 { return p.CSAPerAlternative() * 1e3 }, "%.4f")
	for _, name := range TimedAlgoNames {
		name := name
		row(name+" (ms)", func(p *TimingPoint) float64 { return p.AlgoSeconds[name].Mean() * 1e3 }, "%.4f")
	}
	t.Render(w)
	fmt.Fprintln(w)
}

// RenderCurves writes the Fig. 5 / Fig. 6 view of a timing sweep: one ASCII
// bar series per algorithm across the sweep values.
func (r *TimingResult) RenderCurves(w io.Writer, title string, includeCSA bool) {
	fmt.Fprintln(w, title)
	for _, name := range TimedAlgoNames {
		if name == "CSA" && !includeCSA {
			// The paper's Fig. 5 omits the CSA curve: its working time is
			// incomparably longer than the AEP-like algorithms'.
			continue
		}
		chart := tablefmt.NewBarChart(fmt.Sprintf("  %s working time (ms) vs %s", name, r.SweepLabel), " ms")
		for _, p := range r.Points {
			chart.Add(fmt.Sprintf("%.0f", p.Param), p.AlgoSeconds[name].Mean()*1e3)
		}
		chart.Render(w)
	}
	fmt.Fprintln(w)
}

// RenderAblation writes one ablation study to w.
func RenderAblation(w io.Writer, res *AblationResult) {
	fmt.Fprintln(w, res.Title)
	t := tablefmt.New("variant", "runtime", "cost", "start", "found", "missed")
	for _, row := range res.Rows {
		t.AddRow(row.Variant,
			fmt.Sprintf("%.2f", row.Runtime.Mean()),
			fmt.Sprintf("%.1f", row.Cost.Mean()),
			fmt.Sprintf("%.1f", row.Start.Mean()),
			fmt.Sprintf("%d", row.Found),
			fmt.Sprintf("%d", row.Missed))
	}
	t.Render(w)
	fmt.Fprintln(w)
}
