package experiments

import (
	"fmt"
	"io"

	"slotsel/internal/batchsched"
	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/env"
	"slotsel/internal/execsim"
	"slotsel/internal/metrics"
	"slotsel/internal/obs"
	"slotsel/internal/randx"
	"slotsel/internal/tablefmt"
	"slotsel/internal/workload"
)

// The batch study exercises the complete two-stage scheduling scheme the
// paper's algorithms were designed for ([6, 7] of the paper): stage-1
// alternative search (CSA) followed by stage-2 combination selection under a
// VO budget, compared against a directed single-alternative pipeline. Every
// resulting plan is verified executable by replaying it on the environment.

// BatchStudyConfig parametrizes the batch study.
type BatchStudyConfig struct {
	Cycles int
	Seed   uint64
	Env    env.Config

	// Jobs is the number of jobs per batch.
	Jobs int

	// VOBudget is the whole-batch budget for stage 2.
	VOBudget float64

	// MaxAlternatives bounds the per-job CSA search.
	MaxAlternatives int

	// Workers runs the stage-1 alternative search of the CSA pipeline on
	// the speculative worker pool (0/1 = sequential, negative = GOMAXPROCS).
	// Any value yields the same plans; only wall-clock time changes.
	Workers int

	// Collector receives instrumentation events from all three pipelines
	// (scan counters, batch/speculation stats, spans). nil means
	// observability off.
	Collector obs.Collector
}

// DefaultBatchStudyConfig returns a medium batch workload on the §3.1
// environment.
func DefaultBatchStudyConfig() BatchStudyConfig {
	return BatchStudyConfig{
		Cycles:          200,
		Seed:            1,
		Env:             env.DefaultConfig(),
		Jobs:            6,
		VOBudget:        6000,
		MaxAlternatives: 15,
	}
}

// BatchPipelineStats aggregates one scheduling pipeline's outcomes.
type BatchPipelineStats struct {
	Name       string
	Scheduled  metrics.Accumulator // jobs scheduled per cycle
	TotalCost  metrics.Accumulator
	Makespan   metrics.Accumulator
	ReplayFail int // plans that failed execution replay (must stay 0)
}

// BatchStudyResult is the outcome of the batch study.
type BatchStudyResult struct {
	Config    BatchStudyConfig
	Pipelines []*BatchPipelineStats
}

// RunBatchStudy compares the CSA-based two-stage pipeline against two
// directed single-alternative pipelines: stage 1 = one MinCost window per
// job (economy-directed), and stage 1 = one AMP earliest-start window per
// job — the backfilling-like FCFS policy of classic schedulers the paper's
// related work discusses. Per the paper's conclusion, the directed
// alternative search at the first stage visibly shifts the final
// distribution.
func RunBatchStudy(cfg BatchStudyConfig) (*BatchStudyResult, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: batch study needs positive cycles")
	}
	csaPipe := &BatchPipelineStats{Name: "CSA alternatives + DP selection"}
	directed := &BatchPipelineStats{Name: "directed MinCost single alternative"}
	fcfs := &BatchPipelineStats{Name: "FCFS earliest-start (backfilling-like)"}
	res := &BatchStudyResult{Config: cfg, Pipelines: []*BatchPipelineStats{csaPipe, directed, fcfs}}

	mix := workload.DefaultMix()
	rng := randx.New(cfg.Seed)
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		e := env.Generate(cfg.Env, rng)
		batch := mix.Batch(rng, cfg.Jobs)

		// Pipeline A: the full two-stage scheme, stage 1 on the worker pool.
		plan, err := batchsched.ScheduleOpts(e.Slots, batch,
			batchsched.Options{
				CSA:       csa.Options{MinSlotLength: cfg.Env.MinSlotLength, MaxAlternatives: cfg.MaxAlternatives},
				Workers:   cfg.Workers,
				Collector: cfg.Collector,
			},
			batchsched.SelectConfig{Budget: cfg.VOBudget, Criterion: csa.ByFinish})
		if err != nil {
			return nil, fmt.Errorf("experiments: batch study CSA pipeline: %w", err)
		}
		observeBatchPlan(csaPipe, e, plan)

		// Pipeline B: directed search — one MinCost window per job in
		// priority order, cutting each allocation, then the same VO budget
		// applied greedily in priority order.
		dPlan, err := batchsched.ScheduleDirected(e.Slots, batch, cfg.VOBudget,
			core.Instrument(core.MinCost{}, cfg.Collector), cfg.Env.MinSlotLength)
		if err != nil {
			return nil, fmt.Errorf("experiments: batch study directed pipeline: %w", err)
		}
		observeBatchPlan(directed, e, dPlan)

		// Pipeline C: FCFS earliest-start, the backfilling-like policy.
		fPlan, err := batchsched.ScheduleDirected(e.Slots, batch, cfg.VOBudget,
			core.Instrument(core.AMP{}, cfg.Collector), cfg.Env.MinSlotLength)
		if err != nil {
			return nil, fmt.Errorf("experiments: batch study FCFS pipeline: %w", err)
		}
		observeBatchPlan(fcfs, e, fPlan)
	}
	return res, nil
}

func observeBatchPlan(stats *BatchPipelineStats, e *env.Environment, plan *batchsched.Plan) {
	stats.Scheduled.Add(float64(plan.Scheduled))
	if plan.Scheduled > 0 {
		stats.TotalCost.Add(plan.TotalCost)
		stats.Makespan.Add(plan.Makespan())
	}
	var chosen []*core.Window
	for _, a := range plan.Assignments {
		chosen = append(chosen, a.Chosen)
	}
	if _, err := execsim.ReplayPlan(e, chosen); err != nil {
		stats.ReplayFail++
	}
}

// RenderBatchStudy writes the study's comparison table.
func (r *BatchStudyResult) Render(w io.Writer) {
	fmt.Fprintf(w, "batch study: %d cycles, %d jobs/batch, VO budget %.0f\n",
		r.Config.Cycles, r.Config.Jobs, r.Config.VOBudget)
	t := tablefmt.New("pipeline", "scheduled", "total cost", "makespan", "replay failures")
	for _, p := range r.Pipelines {
		t.AddRow(p.Name,
			fmt.Sprintf("%.2f", p.Scheduled.Mean()),
			fmt.Sprintf("%.1f", p.TotalCost.Mean()),
			fmt.Sprintf("%.1f", p.Makespan.Mean()),
			fmt.Sprintf("%d", p.ReplayFail))
	}
	t.Render(w)
	fmt.Fprintln(w)
}
