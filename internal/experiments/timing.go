package experiments

import (
	"errors"
	"fmt"
	"time"

	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/env"
	"slotsel/internal/job"
	"slotsel/internal/metrics"
	"slotsel/internal/randx"
)

// TimingConfig parametrizes the working-time studies of Tables 1-2 and
// Figs. 5-6: the algorithms' measured wall time as a function of the CPU
// node count (Table 1 / Fig. 5) or of the scheduling interval length
// (Table 2 / Fig. 6).
type TimingConfig struct {
	// Cycles is the number of measured experiments per sweep point
	// (paper: 1000).
	Cycles int

	// Seed drives all randomness.
	Seed uint64

	// Env is the base environment configuration; the sweep overrides the
	// node count or the horizon.
	Env env.Config

	// Request is the base job.
	Request job.Request

	// NodeCounts is the Table 1 sweep (paper: 50, 100, 200, 300, 400).
	NodeCounts []int

	// Horizons is the Table 2 sweep (paper: 600..3600 step 600).
	Horizons []float64
}

// DefaultTimingConfig returns the §3.2 timing setup.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		Cycles:     1000,
		Seed:       1,
		Env:        env.DefaultConfig(),
		Request:    job.DefaultRequest(),
		NodeCounts: []int{50, 100, 200, 300, 400},
		Horizons:   []float64{600, 1200, 1800, 2400, 3000, 3600},
	}
}

// TimedAlgoNames lists the measured algorithms in the paper's table order;
// CSA is measured separately because of its alternative bookkeeping.
var TimedAlgoNames = []string{"CSA", "AMP", "MinRunTime", "MinFinish", "MinProcTime", "MinCost"}

// TimingPoint aggregates one sweep point.
type TimingPoint struct {
	// Param is the sweep value: node count or interval length.
	Param float64

	// SlotCount is the published slot count distribution.
	SlotCount metrics.Accumulator

	// CSAAlternatives is the per-experiment alternatives count found by
	// CSA ("CSA: Alternatives Num" row).
	CSAAlternatives metrics.Accumulator

	// AlgoSeconds maps algorithm name to its measured working time in
	// seconds per experiment.
	AlgoSeconds map[string]*metrics.Accumulator
}

// CSAPerAlternative returns the average CSA working time divided by the
// average alternatives count ("CSA per Alt" row), in seconds.
func (p *TimingPoint) CSAPerAlternative() float64 {
	alts := p.CSAAlternatives.Mean()
	if alts == 0 {
		return 0
	}
	return p.AlgoSeconds["CSA"].Mean() / alts
}

// TimingResult is the outcome of one sweep.
type TimingResult struct {
	Config TimingConfig
	// SweepLabel names the swept parameter ("CPU nodes" or "interval").
	SweepLabel string
	Points     []*TimingPoint
}

// RunNodeSweep reproduces Table 1 / Fig. 5: working time vs CPU node count.
func RunNodeSweep(cfg TimingConfig) (*TimingResult, error) {
	res := &TimingResult{Config: cfg, SweepLabel: "CPU nodes"}
	for _, n := range cfg.NodeCounts {
		pt, err := runTimingPoint(cfg, cfg.Env.WithNodeCount(n), float64(n))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// RunIntervalSweep reproduces Table 2 / Fig. 6: working time vs scheduling
// interval length.
func RunIntervalSweep(cfg TimingConfig) (*TimingResult, error) {
	res := &TimingResult{Config: cfg, SweepLabel: "interval length"}
	for _, h := range cfg.Horizons {
		pt, err := runTimingPoint(cfg, cfg.Env.WithHorizon(h), h)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func runTimingPoint(cfg TimingConfig, envCfg env.Config, param float64) (*TimingPoint, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: timing study needs positive cycles, got %d", cfg.Cycles)
	}
	pt := &TimingPoint{Param: param, AlgoSeconds: make(map[string]*metrics.Accumulator)}
	for _, name := range TimedAlgoNames {
		pt.AlgoSeconds[name] = &metrics.Accumulator{}
	}
	rng := randx.New(cfg.Seed ^ uint64(param)*0x9e3779b9)
	algs := standardAlgorithms(cfg.Seed ^ 0x7133)
	csaOpts := csa.Options{MinSlotLength: envCfg.MinSlotLength}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		e := env.Generate(envCfg, rng)
		pt.SlotCount.Add(float64(len(e.Slots)))
		req := cfg.Request

		for _, a := range algs {
			start := time.Now()
			_, err := a.Find(e.Slots, &req)
			elapsed := time.Since(start).Seconds()
			if err != nil && !errors.Is(err, core.ErrNoWindow) {
				return nil, fmt.Errorf("experiments: timing %s: %w", a.Name(), err)
			}
			pt.AlgoSeconds[a.Name()].Add(elapsed)
		}

		start := time.Now()
		alts, err := csa.Search(e.Slots, &req, csaOpts)
		elapsed := time.Since(start).Seconds()
		if err != nil && !errors.Is(err, core.ErrNoWindow) {
			return nil, fmt.Errorf("experiments: timing CSA: %w", err)
		}
		pt.AlgoSeconds["CSA"].Add(elapsed)
		pt.CSAAlternatives.Add(float64(len(alts)))
	}
	return pt, nil
}
