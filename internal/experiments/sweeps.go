package experiments

import (
	"errors"
	"fmt"
	"io"

	"slotsel/internal/core"
	"slotsel/internal/env"
	"slotsel/internal/job"
	"slotsel/internal/metrics"
	"slotsel/internal/randx"
	"slotsel/internal/tablefmt"
)

// The extension sweeps: experiments beyond the paper's figures that probe
// the design space its discussion opens — how the algorithms scale with the
// job's parallelism (task count) and how the user budget trades cost against
// runtime (the economic-scheduling frontier).

// SweepConfig parametrizes the extension sweeps.
type SweepConfig struct {
	Cycles  int
	Seed    uint64
	Env     env.Config
	Request job.Request

	// TaskCounts is the parallelism sweep (default 2..10).
	TaskCounts []int

	// Budgets is the budget-frontier sweep, as absolute cost limits.
	Budgets []float64
}

// DefaultSweepConfig returns the extension-sweep setup: the §3.1 base
// workload with task counts 2..10 and budgets from starvation to generous.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Cycles:     500,
		Seed:       1,
		Env:        env.DefaultConfig(),
		Request:    job.DefaultRequest(),
		TaskCounts: []int{2, 3, 4, 5, 6, 7, 8, 9, 10},
		Budgets:    []float64{800, 1000, 1200, 1500, 2000, 2500, 3000, 4000},
	}
}

// SweepPoint aggregates one sweep value for one algorithm.
type SweepPoint struct {
	Param   float64
	Found   int
	Missed  int
	Start   metrics.Accumulator
	Runtime metrics.Accumulator
	Finish  metrics.Accumulator
	Cost    metrics.Accumulator
}

// SweepResult is one algorithm's curve over the sweep.
type SweepResult struct {
	Algorithm string
	Points    []*SweepPoint
}

// RunTaskCountSweep measures how window quality and feasibility react to
// the job's parallelism n. The budget scales linearly with n (the paper's
// S = F*t*n formula), isolating the co-allocation pressure itself.
func RunTaskCountSweep(cfg SweepConfig) ([]*SweepResult, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: sweep needs positive cycles")
	}
	perTaskBudget := cfg.Request.MaxCost / float64(cfg.Request.TaskCount)
	algs := []core.Algorithm{core.AMP{}, core.MinCost{}, core.MinRunTime{}, core.MinFinish{}}
	results := make([]*SweepResult, len(algs))
	for i, a := range algs {
		results[i] = &SweepResult{Algorithm: a.Name()}
	}
	for _, n := range cfg.TaskCounts {
		points := make([]*SweepPoint, len(algs))
		for i := range points {
			points[i] = &SweepPoint{Param: float64(n)}
			results[i].Points = append(results[i].Points, points[i])
		}
		rng := randx.New(cfg.Seed ^ uint64(n)*0x9e3779b9)
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			e := env.Generate(cfg.Env, rng)
			req := cfg.Request
			req.TaskCount = n
			req.MaxCost = perTaskBudget * float64(n)
			for i, a := range algs {
				w, err := a.Find(e.Slots, &req)
				if errors.Is(err, core.ErrNoWindow) {
					points[i].Missed++
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("experiments: task sweep %s: %w", a.Name(), err)
				}
				points[i].Found++
				points[i].Start.Add(w.Start)
				points[i].Runtime.Add(w.Runtime)
				points[i].Finish.Add(w.Finish())
				points[i].Cost.Add(w.Cost)
			}
		}
	}
	return results, nil
}

// RunBudgetFrontier measures the cost-runtime frontier: for each budget
// level, the runtime MinRunTime can buy and the cost MinCost pays. It
// quantifies the economic trade-off the paper's §3.3 discussion describes
// (MinFinish spending nearly the whole budget vs MinCost's 43% saving).
func RunBudgetFrontier(cfg SweepConfig) ([]*SweepResult, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: sweep needs positive cycles")
	}
	algs := []core.Algorithm{core.MinRunTime{}, core.MinCost{}, core.MinFinish{}}
	results := make([]*SweepResult, len(algs))
	for i, a := range algs {
		results[i] = &SweepResult{Algorithm: a.Name()}
	}
	for _, budget := range cfg.Budgets {
		points := make([]*SweepPoint, len(algs))
		for i := range points {
			points[i] = &SweepPoint{Param: budget}
			results[i].Points = append(results[i].Points, points[i])
		}
		rng := randx.New(cfg.Seed ^ uint64(budget)*0x85ebca6b)
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			e := env.Generate(cfg.Env, rng)
			req := cfg.Request
			req.MaxCost = budget
			for i, a := range algs {
				w, err := a.Find(e.Slots, &req)
				if errors.Is(err, core.ErrNoWindow) {
					points[i].Missed++
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("experiments: budget sweep %s: %w", a.Name(), err)
				}
				points[i].Found++
				points[i].Start.Add(w.Start)
				points[i].Runtime.Add(w.Runtime)
				points[i].Finish.Add(w.Finish())
				points[i].Cost.Add(w.Cost)
			}
		}
	}
	return results, nil
}

// RunHeterogeneitySweep measures the effect of resource heterogeneity: the
// node performance range widens from homogeneous (all perf = 6) to the full
// §3.1 spread [2, 10] while the mean stays fixed. The paper claims its
// algorithms serve "both homogeneous and heterogeneous resources"; this
// sweep quantifies what heterogeneity does to each criterion.
func RunHeterogeneitySweep(cfg SweepConfig) ([]*SweepResult, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: sweep needs positive cycles")
	}
	algs := []core.Algorithm{core.AMP{}, core.MinCost{}, core.MinRunTime{}, core.MinFinish{}}
	results := make([]*SweepResult, len(algs))
	for i, a := range algs {
		results[i] = &SweepResult{Algorithm: a.Name()}
	}
	// Half-widths 0..4 around the mean performance 6.
	for _, halfWidth := range []int{0, 1, 2, 3, 4} {
		points := make([]*SweepPoint, len(algs))
		for i := range points {
			points[i] = &SweepPoint{Param: float64(halfWidth)}
			results[i].Points = append(results[i].Points, points[i])
		}
		envCfg := cfg.Env
		envCfg.Nodes.PerfMin = 6 - halfWidth
		envCfg.Nodes.PerfMax = 6 + halfWidth
		rng := randx.New(cfg.Seed ^ uint64(halfWidth+1)*0xc2b2ae35)
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			e := env.Generate(envCfg, rng)
			req := cfg.Request
			for i, a := range algs {
				w, err := a.Find(e.Slots, &req)
				if errors.Is(err, core.ErrNoWindow) {
					points[i].Missed++
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("experiments: heterogeneity sweep %s: %w", a.Name(), err)
				}
				points[i].Found++
				points[i].Start.Add(w.Start)
				points[i].Runtime.Add(w.Runtime)
				points[i].Finish.Add(w.Finish())
				points[i].Cost.Add(w.Cost)
			}
		}
	}
	return results, nil
}

// RunDeadlineSweep measures feasibility and quality under a tightening
// finish deadline — the "additional restrictions" hook of §2.1. Deadlines
// sweep from the full interval down to barely above the fastest possible
// execution; found% collapses as the deadline crosses each algorithm's
// achievable finish time.
func RunDeadlineSweep(cfg SweepConfig) ([]*SweepResult, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: sweep needs positive cycles")
	}
	algs := []core.Algorithm{core.AMP{}, core.MinCost{}, core.MinRunTime{}, core.MinFinish{}}
	results := make([]*SweepResult, len(algs))
	for i, a := range algs {
		results[i] = &SweepResult{Algorithm: a.Name()}
	}
	deadlines := []float64{cfg.Env.Horizon, cfg.Env.Horizon / 2, 150, 80, 50, 30, 20}
	for _, deadline := range deadlines {
		points := make([]*SweepPoint, len(algs))
		for i := range points {
			points[i] = &SweepPoint{Param: deadline}
			results[i].Points = append(results[i].Points, points[i])
		}
		rng := randx.New(cfg.Seed ^ uint64(deadline)*0x27d4eb2f)
		for cycle := 0; cycle < cfg.Cycles; cycle++ {
			e := env.Generate(cfg.Env, rng)
			req := cfg.Request
			req.Deadline = deadline
			for i, a := range algs {
				w, err := a.Find(e.Slots, &req)
				if errors.Is(err, core.ErrNoWindow) {
					points[i].Missed++
					continue
				}
				if err != nil {
					return nil, fmt.Errorf("experiments: deadline sweep %s: %w", a.Name(), err)
				}
				points[i].Found++
				points[i].Start.Add(w.Start)
				points[i].Runtime.Add(w.Runtime)
				points[i].Finish.Add(w.Finish())
				points[i].Cost.Add(w.Cost)
			}
		}
	}
	return results, nil
}

// RenderSweep writes sweep curves as a table: one row per sweep value, one
// column group per algorithm.
func RenderSweep(w io.Writer, title, paramLabel string, results []*SweepResult, metric func(*SweepPoint) float64, metricLabel string) {
	fmt.Fprintln(w, title)
	header := []string{paramLabel}
	for _, r := range results {
		header = append(header, r.Algorithm+" "+metricLabel, r.Algorithm+" found%")
	}
	t := tablefmt.New(header...)
	if len(results) == 0 || len(results[0].Points) == 0 {
		t.Render(w)
		return
	}
	for pi := range results[0].Points {
		cells := []string{fmt.Sprintf("%.0f", results[0].Points[pi].Param)}
		for _, r := range results {
			p := r.Points[pi]
			total := p.Found + p.Missed
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(p.Found) / float64(total)
			}
			cells = append(cells, fmt.Sprintf("%.1f", metric(p)), fmt.Sprintf("%.0f", pct))
		}
		t.AddRow(cells...)
	}
	t.Render(w)
	fmt.Fprintln(w)
}
