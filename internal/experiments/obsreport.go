package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"slotsel/internal/metrics"
	"slotsel/internal/obs"
	"slotsel/internal/tablefmt"
)

// ObsAgg is an obs.Collector that aggregates instrumentation events into
// metrics.Accumulator distributions, so experiment runs can report not just
// the scheduling outcomes but the work the searches performed — per-scan
// slot/candidate/visit counts, per-algorithm search times, and the
// speculation efficiency of the batch engine. The zero value is ready to
// use and safe for concurrent emitters (the parallel studies share one
// collector across workers).
type ObsAgg struct {
	mu sync.Mutex

	// Per-scan distributions (one observation per core.Scan pass).
	Slots      metrics.Accumulator
	Candidates metrics.Accumulator
	PeakWindow metrics.Accumulator
	Visits     metrics.Accumulator
	EarlyStops int

	// Per-search wall-clock time in milliseconds, keyed by algorithm name.
	SelectMS map[string]*metrics.Accumulator

	// Per-batch distributions (one observation per stage-1 search).
	AltsPerBatch  metrics.Accumulator
	SpecRuns      metrics.Accumulator
	SpecDiscarded metrics.Accumulator
	// SpecEfficiency is committed/executed per batch: 1.0 means no
	// speculative work was wasted.
	SpecEfficiency metrics.Accumulator
	WorkerBusyMS   metrics.Accumulator // per worker per batch
}

// ScanDone implements obs.Collector.
func (o *ObsAgg) ScanDone(s obs.ScanStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.Slots.Add(float64(s.Slots))
	o.Candidates.Add(float64(s.Candidates))
	o.PeakWindow.Add(float64(s.PeakWindow))
	o.Visits.Add(float64(s.Visits))
	if s.EarlyStop {
		o.EarlyStops++
	}
}

// SelectDone implements obs.Collector.
func (o *ObsAgg) SelectDone(s obs.SelectStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.SelectMS == nil {
		o.SelectMS = make(map[string]*metrics.Accumulator)
	}
	acc := o.SelectMS[s.Alg]
	if acc == nil {
		acc = &metrics.Accumulator{}
		o.SelectMS[s.Alg] = acc
	}
	acc.Add(float64(s.Elapsed) / float64(time.Millisecond))
}

// BatchDone implements obs.Collector.
func (o *ObsAgg) BatchDone(s obs.BatchStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.AltsPerBatch.Add(float64(s.AltsFound))
	o.SpecRuns.Add(float64(s.SpecRuns))
	o.SpecDiscarded.Add(float64(s.SpecDiscarded))
	if s.SpecRuns > 0 {
		o.SpecEfficiency.Add(float64(s.SpecCommitted) / float64(s.SpecRuns))
	}
	for _, d := range s.WorkerBusy {
		o.WorkerBusyMS.Add(float64(d) / float64(time.Millisecond))
	}
}

// Span implements obs.Collector (ignored; pair with an obs.Trace when a
// timeline is wanted).
func (*ObsAgg) Span(obs.Span) {}

// obsRow is one line of the instrumentation report.
type obsRow struct {
	name string
	s    metrics.Summary
}

// rows flattens the aggregates into report order. Callers hold the lock.
func (o *ObsAgg) rows() []obsRow {
	out := []obsRow{
		{"scan_slots", o.Slots.Summary()},
		{"scan_candidates", o.Candidates.Summary()},
		{"scan_peak_window", o.PeakWindow.Summary()},
		{"scan_visits", o.Visits.Summary()},
	}
	names := make([]string, 0, len(o.SelectMS))
	for name := range o.SelectMS {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, obsRow{"select_ms_" + name, o.SelectMS[name].Summary()})
	}
	if o.AltsPerBatch.Count() > 0 {
		out = append(out,
			obsRow{"batch_alternatives", o.AltsPerBatch.Summary()},
			obsRow{"batch_spec_runs", o.SpecRuns.Summary()},
			obsRow{"batch_spec_discarded", o.SpecDiscarded.Summary()},
			obsRow{"batch_spec_efficiency", o.SpecEfficiency.Summary()},
			obsRow{"batch_worker_busy_ms", o.WorkerBusyMS.Summary()},
		)
	}
	return out
}

// Render writes the aggregated instrumentation as a plain-text table.
func (o *ObsAgg) Render(w io.Writer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	fmt.Fprintf(w, "observability: %d scans, %d early stops\n", o.Slots.Count(), o.EarlyStops)
	t := tablefmt.New("metric", "count", "mean", "stddev", "min", "max")
	for _, r := range o.rows() {
		t.AddRow(r.name,
			fmt.Sprintf("%d", r.s.Count),
			fmt.Sprintf("%.3f", r.s.Mean),
			fmt.Sprintf("%.3f", r.s.StdDev),
			fmt.Sprintf("%.3f", r.s.Min),
			fmt.Sprintf("%.3f", r.s.Max))
	}
	t.Render(w)
	fmt.Fprintln(w)
}

// WriteCSV emits the aggregates as rows of
// (metric, count, mean, stddev, min, max).
func (o *ObsAgg) WriteCSV(w io.Writer) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "count", "mean", "stddev", "min", "max"}); err != nil {
		return err
	}
	for _, r := range o.rows() {
		rec := []string{
			r.name,
			fmt.Sprintf("%d", r.s.Count),
			fmt.Sprintf("%.6f", r.s.Mean),
			fmt.Sprintf("%.6f", r.s.StdDev),
			fmt.Sprintf("%.6f", r.s.Min),
			fmt.Sprintf("%.6f", r.s.Max),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
