package experiments

import (
	"strings"
	"testing"

	"slotsel/internal/csa"
)

// smallQualityConfig shrinks the study so tests stay fast while remaining
// statistically meaningful for shape assertions.
func smallQualityConfig(cycles int) QualityConfig {
	cfg := DefaultQualityConfig()
	cfg.Cycles = cycles
	cfg.Env.Nodes.Count = 40
	return cfg
}

func TestRunQualityShape(t *testing.T) {
	res, err := RunQuality(smallQualityConfig(120))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*WindowStats{}
	for _, s := range res.Algos {
		byName[s.Name] = s
		if s.Found == 0 {
			t.Fatalf("%s never found a window", s.Name)
		}
	}

	// The published orderings (Figs. 2-4): these are statistical, but with
	// 120 cycles the separations are far wider than the noise.
	if byName["AMP"].Start.Mean() > 1 {
		t.Errorf("AMP average start %g, want ~0", byName["AMP"].Start.Mean())
	}
	if byName["MinFinish"].Finish.Mean() > byName["MinCost"].Finish.Mean() {
		t.Error("MinFinish finishes later than MinCost on average")
	}
	for _, name := range []string{"AMP", "MinFinish", "MinProcTime", "MinCost"} {
		if byName["MinRunTime"].Runtime.Mean() > byName[name].Runtime.Mean()+1e-9 {
			t.Errorf("MinRunTime runtime %g above %s's %g",
				byName["MinRunTime"].Runtime.Mean(), name, byName[name].Runtime.Mean())
		}
	}
	for _, name := range []string{"AMP", "MinFinish", "MinProcTime", "MinRunTime"} {
		if byName["MinCost"].Cost.Mean() > byName[name].Cost.Mean() {
			t.Errorf("MinCost cost %g above %s's %g",
				byName["MinCost"].Cost.Mean(), name, byName[name].Cost.Mean())
		}
	}
	if res.CSA.Alternatives.Mean() < 2 {
		t.Errorf("CSA found only %g alternatives on average", res.CSA.Alternatives.Mean())
	}

	// Per-criterion CSA selection must be at least as good as the CSA
	// earliest-start alternative on that criterion.
	for _, c := range AllCriteria {
		sel := res.CSA.Best[c].Mean()
		first := res.CSA.BestWindows[csa.ByStart]
		var firstVal float64
		switch c {
		case csa.ByStart:
			firstVal = first.Start.Mean()
		case csa.ByFinish:
			firstVal = first.Finish.Mean()
		case csa.ByCost:
			firstVal = first.Cost.Mean()
		case csa.ByRuntime:
			firstVal = first.Runtime.Mean()
		case csa.ByProcTime:
			firstVal = first.ProcTime.Mean()
		}
		if sel > firstVal+1e-9 {
			t.Errorf("CSA best-by-%s %g worse than earliest-start alternative's %g", c, sel, firstVal)
		}
	}
}

func TestRunQualityDeterministic(t *testing.T) {
	cfg := smallQualityConfig(30)
	a, err := RunQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Algos {
		if a.Algos[i].Cost.Mean() != b.Algos[i].Cost.Mean() {
			t.Fatalf("%s not deterministic", a.Algos[i].Name)
		}
	}
	if a.CSA.Alternatives.Mean() != b.CSA.Alternatives.Mean() {
		t.Fatal("CSA alternative count not deterministic")
	}
}

func TestRunQualityRejectsBadConfig(t *testing.T) {
	cfg := smallQualityConfig(0)
	if _, err := RunQuality(cfg); err == nil {
		t.Error("zero cycles accepted")
	}
	cfg = smallQualityConfig(10)
	cfg.Request.TaskCount = 0
	if _, err := RunQuality(cfg); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestFigureExtraction(t *testing.T) {
	res, err := RunQuality(smallQualityConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []FigureMetric{MetricStart, MetricRuntime, MetricFinish, MetricProcTime, MetricCost} {
		bars := res.Figure(m)
		if len(bars) != len(AlgoNames)+1 {
			t.Fatalf("figure %v has %d bars", m, len(bars))
		}
		if bars[len(bars)-1].Algorithm != "CSA" {
			t.Errorf("last bar %q, want CSA", bars[len(bars)-1].Algorithm)
		}
		if m.String() == "unknown" {
			t.Errorf("metric %d has no name", m)
		}
	}
}

func TestRenderFigureAndSummary(t *testing.T) {
	res, err := RunQuality(smallQualityConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res.RenderFigure(&b, MetricCost, "Fig. 4")
	if !strings.Contains(b.String(), "Fig. 4") || !strings.Contains(b.String(), "MinCost") {
		t.Errorf("figure rendering incomplete: %q", b.String())
	}
	b.Reset()
	res.RenderSummary(&b)
	out := b.String()
	for _, name := range AlgoNames {
		if !strings.Contains(out, name) {
			t.Errorf("summary missing %s", name)
		}
	}
	if !strings.Contains(out, "CSA/cost") {
		t.Error("summary missing CSA rows")
	}
}

func smallTimingConfig(cycles int) TimingConfig {
	cfg := DefaultTimingConfig()
	cfg.Cycles = cycles
	cfg.NodeCounts = []int{20, 40}
	cfg.Horizons = []float64{300, 600}
	return cfg
}

func TestRunNodeSweep(t *testing.T) {
	res, err := RunNodeSweep(smallTimingConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	p20, p40 := res.Points[0], res.Points[1]
	if p20.Param != 20 || p40.Param != 40 {
		t.Fatalf("sweep params %g, %g", p20.Param, p40.Param)
	}
	if p40.SlotCount.Mean() <= p20.SlotCount.Mean() {
		t.Error("slot count did not grow with node count")
	}
	if p40.CSAAlternatives.Mean() <= p20.CSAAlternatives.Mean() {
		t.Error("CSA alternatives did not grow with node count")
	}
	for _, name := range TimedAlgoNames {
		acc, ok := p20.AlgoSeconds[name]
		if !ok || acc.Count() != 5 {
			t.Errorf("%s timing missing or incomplete", name)
		}
	}
	if p20.CSAPerAlternative() <= 0 {
		t.Error("CSA per-alternative time not positive")
	}
}

func TestRunIntervalSweep(t *testing.T) {
	res, err := RunIntervalSweep(smallTimingConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.Points[1].SlotCount.Mean() <= res.Points[0].SlotCount.Mean() {
		t.Error("slot count did not grow with interval length")
	}
	var b strings.Builder
	res.RenderTable(&b, "Table 2")
	out := b.String()
	if !strings.Contains(out, "Number of slots") || !strings.Contains(out, "CSA per Alt") {
		t.Errorf("table rendering incomplete: %q", out)
	}
	b.Reset()
	res.RenderCurves(&b, "Fig. 6", true)
	if !strings.Contains(b.String(), "CSA") {
		t.Error("curves with CSA missing the CSA series")
	}
	b.Reset()
	res.RenderCurves(&b, "Fig. 5", false)
	if strings.Contains(b.String(), "CSA working time") {
		t.Error("curves without CSA still render the CSA series")
	}
}

func TestTimingRejectsBadCycles(t *testing.T) {
	cfg := smallTimingConfig(0)
	if _, err := RunNodeSweep(cfg); err == nil {
		t.Error("zero cycles accepted")
	}
}

func TestPricingAblationShape(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Cycles = 60
	cfg.Env.Nodes.Count = 40
	results, err := RunPricingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d ablation groups", len(results))
	}
	// Under linear pricing (degree 1) the budget no longer excludes fast
	// nodes, so MinRunTime achieves a strictly better runtime than under
	// the market-premium model.
	minRun := results[0]
	if len(minRun.Rows) != 2 {
		t.Fatalf("%d rows", len(minRun.Rows))
	}
	deg1, deg2 := minRun.Rows[0], minRun.Rows[1]
	if deg1.Runtime.Mean() >= deg2.Runtime.Mean() {
		t.Errorf("linear pricing runtime %g not below premium pricing %g",
			deg1.Runtime.Mean(), deg2.Runtime.Mean())
	}
}

func TestBudgetCheckAblation(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Cycles = 60
	cfg.Env.Nodes.Count = 40
	res, err := RunBudgetCheckAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	corrected, literal := res.Rows[0], res.Rows[1]
	// The literal check is stricter, so it can only do worse (higher
	// runtime) on average.
	if corrected.Runtime.Mean() > literal.Runtime.Mean()+1e-9 {
		t.Errorf("corrected budget check runtime %g above literal %g",
			corrected.Runtime.Mean(), literal.Runtime.Mean())
	}
}

func TestGreedyVsExactAblation(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.Cycles = 60
	cfg.Env.Nodes.Count = 40
	results, err := RunGreedyVsExactAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d groups", len(results))
	}
	greedy, exact := results[0].Rows[0], results[0].Rows[1]
	if exact.Runtime.Mean() > greedy.Runtime.Mean()+1e-9 {
		t.Errorf("exact MinRunTime %g above greedy %g", exact.Runtime.Mean(), greedy.Runtime.Mean())
	}
	var b strings.Builder
	RenderAblation(&b, results[0])
	if !strings.Contains(b.String(), "MinRunTime") {
		t.Error("ablation rendering incomplete")
	}
}
