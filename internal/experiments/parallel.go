package experiments

import (
	"errors"
	"fmt"

	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/env"
	"slotsel/internal/parallel"
	"slotsel/internal/randx"
)

// RunQualityParallel executes the quality study across a worker pool. Each
// scheduling cycle draws its environment from a per-cycle seed derived from
// cfg.Seed, so the result is deterministic for a given configuration
// (including Workers), though not byte-identical to the sequential
// RunQuality, whose cycles share one random stream.
//
// Workers <= 0 selects GOMAXPROCS.
func RunQualityParallel(cfg QualityConfig, workers int) (*QualityResult, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: quality study needs positive cycles, got %d", cfg.Cycles)
	}
	if err := cfg.Request.Validate(); err != nil {
		return nil, err
	}
	workers = parallel.Workers(workers)
	if workers > cfg.Cycles {
		workers = cfg.Cycles
	}

	// Each worker accumulates into private stats on the shared worker pool
	// (parallel.ForEachWorker); the shards merge at the end in worker-id
	// order (metrics.Accumulator supports exact parallel merging), so the
	// result does not depend on goroutine scheduling.
	type shard struct {
		res *QualityResult
		err error
	}
	shards := make([]shard, workers)
	parallel.ForEachWorker(workers, func(wk int) {
		res := &QualityResult{Config: cfg, CSA: newCSAStats()}
		stats := make(map[string]*WindowStats)
		algs := standardAlgorithms(cfg.Seed ^ 0x5eed ^ uint64(wk))
		for _, a := range algs {
			st := &WindowStats{Name: a.Name()}
			stats[a.Name()] = st
			res.Algos = append(res.Algos, st)
		}
		csaOpts := csa.Options{MinSlotLength: cfg.Env.MinSlotLength}
		for cycle := wk; cycle < cfg.Cycles; cycle += workers {
			rng := randx.New(cfg.Seed ^ (uint64(cycle)+1)*0x9e3779b97f4a7c15)
			e := env.Generate(cfg.Env, rng)
			req := cfg.Request
			for _, a := range algs {
				w, err := core.FindObserved(a, e.Slots, &req, cfg.Collector)
				if errors.Is(err, core.ErrNoWindow) {
					stats[a.Name()].Missed++
					continue
				}
				if err != nil {
					shards[wk].err = fmt.Errorf("experiments: %s: %w", a.Name(), err)
					return
				}
				stats[a.Name()].Observe(w)
			}
			alts, err := csa.SearchObserved(e.Slots, &req, csaOpts, cfg.Collector)
			if errors.Is(err, core.ErrNoWindow) {
				res.CSA.Missed++
				continue
			}
			if err != nil {
				shards[wk].err = fmt.Errorf("experiments: CSA: %w", err)
				return
			}
			res.CSA.Alternatives.Add(float64(len(alts)))
			for _, c := range AllCriteria {
				best := csa.Best(alts, c)
				res.CSA.Best[c].Add(c.Value(best))
				res.CSA.BestWindows[c].Observe(best)
			}
		}
		shards[wk].res = res
	})

	merged := &QualityResult{Config: cfg, CSA: newCSAStats()}
	for i := range AlgoNames {
		merged.Algos = append(merged.Algos, &WindowStats{Name: AlgoNames[i]})
	}
	byName := make(map[string]*WindowStats, len(merged.Algos))
	for _, s := range merged.Algos {
		byName[s.Name] = s
	}
	for _, sh := range shards {
		if sh.err != nil {
			return nil, sh.err
		}
		for _, s := range sh.res.Algos {
			dst := byName[s.Name]
			dst.Found += s.Found
			dst.Missed += s.Missed
			dst.Start.Merge(&s.Start)
			dst.Runtime.Merge(&s.Runtime)
			dst.Finish.Merge(&s.Finish)
			dst.ProcTime.Merge(&s.ProcTime)
			dst.Cost.Merge(&s.Cost)
		}
		merged.CSA.Missed += sh.res.CSA.Missed
		merged.CSA.Alternatives.Merge(&sh.res.CSA.Alternatives)
		for _, c := range AllCriteria {
			merged.CSA.Best[c].Merge(sh.res.CSA.Best[c])
			dst, src := merged.CSA.BestWindows[c], sh.res.CSA.BestWindows[c]
			dst.Found += src.Found
			dst.Missed += src.Missed
			dst.Start.Merge(&src.Start)
			dst.Runtime.Merge(&src.Runtime)
			dst.Finish.Merge(&src.Finish)
			dst.ProcTime.Merge(&src.ProcTime)
			dst.Cost.Merge(&src.Cost)
		}
	}
	return merged, nil
}
