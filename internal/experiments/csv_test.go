package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func parseCSV(t *testing.T, data string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(bytes.NewReader([]byte(data))).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return rows
}

func TestWriteQualityCSV(t *testing.T) {
	res, err := RunQuality(smallQualityConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteQualityCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	// 5 metrics x (5 algorithms + CSA) + header.
	if want := 5*6 + 1; len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	if rows[0][0] != "algorithm" {
		t.Errorf("header %v", rows[0])
	}
	for _, row := range rows[1:] {
		if _, err := strconv.ParseFloat(row[2], 64); err != nil {
			t.Fatalf("mean cell %q not numeric", row[2])
		}
		if n, err := strconv.Atoi(row[4]); err != nil || n <= 0 {
			t.Fatalf("count cell %q invalid", row[4])
		}
	}
}

func TestWriteTimingCSV(t *testing.T) {
	res, err := RunNodeSweep(smallTimingConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteTimingCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	// 2 points x (slots + alternatives + per-alt + 6 algorithms) + header.
	if want := 2*(3+len(TimedAlgoNames)) + 1; len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	series := map[string]bool{}
	for _, row := range rows[1:] {
		series[row[2]] = true
	}
	for _, want := range []string{"slots", "csa_alternatives", "CSA_ms", "AMP_ms"} {
		if !series[want] {
			t.Errorf("series %q missing", want)
		}
	}
}

func TestWriteSweepCSV(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Cycles = 10
	cfg.Env.Nodes.Count = 30
	cfg.TaskCounts = []int{2, 3}
	results, err := RunTaskCountSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.String())
	// 4 algorithms x 2 points x 4 metrics + header.
	if want := 4*2*4 + 1; len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
}
