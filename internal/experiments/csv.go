package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV export: machine-readable experiment results for downstream plotting.
// Every writer emits one header row followed by data rows; errors from the
// underlying writer surface through csv.Writer.Error.

// WriteQualityCSV emits the quality study as rows of
// (algorithm, metric, mean, stddev, count).
func (r *QualityResult) WriteQualityCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "metric", "mean", "stddev", "count"}); err != nil {
		return err
	}
	for _, m := range []FigureMetric{MetricStart, MetricRuntime, MetricFinish, MetricProcTime, MetricCost} {
		for _, v := range r.Figure(m) {
			rec := []string{
				v.Algorithm,
				m.String(),
				fmt.Sprintf("%.6f", v.Mean),
				fmt.Sprintf("%.6f", v.StdDev),
				fmt.Sprintf("%d", v.Count),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimingCSV emits a timing sweep as rows of
// (sweep, param, series, value) where series is an algorithm's working time
// in milliseconds, the slot count, or the CSA alternative count.
func (r *TimingResult) WriteTimingCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sweep", "param", "series", "value"}); err != nil {
		return err
	}
	emit := func(p *TimingPoint, series string, value float64) error {
		return cw.Write([]string{
			r.SweepLabel,
			fmt.Sprintf("%.0f", p.Param),
			series,
			fmt.Sprintf("%.6f", value),
		})
	}
	for _, p := range r.Points {
		if err := emit(p, "slots", p.SlotCount.Mean()); err != nil {
			return err
		}
		if err := emit(p, "csa_alternatives", p.CSAAlternatives.Mean()); err != nil {
			return err
		}
		if err := emit(p, "csa_per_alt_ms", p.CSAPerAlternative()*1e3); err != nil {
			return err
		}
		for _, name := range TimedAlgoNames {
			if err := emit(p, name+"_ms", p.AlgoSeconds[name].Mean()*1e3); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV emits extension-sweep curves as rows of
// (algorithm, param, metric, mean, found, missed).
func WriteSweepCSV(w io.Writer, results []*SweepResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "param", "metric", "mean", "found", "missed"}); err != nil {
		return err
	}
	for _, r := range results {
		for _, p := range r.Points {
			rows := []struct {
				metric string
				value  float64
			}{
				{"start", p.Start.Mean()},
				{"runtime", p.Runtime.Mean()},
				{"finish", p.Finish.Mean()},
				{"cost", p.Cost.Mean()},
			}
			for _, row := range rows {
				rec := []string{
					r.Algorithm,
					fmt.Sprintf("%.0f", p.Param),
					row.metric,
					fmt.Sprintf("%.6f", row.value),
					fmt.Sprintf("%d", p.Found),
					fmt.Sprintf("%d", p.Missed),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
