package experiments

import (
	"io"

	"slotsel/internal/svgplot"
)

// WriteFigureSVG renders one quality figure as an SVG bar chart.
func (r *QualityResult) WriteFigureSVG(w io.Writer, m FigureMetric, paperLabel string) error {
	bars := make([]svgplot.Bar, 0, len(AlgoNames)+1)
	for _, v := range r.Figure(m) {
		bars = append(bars, svgplot.Bar{Label: v.Algorithm, Value: v.Mean})
	}
	return svgplot.WriteBarChart(w, paperLabel+" — "+m.String(), m.String(), bars)
}

// WriteCurvesSVG renders a timing sweep as an SVG line chart of working
// time (ms) per algorithm; includeCSA mirrors the paper's Fig. 5, which
// omits the CSA curve because it dwarfs the others.
func (r *TimingResult) WriteCurvesSVG(w io.Writer, title string, includeCSA bool) error {
	var series []svgplot.Series
	for _, name := range TimedAlgoNames {
		if name == "CSA" && !includeCSA {
			continue
		}
		s := svgplot.Series{Name: name}
		for _, p := range r.Points {
			s.X = append(s.X, p.Param)
			s.Y = append(s.Y, p.AlgoSeconds[name].Mean()*1e3)
		}
		series = append(series, s)
	}
	return svgplot.WriteLineChart(w, title, r.SweepLabel, "working time (ms)", series)
}
