package experiments

import (
	"errors"
	"fmt"

	"slotsel/internal/baseline"
	"slotsel/internal/core"
	"slotsel/internal/env"
	"slotsel/internal/job"
	"slotsel/internal/metrics"
	"slotsel/internal/randx"
)

// AblationConfig parametrizes the design-decision ablations documented in
// DESIGN.md §4: the pricing degree (market premium vs the paper's literal
// linear wording), the MinRunTime budget check (literal pseudocode vs the
// evident intent), and greedy vs exact per-step runtime selection.
type AblationConfig struct {
	Cycles  int
	Seed    uint64
	Env     env.Config
	Request job.Request
}

// DefaultAblationConfig returns a medium-size ablation setup.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{
		Cycles:  1000,
		Seed:    1,
		Env:     env.DefaultConfig(),
		Request: job.DefaultRequest(),
	}
}

// AblationRow is one variant's aggregate outcome.
type AblationRow struct {
	Variant string
	Found   int
	Missed  int
	Runtime metrics.Accumulator
	Cost    metrics.Accumulator
	Start   metrics.Accumulator
}

// AblationResult groups the rows of one ablation study.
type AblationResult struct {
	Title string
	Rows  []*AblationRow
}

// RunPricingAblation compares MinRunTime and MinCost outcomes under the
// market-premium pricing (degree 2, default) and the literal linear pricing
// (degree 1). Under linear pricing per-slot cost is performance-independent,
// so the budget stops excluding fast nodes and MinRunTime collapses to the
// fastest free nodes — the behaviour the paper's published numbers rule out.
func RunPricingAblation(cfg AblationConfig) ([]*AblationResult, error) {
	var out []*AblationResult
	for _, alg := range []core.Algorithm{core.MinRunTime{}, core.MinCost{}} {
		res := &AblationResult{Title: fmt.Sprintf("pricing degree ablation: %s", alg.Name())}
		for _, degree := range []float64{1, 2} {
			e := cfg.Env
			e.Nodes.Pricing.Degree = degree
			row, err := runVariant(fmt.Sprintf("degree=%.0f", degree), alg, e, cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
		out = append(out, res)
	}
	return out, nil
}

// RunBudgetCheckAblation compares the paper's literal MinRunTime budget
// check (no refund of the replaced slot) against the corrected check.
func RunBudgetCheckAblation(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Title: "MinRunTime swap budget check ablation"}
	variants := []struct {
		name string
		alg  core.Algorithm
	}{
		{"corrected (refund replaced slot)", core.MinRunTime{}},
		{"literal pseudocode", core.MinRunTime{LiteralBudget: true}},
	}
	for _, v := range variants {
		row, err := runVariant(v.name, v.alg, cfg.Env, cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunGreedyVsExactAblation compares the paper's greedy runtime-minimizing
// substitution with the exact per-step selection, for both MinRunTime and
// MinFinish.
func RunGreedyVsExactAblation(cfg AblationConfig) ([]*AblationResult, error) {
	var out []*AblationResult
	groups := []struct {
		title    string
		variants []core.Algorithm
	}{
		{"MinRunTime: greedy vs exact per-step selection",
			[]core.Algorithm{core.MinRunTime{}, core.MinRunTime{Exact: true}}},
		{"MinFinish: greedy vs exact per-step selection",
			[]core.Algorithm{core.MinFinish{}, core.MinFinish{Exact: true}}},
	}
	for _, g := range groups {
		res := &AblationResult{Title: g.title}
		for _, alg := range g.variants {
			row, err := runVariant(alg.Name(), alg, cfg.Env, cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
		out = append(out, res)
	}
	return out, nil
}

// RunAMPvsALP reproduces the earlier works' comparison the paper cites
// ("AMP ... proved the advantage over ALP"): ALP bounds every slot by the
// local budget share S/n, so it starts later or misses windows whose total
// cost is fine but whose composition is locally uneven.
func RunAMPvsALP(cfg AblationConfig) (*AblationResult, error) {
	res := &AblationResult{Title: "AMP vs ALP (first-fit with total vs local price constraint)"}
	variants := []struct {
		name string
		alg  core.Algorithm
	}{
		{"AMP (total budget)", core.AMP{}},
		{"ALP (local per-slot share)", baseline.ALP{}},
	}
	// With the abundant base setup both first-fits start at t=0; the local
	// constraint only binds under budget scarcity, so the study runs both a
	// base and a tight-budget (65%) configuration.
	for _, scale := range []struct {
		label  string
		factor float64
	}{
		{"", 1},
		{", tight budget", 0.65},
	} {
		scaled := cfg
		scaled.Request.MaxCost = cfg.Request.MaxCost * scale.factor
		for _, v := range variants {
			row, err := runVariant(v.name+scale.label, v.alg, scaled.Env, scaled)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func runVariant(name string, alg core.Algorithm, envCfg env.Config, cfg AblationConfig) (*AblationRow, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: ablation needs positive cycles, got %d", cfg.Cycles)
	}
	row := &AblationRow{Variant: name}
	rng := randx.New(cfg.Seed)
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		e := env.Generate(envCfg, rng)
		req := cfg.Request
		w, err := alg.Find(e.Slots, &req)
		if errors.Is(err, core.ErrNoWindow) {
			row.Missed++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", name, err)
		}
		row.Found++
		row.Runtime.Add(w.Runtime)
		row.Cost.Add(w.Cost)
		row.Start.Add(w.Start)
	}
	return row, nil
}
