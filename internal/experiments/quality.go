// Package experiments reproduces every table and figure of the paper's
// evaluation (§3): the alternative-quality study behind Figs. 2-4 and the
// working-time study behind Tables 1-2 / Figs. 5-6, plus the ablations of
// the reproduction's documented design decisions.
//
// Each experiment is a pure function from a configuration (with an explicit
// seed) to a structured result; rendering to tables/charts is separate, so
// the same code backs the CLI, the benchmarks and the tests.
package experiments

import (
	"errors"
	"fmt"

	"slotsel/internal/core"
	"slotsel/internal/csa"
	"slotsel/internal/env"
	"slotsel/internal/job"
	"slotsel/internal/metrics"
	"slotsel/internal/obs"
	"slotsel/internal/randx"
)

// QualityConfig parametrizes the Figs. 2-4 study: repeated scheduling cycles
// over freshly generated environments, one predefined base job, all
// algorithms searching on the same slot list each cycle.
type QualityConfig struct {
	// Cycles is the number of simulated scheduling cycles (paper: 5000).
	Cycles int

	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed uint64

	// Env configures environment generation (paper defaults via
	// env.DefaultConfig: 100 nodes, interval [0,600]).
	Env env.Config

	// Request is the base job (paper defaults via job.DefaultRequest:
	// 5 slots x volume 150, budget 1500).
	Request job.Request

	// Collector receives instrumentation events from every search of the
	// study (scan counters, per-algorithm selection stats, spans). nil
	// means observability off. It must be safe for concurrent use when the
	// study runs on RunQualityParallel.
	Collector obs.Collector
}

// DefaultQualityConfig returns the §3.1 experimental setup.
func DefaultQualityConfig() QualityConfig {
	return QualityConfig{
		Cycles:  5000,
		Seed:    1,
		Env:     env.DefaultConfig(),
		Request: job.DefaultRequest(),
	}
}

// WindowStats aggregates the characteristics of the windows found by one
// algorithm across cycles.
type WindowStats struct {
	Name     string
	Found    int
	Missed   int
	Start    metrics.Accumulator
	Runtime  metrics.Accumulator
	Finish   metrics.Accumulator
	ProcTime metrics.Accumulator
	Cost     metrics.Accumulator
}

// Observe records one found window.
func (s *WindowStats) Observe(w *core.Window) {
	s.Found++
	s.Start.Add(w.Start)
	s.Runtime.Add(w.Runtime)
	s.Finish.Add(w.Finish())
	s.ProcTime.Add(w.ProcTime)
	s.Cost.Add(w.Cost)
}

// CSAStats aggregates the CSA scheme's results: the alternative counts and,
// per selection criterion, the criterion value of the best alternative —
// the paper's CSA bars pick the extreme alternative by the figure's own
// criterion, since with CSA the optimization happens at the selection phase.
type CSAStats struct {
	Alternatives metrics.Accumulator
	Best         map[csa.Criterion]*metrics.Accumulator
	// BestWindows aggregates, for each criterion, the full characteristics
	// of the criterion-selected alternative (used by tests and extensions;
	// the paper only reports the criterion's own value).
	BestWindows map[csa.Criterion]*WindowStats
	Missed      int
}

func newCSAStats() *CSAStats {
	s := &CSAStats{
		Best:        make(map[csa.Criterion]*metrics.Accumulator),
		BestWindows: make(map[csa.Criterion]*WindowStats),
	}
	for _, c := range AllCriteria {
		s.Best[c] = &metrics.Accumulator{}
		s.BestWindows[c] = &WindowStats{Name: "CSA/" + c.String()}
	}
	return s
}

// AllCriteria lists the selection criteria of the study in presentation
// order.
var AllCriteria = []csa.Criterion{csa.ByStart, csa.ByFinish, csa.ByCost, csa.ByRuntime, csa.ByProcTime}

// QualityResult is the aggregated outcome of the quality study.
type QualityResult struct {
	Config QualityConfig
	Algos  []*WindowStats // AMP, MinFinish, MinCost, MinRunTime, MinProcTime
	CSA    *CSAStats
}

// AlgoNames lists the single-alternative algorithms of the study in the
// paper's presentation order.
var AlgoNames = []string{"AMP", "MinFinish", "MinCost", "MinRunTime", "MinProcTime"}

// standardAlgorithms instantiates the §3.1 algorithm set; the MinProcTime
// random stream is derived from seed so whole runs stay reproducible.
func standardAlgorithms(seed uint64) []core.Algorithm {
	return []core.Algorithm{
		core.AMP{},
		core.MinFinish{},
		core.MinCost{},
		core.MinRunTime{},
		core.MinProcTime{Seed: seed},
	}
}

// RunQuality executes the quality study and returns the aggregates.
func RunQuality(cfg QualityConfig) (*QualityResult, error) {
	if cfg.Cycles <= 0 {
		return nil, fmt.Errorf("experiments: quality study needs positive cycles, got %d", cfg.Cycles)
	}
	if err := cfg.Request.Validate(); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	res := &QualityResult{Config: cfg, CSA: newCSAStats()}
	stats := make(map[string]*WindowStats)
	algs := standardAlgorithms(cfg.Seed ^ 0x5eed)
	for _, a := range algs {
		st := &WindowStats{Name: a.Name()}
		stats[a.Name()] = st
		res.Algos = append(res.Algos, st)
	}

	csaOpts := csa.Options{MinSlotLength: cfg.Env.MinSlotLength}
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		e := env.Generate(cfg.Env, rng)
		req := cfg.Request // copy: algorithms must not mutate the request
		for _, a := range algs {
			w, err := core.FindObserved(a, e.Slots, &req, cfg.Collector)
			if errors.Is(err, core.ErrNoWindow) {
				stats[a.Name()].Missed++
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", a.Name(), err)
			}
			stats[a.Name()].Observe(w)
		}
		alts, err := csa.SearchObserved(e.Slots, &req, csaOpts, cfg.Collector)
		if errors.Is(err, core.ErrNoWindow) {
			res.CSA.Missed++
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: CSA: %w", err)
		}
		res.CSA.Alternatives.Add(float64(len(alts)))
		for _, c := range AllCriteria {
			best := csa.Best(alts, c)
			res.CSA.Best[c].Add(c.Value(best))
			res.CSA.BestWindows[c].Observe(best)
		}
	}
	return res, nil
}

// FigureMetric identifies which characteristic a figure reports.
type FigureMetric int

// The five reported characteristics, in figure order.
const (
	MetricStart    FigureMetric = iota // Fig. 2 (a)
	MetricRuntime                      // Fig. 2 (b)
	MetricFinish                       // Fig. 3 (a)
	MetricProcTime                     // Fig. 3 (b)
	MetricCost                         // Fig. 4
)

// String implements fmt.Stringer.
func (m FigureMetric) String() string {
	switch m {
	case MetricStart:
		return "average start time"
	case MetricRuntime:
		return "average runtime"
	case MetricFinish:
		return "average finish time"
	case MetricProcTime:
		return "average CPU usage time"
	case MetricCost:
		return "average job execution cost"
	}
	return "unknown"
}

// Criterion returns the CSA selection criterion matching the metric.
func (m FigureMetric) Criterion() csa.Criterion {
	switch m {
	case MetricStart:
		return csa.ByStart
	case MetricRuntime:
		return csa.ByRuntime
	case MetricFinish:
		return csa.ByFinish
	case MetricProcTime:
		return csa.ByProcTime
	case MetricCost:
		return csa.ByCost
	}
	return csa.ByStart
}

// accumulator returns the per-algorithm accumulator for the metric.
func (m FigureMetric) accumulator(s *WindowStats) *metrics.Accumulator {
	switch m {
	case MetricStart:
		return &s.Start
	case MetricRuntime:
		return &s.Runtime
	case MetricFinish:
		return &s.Finish
	case MetricProcTime:
		return &s.ProcTime
	case MetricCost:
		return &s.Cost
	}
	return nil
}

// FigureValue is one bar of a figure.
type FigureValue struct {
	Algorithm string
	Mean      float64
	StdDev    float64
	Count     int
}

// Figure extracts the bars of one figure from the quality result: the five
// single-alternative algorithms plus the CSA criterion-selected value.
func (r *QualityResult) Figure(m FigureMetric) []FigureValue {
	out := make([]FigureValue, 0, len(r.Algos)+1)
	for _, s := range r.Algos {
		acc := m.accumulator(s)
		out = append(out, FigureValue{Algorithm: s.Name, Mean: acc.Mean(), StdDev: acc.StdDev(), Count: acc.Count()})
	}
	c := m.Criterion()
	acc := r.CSA.Best[c]
	out = append(out, FigureValue{Algorithm: "CSA", Mean: acc.Mean(), StdDev: acc.StdDev(), Count: acc.Count()})
	return out
}
